//! Bootstrap confidence intervals for pWCET estimates.
//!
//! A pWCET budget is a point estimate from ~60 block maxima; certification
//! argumentation (Stephenson et al., INDIN 2013) wants to know how much
//! the estimate itself could move. This module computes percentile
//! bootstrap intervals: resample the block maxima with replacement,
//! refit the Gumbel, re-evaluate the budget, and report the empirical
//! quantiles of the resampled budgets.
//!
//! Resampling is **sharded** over the same engine as the measurement
//! campaigns: resample `r` draws its indices from a private [`Mwc64`]
//! seeded with the `r`-th element of the master seed's SplitMix64 stream
//! ([`SplitMix64::stream_seed`], an O(1) random access), so the interval is
//! a deterministic function of `(data, seed)` — **bit-identical for every
//! `jobs` setting**, exactly like [`CampaignRunner`](crate::CampaignRunner).

use proxima_prng::{Mwc64, RandomSource, SplitMix64};
use proxima_stats::evt::{block_maxima, fit_gumbel};

use crate::campaign::run_sharded;
use crate::pwcet::Pwcet;
use crate::{MbptaError, MbptaReport};

/// A two-sided confidence interval for a pWCET budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetInterval {
    /// The point estimate from the full sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// The confidence level (e.g. 0.95).
    pub level: f64,
    /// Number of bootstrap resamples used.
    pub resamples: usize,
}

impl BudgetInterval {
    /// Width of the interval relative to the estimate.
    pub fn relative_width(&self) -> f64 {
        (self.upper - self.lower) / self.estimate
    }
}

/// Percentile-bootstrap confidence interval for the pWCET budget at
/// exceedance probability `p`, resampling on all available cores.
///
/// Resamples the campaign's block maxima `resamples` times (seeded,
/// deterministic, independent of the thread count), refits the Gumbel and
/// recomputes the budget each time. Resamples whose fit degenerates
/// (all-equal maxima) are skipped.
///
/// # Errors
///
/// * [`MbptaError::InvalidConfig`] for `level` outside (0, 1) or zero
///   `resamples`;
/// * [`MbptaError::Stats`] if too few resamples produce a valid fit.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::confidence::budget_interval;
/// use proxima_mbpta::{MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let times: Vec<f64> = (0..2000)
///     .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// let ci = budget_interval(&times, &report, 1e-12, 0.95, 200, 42)?;
/// assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn budget_interval(
    times: &[f64],
    report: &MbptaReport,
    p: f64,
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<BudgetInterval, MbptaError> {
    budget_interval_with_jobs(times, report, p, level, resamples, seed, 0)
}

/// [`budget_interval`] with an explicit worker-thread count (`0` = all
/// cores). The result is bit-identical for every `jobs` value.
///
/// # Errors
///
/// Same as [`budget_interval`].
pub fn budget_interval_with_jobs(
    times: &[f64],
    report: &MbptaReport,
    p: f64,
    level: f64,
    resamples: usize,
    seed: u64,
    jobs: usize,
) -> Result<BudgetInterval, MbptaError> {
    let block = report.fit.block_size;
    let maxima = block_maxima(times, block)?;
    let estimate = report.budget_for(p)?;
    interval_from_maxima(&maxima, block, estimate, p, level, resamples, seed, jobs)
}

/// Percentile-bootstrap interval straight from a block-maxima vector — the
/// entry point the streaming analyzer refits through on every snapshot
/// (it maintains the maxima incrementally and must not re-extract them).
///
/// `estimate` is the caller's point estimate at `p`; `jobs = 0` uses all
/// cores. Deterministic in `(maxima, seed)` for every `jobs`.
///
/// # Errors
///
/// Same as [`budget_interval`].
#[allow(clippy::too_many_arguments)]
pub fn interval_from_maxima(
    maxima: &[f64],
    block_size: usize,
    estimate: f64,
    p: f64,
    level: f64,
    resamples: usize,
    seed: u64,
    jobs: usize,
) -> Result<BudgetInterval, MbptaError> {
    if !(level > 0.0 && level < 1.0) {
        return Err(MbptaError::InvalidConfig {
            what: "confidence level must be in (0, 1)",
        });
    }
    if resamples == 0 {
        return Err(MbptaError::InvalidConfig {
            what: "resamples must be positive",
        });
    }
    let mut budgets = resample_budgets(maxima, block_size, p, resamples, seed, jobs);
    if budgets.len() < resamples / 2 {
        return Err(MbptaError::Stats(
            proxima_stats::StatsError::DegenerateSample,
        ));
    }
    budgets.sort_by(|a, b| a.total_cmp(b));
    let alpha = 1.0 - level;
    let lower = proxima_stats::descriptive::quantile_sorted(&budgets, alpha / 2.0);
    let upper = proxima_stats::descriptive::quantile_sorted(&budgets, 1.0 - alpha / 2.0);
    Ok(BudgetInterval {
        estimate,
        lower,
        upper,
        level,
        resamples: budgets.len(),
    })
}

/// Compute the resampled budgets, sharding the resample indices over
/// `jobs` scoped workers. Resample `r` depends only on `(maxima, seed, r)`,
/// so the concatenation in index order is identical at every `jobs`.
fn resample_budgets(
    maxima: &[f64],
    block_size: usize,
    p: f64,
    resamples: usize,
    seed: u64,
    jobs: usize,
) -> Vec<f64> {
    run_sharded(resamples, jobs, |shard| {
        let n = maxima.len();
        let mut resample = vec![0.0f64; n];
        shard
            .filter_map(|r| {
                let mut rng = Mwc64::new(SplitMix64::stream_seed(seed, r as u64));
                for slot in resample.iter_mut() {
                    *slot = maxima[rng.below(n as u64) as usize];
                }
                let gumbel = fit_gumbel(&resample).ok()?;
                Pwcet::new(gumbel, block_size).budget_for(p).ok()
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_impl as analyze;
    use crate::MbptaConfig;
    use rand::{Rng, SeedableRng};

    fn campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn interval_brackets_estimate() {
        let times = campaign(2000, 1);
        let report = analyze(&times, &MbptaConfig::default()).unwrap();
        let ci = budget_interval(&times, &report, 1e-12, 0.95, 300, 7).unwrap();
        assert!(ci.lower <= ci.estimate);
        assert!(ci.estimate <= ci.upper);
        assert!(ci.relative_width() > 0.0 && ci.relative_width() < 0.5);
    }

    #[test]
    fn interval_is_seed_deterministic() {
        // Seed chosen to pass the 5%-level iid gate deterministically with
        // the vendored StdRng stream.
        let times = campaign(1500, 5);
        let report = analyze(&times, &MbptaConfig::default()).unwrap();
        let a = budget_interval(&times, &report, 1e-9, 0.95, 200, 11).unwrap();
        let b = budget_interval(&times, &report, 1e-9, 0.95, 200, 11).unwrap();
        assert_eq!(a, b);
        let c = budget_interval(&times, &report, 1e-9, 0.95, 200, 12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn interval_bit_identical_across_job_counts() {
        // The sharded resampler must reproduce the serial interval exactly:
        // per-resample seeds come from the SplitMix64 stream, never from a
        // worker-local sequential RNG.
        let times = campaign(1500, 5);
        let report = analyze(&times, &MbptaConfig::default()).unwrap();
        let serial = budget_interval_with_jobs(&times, &report, 1e-12, 0.95, 301, 13, 1).unwrap();
        for jobs in [2, 3, 8] {
            let parallel =
                budget_interval_with_jobs(&times, &report, 1e-12, 0.95, 301, 13, jobs).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        // Seed chosen to pass the 5%-level iid gate deterministically.
        let times = campaign(1500, 6);
        let report = analyze(&times, &MbptaConfig::default()).unwrap();
        let ci90 = budget_interval(&times, &report, 1e-12, 0.90, 400, 5).unwrap();
        let ci99 = budget_interval(&times, &report, 1e-12, 0.99, 400, 5).unwrap();
        assert!(ci99.upper - ci99.lower >= ci90.upper - ci90.lower);
    }

    #[test]
    fn more_data_narrows_interval() {
        // Seed chosen to pass the 5%-level iid gate at both sizes with the
        // vendored StdRng stream.
        let small = campaign(800, 9);
        let large = campaign(3200, 9);
        let rs = analyze(&small, &MbptaConfig::default()).unwrap();
        let rl = analyze(&large, &MbptaConfig::default()).unwrap();
        let cis = budget_interval(&small, &rs, 1e-12, 0.95, 300, 9).unwrap();
        let cil = budget_interval(&large, &rl, 1e-12, 0.95, 300, 9).unwrap();
        assert!(
            cil.relative_width() < cis.relative_width(),
            "large {} vs small {}",
            cil.relative_width(),
            cis.relative_width()
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        let times = campaign(800, 5);
        let report = analyze(&times, &MbptaConfig::default()).unwrap();
        assert!(budget_interval(&times, &report, 1e-12, 0.0, 100, 1).is_err());
        assert!(budget_interval(&times, &report, 1e-12, 1.0, 100, 1).is_err());
        assert!(budget_interval(&times, &report, 1e-12, 0.95, 0, 1).is_err());
    }
}
