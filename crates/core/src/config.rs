//! Analysis configuration and the session builder.

use crate::engine::{BatchFactory, EngineFactory};
use crate::session::AnalysisSession;

/// How the block size for block-maxima extraction is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockSpec {
    /// A fixed block size.
    Fixed(usize),
    /// Scan the candidate sizes and keep the one whose Gumbel fit has the
    /// best (smallest) Anderson-Darling statistic.
    Auto(Vec<usize>),
}

impl Default for BlockSpec {
    fn default() -> Self {
        // The default candidates bracket the customary choices in the
        // MBPTA literature for campaigns of a few thousand runs.
        BlockSpec::Auto(vec![20, 25, 50, 100])
    }
}

/// Configuration of the MBPTA pipeline.
///
/// The defaults mirror the paper's protocol: 3,000-run campaigns, 5%
/// significance for the i.i.d. tests, per-path analysis with max across
/// paths, and a Gumbel tail on block maxima.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaConfig {
    /// Significance level for the i.i.d. gate and goodness-of-fit tests
    /// (the paper uses 0.05).
    pub alpha: f64,
    /// Number of Ljung-Box lags; `None` selects `min(20, n/5)`.
    pub ljung_box_lags: Option<usize>,
    /// Block-maxima block size policy.
    pub block: BlockSpec,
    /// Minimum number of runs the pipeline accepts.
    pub min_runs: usize,
    /// Whether a failed Gumbel goodness-of-fit aborts the analysis
    /// (`true`) or is merely recorded in the report (`false`).
    pub strict_gof: bool,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            alpha: 0.05,
            ljung_box_lags: None,
            block: BlockSpec::default(),
            min_runs: 100,
            strict_gof: false,
        }
    }
}

impl MbptaConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MbptaError::InvalidConfig`] if `alpha` is outside
    /// `(0, 0.5]`, a fixed block size is zero, or the candidate list is
    /// empty.
    pub fn validate(&self) -> Result<(), crate::MbptaError> {
        if !(self.alpha > 0.0 && self.alpha <= 0.5) {
            return Err(crate::MbptaError::InvalidConfig {
                what: "alpha must be in (0, 0.5]",
            });
        }
        match &self.block {
            BlockSpec::Fixed(0) => Err(crate::MbptaError::InvalidConfig {
                what: "fixed block size must be non-zero",
            }),
            BlockSpec::Auto(c) if c.is_empty() => Err(crate::MbptaError::InvalidConfig {
                what: "auto block candidates must be non-empty",
            }),
            _ => Ok(()),
        }
    }

    /// Start building a multi-channel [`AnalysisSession`] with this
    /// configuration — the session-oriented entry point to the MBPTA
    /// pipeline. See [`SessionBuilder`].
    pub fn session(self) -> SessionBuilder {
        SessionBuilder {
            config: self,
            ..SessionBuilder::new()
        }
    }
}

/// Builds a multi-channel [`AnalysisSession`]: pick the pipeline
/// configuration, the snapshot cadence, and the worker-thread bound, then
/// choose an engine.
///
/// * [`build_batch`](Self::build_batch) — one [`BatchEngine`] per channel
///   (whole-campaign analysis, the classic pipeline);
/// * `build_stream` / `build_stream_with` (via `proxima-stream`'s
///   `SessionStreamExt`) — one bounded-memory streaming engine per
///   channel;
/// * [`build_with`](Self::build_with) — any custom [`EngineFactory`].
///
/// [`BatchEngine`]: crate::engine::BatchEngine
///
/// # Examples
///
/// One-shot batch analysis of a single campaign:
///
/// ```
/// use proxima_mbpta::MbptaConfig;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let times: Vec<f64> = (0..1500)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
/// let verdict = MbptaConfig::default().session().analyze(&times)?;
/// assert!(verdict.iid.acceptable());
/// assert!(verdict.budget_for(1e-12)? > verdict.high_watermark());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
///
/// A demultiplexing session over a tagged feed:
///
/// ```
/// use proxima_mbpta::session::Tagged;
/// use proxima_mbpta::MbptaConfig;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut session = MbptaConfig::default()
///     .session()
///     .snapshot_every(500)
///     .jobs(2)
///     .build_batch()?;
/// for _ in 0..1000 {
///     let x = 1e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 70.0;
///     let y = 1.2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 90.0;
///     session.push(Tagged::new("path/nominal", x))?;
///     session.push(Tagged::new("path/fault", y))?;
/// }
/// let merged = session.merge();
/// let (worst, _budget) = merged.envelope_budget(1e-12)?;
/// assert_eq!(worst.as_str(), "path/fault");
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBuilder {
    config: MbptaConfig,
    snapshot_every: usize,
    checkpoint_every: usize,
    target_p: f64,
    jobs: usize,
    early_finish: bool,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            config: MbptaConfig::default(),
            snapshot_every: 250,
            checkpoint_every: 0,
            target_p: 1e-12,
            jobs: 0,
            early_finish: false,
        }
    }
}

impl SessionBuilder {
    /// A builder with the default configuration (equivalent to
    /// `MbptaConfig::default().session()`).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Replace the whole pipeline configuration.
    #[must_use]
    pub fn config(mut self, config: MbptaConfig) -> Self {
        self.config = config;
        self
    }

    /// Significance level of the i.i.d. gate and goodness-of-fit tests.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Block-maxima block size policy.
    #[must_use]
    pub fn block(mut self, block: BlockSpec) -> Self {
        self.config.block = block;
        self
    }

    /// Minimum number of runs per channel before analysis is accepted.
    #[must_use]
    pub fn min_runs(mut self, min_runs: usize) -> Self {
        self.config.min_runs = min_runs;
        self
    }

    /// Whether a failed goodness-of-fit aborts a channel's analysis.
    #[must_use]
    pub fn strict_gof(mut self, strict: bool) -> Self {
        self.config.strict_gof = strict;
        self
    }

    /// Scheduler period: emit a snapshot every `every` measurements
    /// (session-wide, round-robin across channels). `0` disables
    /// scheduled snapshots; convergence announcements still fire.
    #[must_use]
    pub fn snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Auto-checkpoint cadence: have the session report a checkpoint as
    /// due every `every` measurements (`0` disables, the default). The
    /// session only counts — the feeder owns the IO: it polls
    /// [`AnalysisSession::checkpoint_due`], persists
    /// [`AnalysisSession::checkpoint`] and calls
    /// [`AnalysisSession::mark_checkpointed`]. This keeps checkpoint
    /// *policy* in the library while leaving checkpoint *placement*
    /// (file, socket, object store) to the caller — the `mbpta` CLI and
    /// the `proxima-serve` server both drive it this way.
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// The exceedance cutoff intermediate estimates are tracked at.
    #[must_use]
    pub fn target_p(mut self, p: f64) -> Self {
        self.target_p = p;
        self
    }

    /// Worker-thread bound for [`AnalysisSession::merge`] (`0` = all
    /// cores). Per-channel verdicts are bit-identical at every setting.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Finish each channel's engine as soon as that channel's estimate
    /// converges, freeing its sketch/buffer memory immediately instead
    /// of holding every engine until [`AnalysisSession::merge`] — the
    /// long-session companion of `--stop-on-converged`. Measurements
    /// arriving on an already-finished channel are counted and dropped,
    /// so the channel's verdict covers its feed up to convergence.
    #[must_use]
    pub fn early_finish(mut self, enabled: bool) -> Self {
        self.early_finish = enabled;
        self
    }

    /// The pipeline configuration as currently built.
    pub fn mbpta_config(&self) -> &MbptaConfig {
        &self.config
    }

    /// The configured scheduler period.
    pub fn snapshot_period(&self) -> usize {
        self.snapshot_every
    }

    /// The configured auto-checkpoint cadence (`0` = disabled).
    pub fn checkpoint_cadence(&self) -> usize {
        self.checkpoint_every
    }

    /// The configured estimate cutoff.
    pub fn target_cutoff(&self) -> f64 {
        self.target_p
    }

    /// The configured worker-thread bound.
    pub fn job_bound(&self) -> usize {
        self.jobs
    }

    /// Whether channels finish early at convergence.
    pub fn early_finish_enabled(&self) -> bool {
        self.early_finish
    }

    /// Build a session running one batch engine per channel.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MbptaError::InvalidConfig`] if the configuration
    /// is invalid.
    pub fn build_batch(self) -> Result<AnalysisSession<BatchFactory>, crate::MbptaError> {
        let factory = BatchFactory::new(self.config.clone(), self.target_p)?;
        self.build_with(factory)
    }

    /// Build a session with a custom engine factory.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid factories; reserved for builder
    /// validation.
    pub fn build_with<F: EngineFactory>(
        self,
        factory: F,
    ) -> Result<AnalysisSession<F>, crate::MbptaError> {
        Ok(AnalysisSession::new(
            factory,
            self.snapshot_every,
            self.checkpoint_every,
            self.jobs,
            self.early_finish,
        ))
    }

    /// One-shot convenience: analyse a single unnamed campaign through a
    /// single-channel batch session and return its [`Verdict`].
    ///
    /// [`Verdict`]: crate::engine::Verdict
    ///
    /// # Errors
    ///
    /// Exactly the classic batch-analysis errors (i.i.d. rejection,
    /// too-few runs, degenerate data, invalid configuration), unscoped.
    pub fn analyze(self, times: &[f64]) -> Result<crate::engine::Verdict, crate::MbptaError> {
        // A one-shot has no snapshot consumer: skip engine polling (and
        // its intermediate prefix refits) entirely.
        let mut session = self.snapshot_every(0).build_batch()?;
        session.set_polling(false);
        {
            let mut channel = session.channel("campaign")?;
            for &x in times {
                channel.push(x);
            }
        }
        session
            .merge()
            .into_channels()
            .pop()
            // proxima-lint: allow(no-lib-panic) -- the session was built a
            // few lines up with exactly one channel, so pop() is Some.
            .expect("single-channel session")
            .outcome
            .map_err(crate::MbptaError::into_unscoped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MbptaConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_alpha_rejected() {
        let zero = MbptaConfig {
            alpha: 0.0,
            ..MbptaConfig::default()
        };
        assert!(zero.validate().is_err());
        let huge = MbptaConfig {
            alpha: 0.9,
            ..MbptaConfig::default()
        };
        assert!(huge.validate().is_err());
    }

    #[test]
    fn invalid_block_specs_rejected() {
        let mut c = MbptaConfig {
            block: BlockSpec::Fixed(0),
            ..MbptaConfig::default()
        };
        assert!(c.validate().is_err());
        c.block = BlockSpec::Auto(vec![]);
        assert!(c.validate().is_err());
        c.block = BlockSpec::Fixed(50);
        assert!(c.validate().is_ok());
    }
}
