//! Analysis configuration.

/// How the block size for block-maxima extraction is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockSpec {
    /// A fixed block size.
    Fixed(usize),
    /// Scan the candidate sizes and keep the one whose Gumbel fit has the
    /// best (smallest) Anderson-Darling statistic.
    Auto(Vec<usize>),
}

impl Default for BlockSpec {
    fn default() -> Self {
        // The default candidates bracket the customary choices in the
        // MBPTA literature for campaigns of a few thousand runs.
        BlockSpec::Auto(vec![20, 25, 50, 100])
    }
}

/// Configuration of the MBPTA pipeline.
///
/// The defaults mirror the paper's protocol: 3,000-run campaigns, 5%
/// significance for the i.i.d. tests, per-path analysis with max across
/// paths, and a Gumbel tail on block maxima.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaConfig {
    /// Significance level for the i.i.d. gate and goodness-of-fit tests
    /// (the paper uses 0.05).
    pub alpha: f64,
    /// Number of Ljung-Box lags; `None` selects `min(20, n/5)`.
    pub ljung_box_lags: Option<usize>,
    /// Block-maxima block size policy.
    pub block: BlockSpec,
    /// Minimum number of runs the pipeline accepts.
    pub min_runs: usize,
    /// Whether a failed Gumbel goodness-of-fit aborts the analysis
    /// (`true`) or is merely recorded in the report (`false`).
    pub strict_gof: bool,
}

impl Default for MbptaConfig {
    fn default() -> Self {
        MbptaConfig {
            alpha: 0.05,
            ljung_box_lags: None,
            block: BlockSpec::default(),
            min_runs: 100,
            strict_gof: false,
        }
    }
}

impl MbptaConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MbptaError::InvalidConfig`] if `alpha` is outside
    /// `(0, 0.5]`, a fixed block size is zero, or the candidate list is
    /// empty.
    pub fn validate(&self) -> Result<(), crate::MbptaError> {
        if !(self.alpha > 0.0 && self.alpha <= 0.5) {
            return Err(crate::MbptaError::InvalidConfig {
                what: "alpha must be in (0, 0.5]",
            });
        }
        match &self.block {
            BlockSpec::Fixed(0) => Err(crate::MbptaError::InvalidConfig {
                what: "fixed block size must be non-zero",
            }),
            BlockSpec::Auto(c) if c.is_empty() => Err(crate::MbptaError::InvalidConfig {
                what: "auto block candidates must be non-empty",
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MbptaConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_alpha_rejected() {
        let zero = MbptaConfig {
            alpha: 0.0,
            ..MbptaConfig::default()
        };
        assert!(zero.validate().is_err());
        let huge = MbptaConfig {
            alpha: 0.9,
            ..MbptaConfig::default()
        };
        assert!(huge.validate().is_err());
    }

    #[test]
    fn invalid_block_specs_rejected() {
        let mut c = MbptaConfig {
            block: BlockSpec::Fixed(0),
            ..MbptaConfig::default()
        };
        assert!(c.validate().is_err());
        c.block = BlockSpec::Auto(vec![]);
        assert!(c.validate().is_err());
        c.block = BlockSpec::Fixed(50);
        assert!(c.validate().is_ok());
    }
}
