//! Versioned binary persistence for analyzer and session state.
//!
//! Long campaigns (millions of runs across many shards) must survive
//! process restarts, and a resumed analysis must be **bit-identical** to
//! an uninterrupted one. This module is the wire layer that makes that
//! possible without serde (the build is offline): a hand-rolled,
//! length-prefixed, little-endian binary codec behind two tiny traits,
//! [`Encode`] and [`Decode`], plus a sealed-blob envelope
//! ([`seal`]/[`unseal`]) carrying a magic tag, the format version byte
//! ([`FORMAT_VERSION`]), the payload length, and an FNV-1a checksum.
//!
//! Robustness contract: decoding **never panics**. Truncated bytes, bit
//! flips (caught by the checksum — FNV-1a detects every equal-length
//! single-byte difference), wrong magics and unsupported versions all
//! surface as typed [`MbptaError::Checkpoint`] errors; the adversarial
//! decode proptests fuzz exactly these corruptions.
//!
//! Format stability: the encoding of every type is part of the on-disk
//! checkpoint format, guarded by golden fixtures under `tests/fixtures/`.
//! Any change to an `encode` body requires bumping [`FORMAT_VERSION`]
//! and regenerating the fixtures.
//!
//! The layering:
//!
//! * this module — wire primitives and codecs for the batch vocabulary
//!   ([`Verdict`], [`EngineEstimate`], [`Pwcet`], errors, the
//!   [`BatchEngine`] state);
//! * `proxima_stream::persist` — codecs for the streaming state
//!   (quantile sketch, i.i.d. monitor, block-maxima buffer, stream and
//!   federated analyzers);
//! * [`AnalysisSession::checkpoint`]/[`AnalysisSession::restore`]
//!   (`session.rs`) — the session-level envelope gluing both together
//!   through the [`Engine::save_state`] / [`EngineFactory::restore`]
//!   contract.
//!
//! [`AnalysisSession::checkpoint`]: crate::session::AnalysisSession::checkpoint
//! [`AnalysisSession::restore`]: crate::session::AnalysisSession::restore
//! [`Engine::save_state`]: crate::engine::Engine::save_state
//! [`EngineFactory::restore`]: crate::engine::EngineFactory::restore

use proxima_stats::descriptive::Summary;
use proxima_stats::dist::{Gev, Gpd, Gumbel};
use proxima_stats::evt::GofReport;
use proxima_stats::tests::TestResult;
use proxima_stats::StatsError;

use crate::confidence::BudgetInterval;
use crate::config::{BlockSpec, MbptaConfig};
use crate::engine::{
    BatchEngine, EngineEstimate, EngineKind, IidEvidence, ObservationSummary, Provenance, Verdict,
};
use crate::evt_fit::EvtFit;
use crate::iid::IidReport;
use crate::pwcet::Pwcet;
use crate::session::ChannelId;
use crate::MbptaError;

/// The checkpoint format version this build reads and writes. Bump on any
/// encoding change; old fixtures must keep decoding under the version
/// they were written with or be rejected loudly.
///
/// Version 2: the serve `STATS` payload grew per-shard counters and the
/// server checkpoint became a manifest plus one sealed session blob per
/// worker (sharded serve core).
///
/// Version 3: `StreamConfig` grew the sketch-kind byte and the analyzer
/// sketch record became kind-tagged (`Sketch`: GK or the new KLL
/// summary with its persisted compaction-coin counter).
///
/// Bumping this without regenerating the golden fixtures breaks the
/// crash-resume battery: rerun with PROXIMA_REGEN_FIXTURES=1 and commit
/// the refreshed `tests/fixtures/` alongside the bump (fixture-regen).
pub const FORMAT_VERSION: u8 = 3;

/// Magic tag of a serialized engine state ([`Engine::save_state`]).
///
/// [`Engine::save_state`]: crate::engine::Engine::save_state
pub const MAGIC_ENGINE: [u8; 4] = *b"PXEG";

/// Magic tag of a serialized session checkpoint
/// ([`AnalysisSession::checkpoint`]).
///
/// [`AnalysisSession::checkpoint`]: crate::session::AnalysisSession::checkpoint
pub const MAGIC_SESSION: [u8; 4] = *b"PXSN";

/// Magic tag of a single exported channel record
/// ([`AnalysisSession::export_channel_record`]) — the unit a sharded
/// coordinator moves between worker sessions when it re-partitions.
///
/// [`AnalysisSession::export_channel_record`]: crate::session::AnalysisSession::export_channel_record
pub const MAGIC_CHANNEL: [u8; 4] = *b"PXCH";

/// Longest string the decoder accepts (channel labels, error messages):
/// corrupt length fields must not drive unbounded allocations.
const MAX_STRING: usize = 4096;

/// Deepest error-nesting the decoder accepts (a channel-scoped error
/// wrapping another): adversarial payloads must not recurse the stack.
const MAX_ERROR_DEPTH: usize = 8;

/// FNV-1a 64-bit hash — the blob checksum. Not cryptographic, but it
/// detects every single-byte (hence single-bit) difference between
/// equal-length inputs, which is exactly the corruption class a damaged
/// checkpoint file exhibits.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Wrap a payload in the sealed-blob envelope:
/// `magic(4) ‖ version(1) ‖ len(8, LE) ‖ payload ‖ fnv1a(payload)(8, LE)`.
pub fn seal(magic: [u8; 4], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 21);
    out.extend_from_slice(&magic);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Open a sealed blob, returning the verified payload.
///
/// # Errors
///
/// Returns [`MbptaError::Checkpoint`] for a wrong magic, an unsupported
/// format version, a truncated or length-inconsistent blob, or a payload
/// whose checksum does not match (bit corruption).
pub fn unseal(bytes: &[u8], magic: [u8; 4]) -> Result<&[u8], MbptaError> {
    if bytes.len() < 13 {
        return Err(MbptaError::checkpoint(
            "checkpoint truncated: shorter than the blob header",
        ));
    }
    if bytes[..4] != magic {
        return Err(MbptaError::checkpoint(format!(
            "checkpoint magic mismatch: expected {:?}, found {:?}",
            std::str::from_utf8(&magic).unwrap_or("?"),
            &bytes[..4]
        )));
    }
    let version = bytes[4];
    if version != FORMAT_VERSION {
        return Err(MbptaError::checkpoint(format!(
            "unsupported checkpoint format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    // proxima-lint: allow(no-lib-panic) -- the length check above proved
    // the blob holds at least 21 bytes, so this 8-byte slice exists.
    let len = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let len: usize = len
        .try_into()
        .map_err(|_| MbptaError::checkpoint("checkpoint payload length overflows usize"))?;
    let Some(expected_total) = len.checked_add(21) else {
        return Err(MbptaError::checkpoint(
            "checkpoint payload length overflows usize",
        ));
    };
    if bytes.len() != expected_total {
        return Err(MbptaError::checkpoint(format!(
            "checkpoint length mismatch: header says {len} payload bytes, blob has {}",
            bytes.len().saturating_sub(21)
        )));
    }
    let payload = &bytes[13..13 + len];
    // proxima-lint: allow(no-lib-panic) -- expected_total == len + 21 was
    // verified above, so exactly 8 checksum bytes remain past the payload.
    let stored = u64::from_le_bytes(bytes[13 + len..].try_into().expect("8 bytes"));
    if fnv1a(payload) != stored {
        return Err(MbptaError::checkpoint(
            "checkpoint checksum mismatch: the payload bytes are corrupted",
        ));
    }
    Ok(payload)
}

/// Append-only byte sink the encoders write into.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, x: bool) {
        self.buf.push(u8::from(x));
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Write an `f64` by its IEEE-754 bit pattern (exact round trip,
    /// including infinities and NaN payloads).
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked cursor the decoders read from. Every accessor returns a
/// typed [`MbptaError::Checkpoint`] on truncation — no panics.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `payload` (typically the output of [`unseal`]).
    pub fn new(payload: &'a [u8]) -> Self {
        Reader {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MbptaError> {
        if n > self.remaining() {
            return Err(MbptaError::checkpoint(format!(
                "checkpoint truncated: needed {n} more bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation.
    pub fn u8(&mut self) -> Result<u8, MbptaError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (rejecting anything but 0/1 — a flipped flag must not
    /// silently misparse).
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, MbptaError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(MbptaError::checkpoint(format!(
                "checkpoint field is not a boolean (byte {other})"
            ))),
        }
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation.
    pub fn u64(&mut self) -> Result<u64, MbptaError> {
        // proxima-lint: allow(no-lib-panic) -- take(8)? returned exactly
        // 8 bytes or already erred, so the array conversion cannot fail.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation or overflow.
    pub fn usize(&mut self) -> Result<usize, MbptaError> {
        self.u64()?
            .try_into()
            .map_err(|_| MbptaError::checkpoint("checkpoint count overflows usize"))
    }

    /// Read an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation.
    pub fn f64(&mut self) -> Result<f64, MbptaError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation (including a length field
    /// pointing past the end of the payload).
    pub fn bytes(&mut self) -> Result<&'a [u8], MbptaError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string (bounded at 4 KiB: corrupt
    /// lengths must not drive unbounded allocations).
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncation, an oversized length, or
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, MbptaError> {
        let bytes = self.bytes()?;
        if bytes.len() > MAX_STRING {
            return Err(MbptaError::checkpoint(
                "checkpoint string exceeds the 4 KiB decoder bound",
            ));
        }
        std::str::from_utf8(bytes)
            .map_err(|_| MbptaError::checkpoint("checkpoint string is not valid UTF-8"))
    }

    /// Require the payload to be fully consumed — trailing bytes mean the
    /// reader and writer disagree about the format.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] if bytes remain.
    pub fn finish(self) -> Result<(), MbptaError> {
        if self.remaining() != 0 {
            return Err(MbptaError::checkpoint(format!(
                "checkpoint has {} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Serialize a value into the checkpoint wire format. Encoding is
/// infallible: every constructible value of an implementing type has a
/// representation.
pub trait Encode {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// Deserialize a value from the checkpoint wire format.
pub trait Decode: Sized {
    /// Read one value.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] on truncated, corrupt, or semantically
    /// invalid bytes — never a panic.
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError>;
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        r.u64()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        r.usize()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        r.f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        r.bool()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(if r.bool()? { Some(T::decode(r)?) } else { None })
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let len = r.usize()?;
        // Each element consumes at least one byte, so a length claiming
        // more elements than remaining bytes is corrupt; capping the
        // preallocation keeps adversarial lengths from OOM-ing before
        // the truncation error surfaces.
        if len > r.remaining() {
            return Err(MbptaError::checkpoint(
                "checkpoint sequence length exceeds the remaining payload",
            ));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for ChannelId {
    fn encode(&self, w: &mut Writer) {
        w.str(self.as_str());
    }
}

impl Decode for ChannelId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(ChannelId::new(r.str()?))
    }
}

impl Encode for EngineKind {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            EngineKind::Batch => 0,
            EngineKind::Stream => 1,
            EngineKind::Federated => 2,
        });
    }
}

impl Decode for EngineKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(EngineKind::Batch),
            1 => Ok(EngineKind::Stream),
            2 => Ok(EngineKind::Federated),
            other => Err(MbptaError::checkpoint(format!(
                "unknown engine kind tag {other}"
            ))),
        }
    }
}

impl Encode for Gumbel {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.mu());
        w.f64(self.beta());
    }
}

impl Decode for Gumbel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let (mu, beta) = (r.f64()?, r.f64()?);
        Gumbel::new(mu, beta)
            .map_err(|e| MbptaError::checkpoint(format!("invalid gumbel parameters: {e}")))
    }
}

impl Encode for Gev {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.mu());
        w.f64(self.sigma());
        w.f64(self.xi());
    }
}

impl Decode for Gev {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let (mu, sigma, xi) = (r.f64()?, r.f64()?, r.f64()?);
        Gev::new(mu, sigma, xi)
            .map_err(|e| MbptaError::checkpoint(format!("invalid gev parameters: {e}")))
    }
}

impl Encode for Gpd {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.mu());
        w.f64(self.sigma());
        w.f64(self.xi());
    }
}

impl Decode for Gpd {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let (mu, sigma, xi) = (r.f64()?, r.f64()?, r.f64()?);
        Gpd::new(mu, sigma, xi)
            .map_err(|e| MbptaError::checkpoint(format!("invalid gpd parameters: {e}")))
    }
}

impl Encode for Pwcet {
    fn encode(&self, w: &mut Writer) {
        self.tail().encode(w);
        w.usize(self.block_size());
    }
}

impl Decode for Pwcet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        let tail = Gumbel::decode(r)?;
        let block_size = r.usize()?;
        if block_size == 0 {
            return Err(MbptaError::checkpoint("pwcet block size must be non-zero"));
        }
        Ok(Pwcet::new(tail, block_size))
    }
}

impl Encode for TestResult {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.statistic);
        w.f64(self.p_value);
    }
}

impl Decode for TestResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(TestResult {
            statistic: r.f64()?,
            p_value: r.f64()?,
        })
    }
}

impl Encode for GofReport {
    fn encode(&self, w: &mut Writer) {
        self.ks.encode(w);
        self.ad.encode(w);
    }
}

impl Decode for GofReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(GofReport {
            ks: TestResult::decode(r)?,
            ad: Option::decode(r)?,
        })
    }
}

impl Encode for Summary {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.n);
        w.f64(self.mean);
        w.f64(self.std_dev);
        w.f64(self.min);
        w.f64(self.median);
        w.f64(self.max);
    }
}

impl Decode for Summary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(Summary {
            n: r.usize()?,
            mean: r.f64()?,
            std_dev: r.f64()?,
            min: r.f64()?,
            median: r.f64()?,
            max: r.f64()?,
        })
    }
}

impl Encode for IidReport {
    fn encode(&self, w: &mut Writer) {
        self.ljung_box.encode(w);
        self.ks.encode(w);
        self.runs.encode(w);
        w.f64(self.alpha);
        w.bool(self.passed);
    }
}

impl Decode for IidReport {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(IidReport {
            ljung_box: TestResult::decode(r)?,
            ks: TestResult::decode(r)?,
            runs: Option::decode(r)?,
            alpha: r.f64()?,
            passed: r.bool()?,
        })
    }
}

impl Encode for IidEvidence {
    fn encode(&self, w: &mut Writer) {
        match self {
            IidEvidence::Gate(report) => {
                w.u8(0);
                report.encode(w);
            }
            IidEvidence::Rolling {
                healthy,
                ljung_box_p,
                runs_p,
                window_len,
            } => {
                w.u8(1);
                healthy.encode(w);
                ljung_box_p.encode(w);
                runs_p.encode(w);
                w.usize(*window_len);
            }
        }
    }
}

impl Decode for IidEvidence {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(IidEvidence::Gate(IidReport::decode(r)?)),
            1 => Ok(IidEvidence::Rolling {
                healthy: Option::decode(r)?,
                ljung_box_p: Option::decode(r)?,
                runs_p: Option::decode(r)?,
                window_len: r.usize()?,
            }),
            other => Err(MbptaError::checkpoint(format!(
                "unknown iid evidence tag {other}"
            ))),
        }
    }
}

impl Encode for BudgetInterval {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.estimate);
        w.f64(self.lower);
        w.f64(self.upper);
        w.f64(self.level);
        w.usize(self.resamples);
    }
}

impl Decode for BudgetInterval {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(BudgetInterval {
            estimate: r.f64()?,
            lower: r.f64()?,
            upper: r.f64()?,
            level: r.f64()?,
            resamples: r.usize()?,
        })
    }
}

impl Encode for EvtFit {
    fn encode(&self, w: &mut Writer) {
        self.gumbel.encode(w);
        w.usize(self.block_size);
        w.usize(self.n_maxima);
        self.gof.encode(w);
        self.gev_diagnostic.encode(w);
        self.pot_cross_check.encode(w);
    }
}

impl Decode for EvtFit {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(EvtFit {
            gumbel: Gumbel::decode(r)?,
            block_size: r.usize()?,
            n_maxima: r.usize()?,
            gof: GofReport::decode(r)?,
            gev_diagnostic: Option::decode(r)?,
            pot_cross_check: Option::decode(r)?,
        })
    }
}

impl Encode for ObservationSummary {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.n);
        w.f64(self.high_watermark);
        self.mean.encode(w);
        self.detail.encode(w);
    }
}

impl Decode for ObservationSummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(ObservationSummary {
            n: r.usize()?,
            high_watermark: r.f64()?,
            mean: Option::decode(r)?,
            detail: Option::decode(r)?,
        })
    }
}

impl Encode for Provenance {
    fn encode(&self, w: &mut Writer) {
        self.engine.encode(w);
        w.usize(self.n);
        self.converged.encode(w);
        self.channel.encode(w);
    }
}

impl Decode for Provenance {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(Provenance {
            engine: EngineKind::decode(r)?,
            n: r.usize()?,
            converged: Option::decode(r)?,
            channel: Option::decode(r)?,
        })
    }
}

impl Encode for Verdict {
    fn encode(&self, w: &mut Writer) {
        self.summary.encode(w);
        self.iid.encode(w);
        self.fit.encode(w);
        self.pwcet.encode(w);
        self.provenance.encode(w);
    }
}

impl Decode for Verdict {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(Verdict {
            summary: ObservationSummary::decode(r)?,
            iid: IidEvidence::decode(r)?,
            fit: EvtFit::decode(r)?,
            pwcet: Pwcet::decode(r)?,
            provenance: Provenance::decode(r)?,
        })
    }
}

impl Encode for EngineEstimate {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.n);
        self.blocks.encode(w);
        w.f64(self.pwcet);
        self.distribution.encode(w);
        self.ci.encode(w);
        self.convergence_delta.encode(w);
        self.iid.encode(w);
        w.bool(self.converged);
        w.f64(self.high_watermark);
    }
}

impl Decode for EngineEstimate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(EngineEstimate {
            n: r.usize()?,
            blocks: Option::decode(r)?,
            pwcet: r.f64()?,
            distribution: Pwcet::decode(r)?,
            ci: Option::decode(r)?,
            convergence_delta: Option::decode(r)?,
            iid: Option::decode(r)?,
            converged: r.bool()?,
            high_watermark: r.f64()?,
        })
    }
}

impl Encode for BlockSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            BlockSpec::Fixed(b) => {
                w.u8(0);
                w.usize(*b);
            }
            BlockSpec::Auto(candidates) => {
                w.u8(1);
                candidates.encode(w);
            }
        }
    }
}

impl Decode for BlockSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(BlockSpec::Fixed(r.usize()?)),
            1 => Ok(BlockSpec::Auto(Vec::decode(r)?)),
            other => Err(MbptaError::checkpoint(format!(
                "unknown block spec tag {other}"
            ))),
        }
    }
}

impl Encode for MbptaConfig {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.alpha);
        self.ljung_box_lags.encode(w);
        self.block.encode(w);
        w.usize(self.min_runs);
        w.bool(self.strict_gof);
    }
}

impl Decode for MbptaConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        Ok(MbptaConfig {
            alpha: r.f64()?,
            ljung_box_lags: Option::decode(r)?,
            block: BlockSpec::decode(r)?,
            min_runs: r.usize()?,
            strict_gof: r.bool()?,
        })
    }
}

/// Distinct error messages the intern pool accepts before refusing to
/// decode further novel ones — far above the workspace's literal count,
/// far below anything a checkpoint-fed leak could abuse.
const MAX_INTERNED: usize = 1024;

/// Intern a decoded message into a `&'static str`. The error types carry
/// `&'static str` payloads (they are built from literals); decoding gets
/// them back by leaking **one** copy per distinct message. Legitimate
/// checkpoints only ever carry the fixed set of literals in this
/// workspace, so the pool stays small; because the strings ultimately
/// come from a file, the pool is hard-capped — past the cap, decoding a
/// *novel* message is an error rather than an unbounded leak.
fn intern(s: &str) -> Result<&'static str, MbptaError> {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        // The pool only ever grows leaked &'static strs; a panic between
        // lock and unlock cannot leave it torn, so poison is recoverable.
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&existing) = pool.get(s) {
        return Ok(existing);
    }
    if pool.len() >= MAX_INTERNED {
        return Err(MbptaError::checkpoint(
            "checkpoint error-message intern pool exhausted",
        ));
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    Ok(leaked)
}

impl Encode for StatsError {
    fn encode(&self, w: &mut Writer) {
        match self {
            StatsError::InsufficientData { needed, got } => {
                w.u8(0);
                w.usize(*needed);
                w.usize(*got);
            }
            StatsError::InvalidArgument { what } => {
                w.u8(1);
                w.str(what);
            }
            StatsError::NonFiniteData => w.u8(2),
            StatsError::DegenerateSample => w.u8(3),
            StatsError::NoConvergence { what } => {
                w.u8(4);
                w.str(what);
            }
            // `StatsError` is non-exhaustive upstream; a variant added
            // later encodes as "unrepresentable" and fails loudly at
            // decode instead of silently misparsing.
            _ => w.u8(255),
        }
    }
}

impl Decode for StatsError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        match r.u8()? {
            0 => Ok(StatsError::InsufficientData {
                needed: r.usize()?,
                got: r.usize()?,
            }),
            1 => Ok(StatsError::InvalidArgument {
                what: intern(r.str()?)?,
            }),
            2 => Ok(StatsError::NonFiniteData),
            3 => Ok(StatsError::DegenerateSample),
            4 => Ok(StatsError::NoConvergence {
                what: intern(r.str()?)?,
            }),
            other => Err(MbptaError::checkpoint(format!(
                "unknown stats error tag {other}"
            ))),
        }
    }
}

impl Encode for MbptaError {
    fn encode(&self, w: &mut Writer) {
        match self {
            MbptaError::IidRejected {
                ljung_box_p,
                ks_p,
                alpha,
            } => {
                w.u8(0);
                w.f64(*ljung_box_p);
                w.f64(*ks_p);
                w.f64(*alpha);
            }
            MbptaError::PoorFit { ks_p } => {
                w.u8(1);
                w.f64(*ks_p);
            }
            MbptaError::Stats(e) => {
                w.u8(2);
                e.encode(w);
            }
            MbptaError::CampaignTooSmall { needed, got } => {
                w.u8(3);
                w.usize(*needed);
                w.usize(*got);
            }
            MbptaError::InvalidConfig { what } => {
                w.u8(4);
                w.str(what);
            }
            MbptaError::Channel { channel, source } => {
                w.u8(5);
                channel.encode(w);
                source.encode(w);
            }
            MbptaError::Checkpoint { what } => {
                w.u8(6);
                w.str(what);
            }
        }
    }
}

impl Decode for MbptaError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, MbptaError> {
        decode_error(r, 0)
    }
}

/// [`MbptaError`] decoding with a nesting bound: channel-scoped errors
/// wrap a source error, and adversarial bytes must not recurse the stack.
fn decode_error(r: &mut Reader<'_>, depth: usize) -> Result<MbptaError, MbptaError> {
    if depth > MAX_ERROR_DEPTH {
        return Err(MbptaError::checkpoint(
            "checkpoint error nesting exceeds the decoder bound",
        ));
    }
    match r.u8()? {
        0 => Ok(MbptaError::IidRejected {
            ljung_box_p: r.f64()?,
            ks_p: r.f64()?,
            alpha: r.f64()?,
        }),
        1 => Ok(MbptaError::PoorFit { ks_p: r.f64()? }),
        2 => Ok(MbptaError::Stats(StatsError::decode(r)?)),
        3 => Ok(MbptaError::CampaignTooSmall {
            needed: r.usize()?,
            got: r.usize()?,
        }),
        4 => Ok(MbptaError::InvalidConfig {
            what: intern(r.str()?)?,
        }),
        5 => Ok(MbptaError::Channel {
            channel: ChannelId::decode(r)?,
            source: Box::new(decode_error(r, depth + 1)?),
        }),
        6 => Ok(MbptaError::Checkpoint {
            what: r.str()?.to_owned(),
        }),
        other => Err(MbptaError::checkpoint(format!(
            "unknown error variant tag {other}"
        ))),
    }
}

/// Serialize a [`BatchEngine`]'s full state (configuration fingerprint +
/// buffered measurements + refit bookkeeping). Used by
/// [`Engine::save_state`]; the inverse lives in
/// [`BatchFactory::restore`].
///
/// [`Engine::save_state`]: crate::engine::Engine::save_state
/// [`BatchFactory::restore`]: crate::engine::BatchFactory
pub(crate) fn encode_batch_engine(engine: &BatchEngine, w: &mut Writer) {
    engine.config.encode(w);
    w.f64(engine.target_p);
    engine.times.encode(w);
    w.f64(engine.high_watermark);
    w.usize(engine.last_fit_n);
    engine.cached.encode(w);
    engine.last_budget.encode(w);
    w.usize(engine.stable_run);
    w.bool(engine.converged);
}

/// Decode a [`BatchEngine`] previously written by
/// [`encode_batch_engine`], verifying its configuration fingerprint
/// against the restoring factory's (`expected` / `expected_p`).
pub(crate) fn decode_batch_engine(
    r: &mut Reader<'_>,
    expected: &MbptaConfig,
    expected_p: f64,
) -> Result<BatchEngine, MbptaError> {
    let config = MbptaConfig::decode(r)?;
    let target_p = r.f64()?;
    if config != *expected || target_p != expected_p {
        return Err(MbptaError::checkpoint(
            "checkpointed batch engine configuration does not match the session's",
        ));
    }
    let mut engine = BatchEngine::new(config, target_p);
    engine.times = Vec::decode(r)?;
    engine.high_watermark = r.f64()?;
    engine.last_fit_n = r.usize()?;
    engine.cached = Option::decode(r)?;
    engine.last_budget = Option::decode(r)?;
    engine.stable_run = r.usize()?;
    engine.converged = r.bool()?;
    if engine.last_fit_n > engine.times.len() {
        return Err(MbptaError::checkpoint(
            "checkpointed batch engine fit cursor exceeds its buffer",
        ));
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let payload = b"hello checkpoint".to_vec();
        let blob = seal(MAGIC_SESSION, payload.clone());
        assert_eq!(unseal(&blob, MAGIC_SESSION).unwrap(), &payload[..]);
    }

    #[test]
    fn unseal_rejects_wrong_magic_version_truncation_and_flips() {
        let blob = seal(MAGIC_SESSION, vec![1, 2, 3, 4, 5]);
        // Wrong magic.
        assert!(matches!(
            unseal(&blob, MAGIC_ENGINE),
            Err(MbptaError::Checkpoint { .. })
        ));
        // Unsupported version.
        let mut v = blob.clone();
        v[4] = FORMAT_VERSION + 1;
        let err = unseal(&v, MAGIC_SESSION).unwrap_err();
        assert!(err.to_string().contains("version"));
        // Truncation at every length.
        for cut in 0..blob.len() {
            assert!(
                matches!(
                    unseal(&blob[..cut], MAGIC_SESSION),
                    Err(MbptaError::Checkpoint { .. })
                ),
                "cut at {cut} slipped through"
            );
        }
        // Every single-bit flip is caught (magic, version, length,
        // payload, or checksum — all covered).
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut flipped = blob.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    matches!(
                        unseal(&flipped, MAGIC_SESSION),
                        Err(MbptaError::Checkpoint { .. })
                    ),
                    "flip at byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(f64::NEG_INFINITY);
        w.f64(-0.0);
        w.str("kanal/päth");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "kanal/päth");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_bad_bool_and_trailing_bytes() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(MbptaError::Checkpoint { .. })));
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish(), Err(MbptaError::Checkpoint { .. })));
    }

    #[test]
    fn vec_length_lies_are_rejected_without_allocation() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2); // claims an absurd element count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Vec::<f64>::decode(&mut r),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn error_codec_round_trips_every_variant() {
        let samples = vec![
            MbptaError::IidRejected {
                ljung_box_p: 0.01,
                ks_p: 0.2,
                alpha: 0.05,
            },
            MbptaError::PoorFit { ks_p: 0.001 },
            MbptaError::Stats(StatsError::NonFiniteData),
            MbptaError::Stats(StatsError::DegenerateSample),
            MbptaError::Stats(StatsError::InsufficientData { needed: 40, got: 3 }),
            MbptaError::Stats(StatsError::InvalidArgument {
                what: "sketch epsilon must be in (0, 0.5)",
            }),
            MbptaError::Stats(StatsError::NoConvergence { what: "gumbel mle" }),
            MbptaError::CampaignTooSmall {
                needed: 500,
                got: 7,
            },
            MbptaError::InvalidConfig {
                what: "alpha must be in (0, 0.5]",
            },
            MbptaError::channel_scoped(
                ChannelId::new("tenant-4"),
                MbptaError::Stats(StatsError::NonFiniteData),
            ),
            MbptaError::checkpoint("nested checkpoint failure"),
        ];
        for err in samples {
            let mut w = Writer::new();
            err.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = MbptaError::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn verdict_codec_round_trips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let times: Vec<f64> = (0..1500)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect();
        let verdict = MbptaConfig::default().session().analyze(&times).unwrap();
        let mut w = Writer::new();
        verdict.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Verdict::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, verdict);
    }

    #[test]
    fn pwcet_zero_block_is_a_typed_error_not_a_panic() {
        let mut w = Writer::new();
        Gumbel::new(100.0, 5.0).unwrap().encode(&mut w);
        w.usize(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Pwcet::decode(&mut r),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn interned_messages_are_deduplicated() {
        let a = intern("same message").unwrap();
        let b = intern("same message").unwrap();
        assert!(std::ptr::eq(a, b));
    }
}
