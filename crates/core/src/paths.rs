//! Per-path analysis: analyse each program path separately and take the
//! maximum, as the paper does ("we make per-path analysis taking the
//! maximum across paths").

use crate::campaign::run_sharded;
use crate::pipeline::{analyze_impl, MbptaReport};
use crate::{MbptaConfig, MbptaError};

/// One analysed path: its label and its MBPTA report.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAnalysis {
    /// Path label (e.g. the TVCA control mode).
    pub label: String,
    /// The path's MBPTA report.
    pub report: MbptaReport,
}

/// The per-path analysis result: every path's report plus max-across-paths
/// queries.
#[derive(Debug, Clone, PartialEq)]
pub struct PerPathAnalysis {
    paths: Vec<PathAnalysis>,
}

impl PerPathAnalysis {
    /// Analyse each labelled campaign with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] for an empty path list, or the
    /// first path's analysis error (a single non-analysable path
    /// invalidates the program-level claim).
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::paths::PerPathAnalysis;
    /// use proxima_mbpta::MbptaConfig;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let campaign = |base: f64, seed: u64| -> Vec<f64> {
    ///     let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ///     (0..1000)
    ///         .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 50.0)
    ///         .collect()
    /// };
    /// let paths = vec![
    ///     ("nominal".to_string(), campaign(1e5, 4)),
    ///     ("fault".to_string(), campaign(1.2e5, 20)),
    /// ];
    /// let analysis = PerPathAnalysis::run(&paths, &MbptaConfig::default())?;
    /// let (worst, _) = analysis.worst_path_budget(1e-12)?;
    /// assert_eq!(worst, "fault");
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn run(
        labelled_campaigns: &[(String, Vec<f64>)],
        config: &MbptaConfig,
    ) -> Result<Self, MbptaError> {
        Self::run_with_jobs(labelled_campaigns, config, 0)
    }

    /// [`Self::run`] with an explicit worker-thread count (`0` = all
    /// cores): the paths are sharded over scoped threads on the same
    /// engine as the measurement campaigns. Each path's analysis is a pure
    /// function of its campaign, so the result — including which path's
    /// error is reported (the first by path order, matching the serial
    /// semantics) — is identical for every `jobs` value.
    ///
    /// # Errors
    ///
    /// Same as [`Self::run`].
    pub fn run_with_jobs(
        labelled_campaigns: &[(String, Vec<f64>)],
        config: &MbptaConfig,
        jobs: usize,
    ) -> Result<Self, MbptaError> {
        if labelled_campaigns.is_empty() {
            return Err(MbptaError::InvalidConfig {
                what: "per-path analysis needs at least one path",
            });
        }
        let results = run_sharded(labelled_campaigns.len(), jobs, |shard| {
            labelled_campaigns[shard]
                .iter()
                .map(|(label, times)| {
                    Ok(PathAnalysis {
                        label: label.clone(),
                        report: analyze_impl(times, config)?,
                    })
                })
                .collect()
        });
        // The engine concatenates shards in path order, so the first error
        // by path index wins deterministically.
        let paths = results
            .into_iter()
            .collect::<Result<Vec<_>, MbptaError>>()?;
        Ok(PerPathAnalysis { paths })
    }

    /// The individual path analyses.
    pub fn paths(&self) -> &[PathAnalysis] {
        &self.paths
    }

    /// The program-level pWCET budget at cutoff `p`: the maximum across
    /// paths, with the winning path's label.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p < 1`.
    pub fn worst_path_budget(&self, p: f64) -> Result<(&str, f64), MbptaError> {
        let mut best: Option<(&str, f64)> = None;
        for path in &self.paths {
            let b = path.report.budget_for(p)?;
            if best.is_none_or(|(_, cur)| b > cur) {
                best = Some((path.label.as_str(), b));
            }
        }
        // proxima-lint: allow(no-lib-panic) -- PathSet construction rejects
        // an empty path list, so the loop above ran at least once.
        Ok(best.expect("at least one path by construction"))
    }

    /// The program-level pWCET curve: max across paths at each probability.
    ///
    /// # Errors
    ///
    /// Returns an error if any probability is invalid.
    pub fn envelope_curve(&self, probabilities: &[f64]) -> Result<Vec<(f64, f64)>, MbptaError> {
        probabilities
            .iter()
            .map(|&p| Ok((self.worst_path_budget(p)?.1, p)))
            .collect()
    }

    /// Highest observed execution time across all paths.
    pub fn high_watermark(&self) -> f64 {
        self.paths
            .iter()
            .map(|p| p.report.high_watermark())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn campaign(base: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
            .collect()
    }

    fn three_paths() -> Vec<(String, Vec<f64>)> {
        // Seeds chosen to pass the 5%-level iid gate (any generator has a
        // 5% false-rejection rate per test; fixed seeds keep CI stable).
        vec![
            ("nominal".into(), campaign(1.0e5, 1000, 4)),
            ("saturated".into(), campaign(1.1e5, 1000, 20)),
            ("fault".into(), campaign(1.3e5, 1000, 40)),
        ]
    }

    #[test]
    fn worst_path_is_the_slowest() {
        let a = PerPathAnalysis::run(&three_paths(), &MbptaConfig::default()).unwrap();
        let (label, budget) = a.worst_path_budget(1e-12).unwrap();
        assert_eq!(label, "fault");
        assert!(budget > 1.3e5);
    }

    #[test]
    fn envelope_dominates_each_path() {
        let a = PerPathAnalysis::run(&three_paths(), &MbptaConfig::default()).unwrap();
        let p = 1e-9;
        let (_, envelope) = a.worst_path_budget(p).unwrap();
        for path in a.paths() {
            assert!(envelope >= path.report.budget_for(p).unwrap());
        }
    }

    #[test]
    fn envelope_curve_monotone() {
        let a = PerPathAnalysis::run(&three_paths(), &MbptaConfig::default()).unwrap();
        let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
        let curve = a.envelope_curve(&probs).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn high_watermark_across_paths() {
        let paths = three_paths();
        let expected = paths
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        let a = PerPathAnalysis::run(&paths, &MbptaConfig::default()).unwrap();
        assert_eq!(a.high_watermark(), expected);
    }

    #[test]
    fn fan_out_identical_across_job_counts() {
        let paths = three_paths();
        let serial = PerPathAnalysis::run_with_jobs(&paths, &MbptaConfig::default(), 1).unwrap();
        for jobs in [2, 3, 8] {
            let parallel =
                PerPathAnalysis::run_with_jobs(&paths, &MbptaConfig::default(), jobs).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn parallel_error_is_first_by_path_order() {
        // Two failing paths with distinct errors: every job count must
        // report the earlier one — the degenerate path at index 1 (stats
        // error), not the drifting tail path (iid rejection).
        let mut paths = three_paths();
        paths.insert(1, ("degenerate".into(), vec![100.0; 1000]));
        let drifting: Vec<f64> = (0..1000).map(|i| 1e5 + i as f64 * 50.0).collect();
        paths.push(("drift".into(), drifting));
        let serial = PerPathAnalysis::run_with_jobs(&paths, &MbptaConfig::default(), 1)
            .expect_err("degenerate path must fail");
        for jobs in [2, 8] {
            let parallel = PerPathAnalysis::run_with_jobs(&paths, &MbptaConfig::default(), jobs)
                .expect_err("degenerate path must fail");
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_paths_rejected() {
        assert!(matches!(
            PerPathAnalysis::run(&[], &MbptaConfig::default()),
            Err(MbptaError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn failing_path_fails_the_analysis() {
        let mut paths = three_paths();
        paths.push(("degenerate".into(), vec![100.0; 1000]));
        assert!(PerPathAnalysis::run(&paths, &MbptaConfig::default()).is_err());
    }
}
