//! Converting between per-activation exceedance probabilities and
//! per-hour failure rates.
//!
//! The paper: *"The particular cutoff probability is to be chosen based on
//! the applicable domain standard, the task criticality level and the task
//! frequency of execution."* Safety standards state their targets as
//! failure rates per hour (e.g. 10⁻⁹/h for the highest criticality
//! levels); MBPTA quantifies exceedance *per activation*. This module does
//! the bookkeeping between the two for periodic tasks.

use crate::MbptaError;

/// A periodic task's activation rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationRate {
    activations_per_hour: f64,
}

impl ActivationRate {
    /// From a task period in milliseconds.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] unless the period is positive
    /// and finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::risk::ActivationRate;
    ///
    /// let rate = ActivationRate::from_period_ms(10.0)?; // 100 Hz control task
    /// assert_eq!(rate.per_hour(), 360_000.0);
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn from_period_ms(period_ms: f64) -> Result<Self, MbptaError> {
        if !(period_ms.is_finite() && period_ms > 0.0) {
            return Err(MbptaError::InvalidConfig {
                what: "task period must be positive and finite",
            });
        }
        Ok(ActivationRate {
            activations_per_hour: 3_600_000.0 / period_ms,
        })
    }

    /// From a frequency in hertz.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] unless the frequency is
    /// positive and finite.
    pub fn from_hz(hz: f64) -> Result<Self, MbptaError> {
        if !(hz.is_finite() && hz > 0.0) {
            return Err(MbptaError::InvalidConfig {
                what: "task frequency must be positive and finite",
            });
        }
        Ok(ActivationRate {
            activations_per_hour: hz * 3600.0,
        })
    }

    /// Activations per hour.
    pub fn per_hour(&self) -> f64 {
        self.activations_per_hour
    }

    /// Probability that at least one of the next hour's activations
    /// exceeds its budget, given a per-activation exceedance probability:
    /// `1 − (1 − p)^N`, computed in log space.
    ///
    /// Independence across activations is the assumption the i.i.d. gate
    /// validated at analysis; on the randomized platform it carries over to
    /// operation (each activation observes fresh randomization).
    pub fn hourly_failure_probability(&self, per_activation: f64) -> f64 {
        let p = per_activation.clamp(0.0, 1.0);
        -((self.activations_per_hour * (-p).ln_1p()).exp_m1())
    }

    /// The per-activation exceedance probability that meets a target
    /// hourly failure probability: the inverse of
    /// [`ActivationRate::hourly_failure_probability`].
    ///
    /// This is the cutoff to feed `Pwcet::budget_for` (or
    /// `MbptaReport::budget_for`) when the requirement is stated per hour.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] unless `0 < target < 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::risk::ActivationRate;
    ///
    /// // DAL-A-style 1e-9/hour target for a 100 Hz task:
    /// let rate = ActivationRate::from_hz(100.0)?;
    /// let cutoff = rate.per_activation_cutoff(1e-9)?;
    /// assert!(cutoff < 1e-14 && cutoff > 1e-15);
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn per_activation_cutoff(&self, target_per_hour: f64) -> Result<f64, MbptaError> {
        if !(target_per_hour > 0.0 && target_per_hour < 1.0) {
            return Err(MbptaError::InvalidConfig {
                what: "hourly failure target must be in (0, 1)",
            });
        }
        // p = 1 − (1 − T)^{1/N}, in log space for tiny T.
        let p = -((-target_per_hour).ln_1p() / self.activations_per_hour).exp_m1();
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_and_frequency_agree() {
        let a = ActivationRate::from_period_ms(10.0).unwrap();
        let b = ActivationRate::from_hz(100.0).unwrap();
        assert!((a.per_hour() - b.per_hour()).abs() < 1e-9);
    }

    #[test]
    fn hourly_probability_small_p_linearizes() {
        // For tiny p, 1 − (1−p)^N ≈ N·p.
        let rate = ActivationRate::from_hz(100.0).unwrap(); // N = 360,000
        let p = 1e-15;
        let hourly = rate.hourly_failure_probability(p);
        let expected = 360_000.0 * p;
        assert!((hourly / expected - 1.0).abs() < 1e-6, "hourly={hourly}");
    }

    #[test]
    fn cutoff_round_trips() {
        let rate = ActivationRate::from_period_ms(5.0).unwrap();
        for &target in &[1e-6, 1e-9, 1e-12] {
            let cutoff = rate.per_activation_cutoff(target).unwrap();
            let back = rate.hourly_failure_probability(cutoff);
            assert!(
                (back / target - 1.0).abs() < 1e-9,
                "target={target} back={back}"
            );
        }
    }

    #[test]
    fn faster_tasks_need_smaller_cutoffs() {
        let slow = ActivationRate::from_hz(1.0).unwrap();
        let fast = ActivationRate::from_hz(1000.0).unwrap();
        let target = 1e-9;
        assert!(
            fast.per_activation_cutoff(target).unwrap()
                < slow.per_activation_cutoff(target).unwrap()
        );
    }

    #[test]
    fn certain_failure_saturates() {
        let rate = ActivationRate::from_hz(10.0).unwrap();
        assert!((rate.hourly_failure_probability(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(rate.hourly_failure_probability(0.0), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ActivationRate::from_period_ms(0.0).is_err());
        assert!(ActivationRate::from_hz(-1.0).is_err());
        let rate = ActivationRate::from_hz(1.0).unwrap();
        assert!(rate.per_activation_cutoff(0.0).is_err());
        assert!(rate.per_activation_cutoff(1.0).is_err());
    }
}
