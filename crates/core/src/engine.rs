//! The engine abstraction behind [`AnalysisSession`]: one result
//! vocabulary ([`Verdict`]) and one ingestion contract ([`Engine`]) shared
//! by batch and streaming analysis.
//!
//! The MBPTA workflow is one fixed recipe — i.i.d. gate → block maxima →
//! Gumbel → pWCET — but it can run in two modes: **batch** (buffer the
//! whole campaign, analyse once) and **streaming** (bounded memory,
//! periodic refits). [`BatchEngine`] implements the first in this crate;
//! the streaming implementation (`StreamEngine`) lives in `proxima-stream`
//! and plugs into the same [`Engine`] trait. A session demultiplexes a
//! tagged feed to one engine per channel and folds the per-channel
//! [`Verdict`]s into a program-level envelope.
//!
//! [`AnalysisSession`]: crate::session::AnalysisSession

use proxima_stats::descriptive::Summary;
use proxima_stats::evt::GofReport;

use crate::confidence::BudgetInterval;
use crate::config::MbptaConfig;
use crate::evt_fit::{fit_tail, EvtFit};
use crate::iid::IidReport;
use crate::pipeline::{analyze_impl, MbptaReport};
use crate::pwcet::Pwcet;
use crate::session::ChannelId;
use crate::MbptaError;

/// Which kind of engine produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineKind {
    /// Whole-campaign analysis over a buffered measurement vector.
    Batch,
    /// Bounded-memory incremental analysis.
    Stream,
    /// Sharded bounded-memory analysis: independent per-shard streams
    /// whose mergeable states are folded into one verdict at finish time
    /// (the federated quantile-estimation shape).
    Federated,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Batch => write!(f, "batch"),
            EngineKind::Stream => write!(f, "stream"),
            EngineKind::Federated => write!(f, "federated"),
        }
    }
}

/// Where a [`Verdict`] came from: engine kind, sample size, channel, and
/// (for streaming engines) whether the estimate had converged.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The engine kind that produced the verdict.
    pub engine: EngineKind,
    /// Measurements the verdict is based on.
    pub n: usize,
    /// Streaming convergence state at finish time; `None` for batch
    /// engines (a batch verdict is final by construction).
    pub converged: Option<bool>,
    /// The session channel the verdict belongs to, when produced inside a
    /// multi-channel session.
    pub channel: Option<ChannelId>,
}

/// Descriptive view of what an engine observed. Batch engines retain the
/// full vector and attach an exact [`Summary`]; streaming engines report
/// the exact count/extremes plus a sketch-estimated mean.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationSummary {
    /// Measurements observed.
    pub n: usize,
    /// Exact maximum observed execution time (industry's high watermark).
    pub high_watermark: f64,
    /// Mean of the observations — exact for batch, sketch-estimated for
    /// streaming engines; `None` if no estimate was available.
    pub mean: Option<f64>,
    /// The full descriptive summary, when the engine kept the whole
    /// vector (batch engines only).
    pub detail: Option<Summary>,
}

/// The i.i.d. evidence backing a verdict: the whole-campaign gate (batch)
/// or the rolling windowed diagnostics (streaming).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IidEvidence {
    /// Full-campaign Ljung-Box + two-sample-KS gate.
    Gate(IidReport),
    /// Rolling windowed diagnostics over the most recent observations.
    Rolling {
        /// `Some(true)` if the last window looked i.i.d., `Some(false)`
        /// if a diagnostic flagged it, `None` while warming up.
        healthy: Option<bool>,
        /// p-value of the windowed Ljung-Box test, when computable.
        ljung_box_p: Option<f64>,
        /// p-value of the windowed runs test, when computable.
        runs_p: Option<f64>,
        /// Observations in the window when evaluated.
        window_len: usize,
    },
}

impl IidEvidence {
    /// `true` unless the evidence positively rejects the i.i.d.
    /// hypothesis (a warming rolling window counts as acceptable: no
    /// evidence either way).
    pub fn acceptable(&self) -> bool {
        match self {
            IidEvidence::Gate(report) => report.passed,
            IidEvidence::Rolling { healthy, .. } => *healthy != Some(false),
        }
    }

    /// Short status label for reports: `passed` / `rejected` for the
    /// batch gate, `healthy` / `suspect` / `warming` for rolling windows.
    pub fn label(&self) -> &'static str {
        match self {
            IidEvidence::Gate(report) if report.passed => "passed",
            IidEvidence::Gate(_) => "rejected",
            IidEvidence::Rolling {
                healthy: Some(true),
                ..
            } => "healthy",
            IidEvidence::Rolling {
                healthy: Some(false),
                ..
            } => "suspect",
            IidEvidence::Rolling { healthy: None, .. } => "warming",
        }
    }
}

/// The unified outcome of an MBPTA analysis, produced by every [`Engine`]:
/// the descriptive summary, the i.i.d. evidence, the EVT fit, and the
/// pWCET distribution, plus provenance saying which engine produced it.
///
/// [`MbptaReport`] remains the batch-only view; a batch verdict converts
/// back with [`Verdict::into_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Descriptive summary of the observations.
    pub summary: ObservationSummary,
    /// The i.i.d. evidence.
    pub iid: IidEvidence,
    /// The EVT fit and its diagnostics.
    pub fit: EvtFit,
    /// The pWCET distribution answering per-run exceedance queries.
    pub pwcet: Pwcet,
    /// Which engine produced this verdict, over how many measurements.
    pub provenance: Provenance,
}

impl Verdict {
    /// Promote a batch [`MbptaReport`] into the unified vocabulary.
    pub fn from_report(report: MbptaReport) -> Verdict {
        let n = report.campaign_summary.n;
        Verdict {
            summary: ObservationSummary {
                n,
                high_watermark: report.campaign_summary.max,
                mean: Some(report.campaign_summary.mean),
                detail: Some(report.campaign_summary),
            },
            iid: IidEvidence::Gate(report.iid),
            fit: report.fit,
            pwcet: report.pwcet,
            provenance: Provenance {
                engine: EngineKind::Batch,
                n,
                converged: None,
                channel: None,
            },
        }
    }

    /// Recover the batch-only [`MbptaReport`] view. Returns `None` for
    /// verdicts whose engine did not retain the full campaign (streaming).
    pub fn into_report(self) -> Option<MbptaReport> {
        let campaign_summary = self.summary.detail?;
        let IidEvidence::Gate(iid) = self.iid else {
            return None;
        };
        Some(MbptaReport {
            campaign_summary,
            iid,
            fit: self.fit,
            pwcet: self.pwcet,
        })
    }

    /// The pWCET budget at cutoff probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p < 1`.
    pub fn budget_for(&self, p: f64) -> Result<f64, MbptaError> {
        self.pwcet.budget_for(p)
    }

    /// The observed high watermark.
    pub fn high_watermark(&self) -> f64 {
        self.summary.high_watermark
    }
}

/// One emitted pWCET estimate — the channel-agnostic snapshot vocabulary
/// a session's scheduler emits. The streaming crate's `PwcetSnapshot` is
/// the engine-internal superset this projects from.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineEstimate {
    /// Measurements ingested when the estimate was produced.
    pub n: usize,
    /// Complete blocks (= block maxima) behind the fit, if block-based.
    pub blocks: Option<usize>,
    /// The pWCET budget at the engine's target cutoff.
    pub pwcet: f64,
    /// The full fitted distribution, for queries at other cutoffs.
    pub distribution: Pwcet,
    /// Bootstrap confidence interval, when the engine computes one.
    pub ci: Option<BudgetInterval>,
    /// Relative change versus the previous estimate (`None` on the
    /// first).
    pub convergence_delta: Option<f64>,
    /// i.i.d. evidence at estimate time, when the engine tracks it
    /// incrementally.
    pub iid: Option<IidEvidence>,
    /// `true` once the engine's convergence criterion latched.
    pub converged: bool,
    /// Exact high watermark observed so far.
    pub high_watermark: f64,
}

/// One timing channel's analysis engine: ingest measurements, offer
/// intermediate estimates, and produce a final [`Verdict`].
///
/// Two first-class implementations exist: [`BatchEngine`] (this crate)
/// and `StreamEngine` (`proxima-stream`). [`AnalysisSession`] drives one
/// engine instance per channel.
///
/// [`AnalysisSession`]: crate::session::AnalysisSession
pub trait Engine: Send {
    /// Which kind of engine this is.
    fn kind(&self) -> EngineKind;

    /// Ingest one measurement.
    ///
    /// # Errors
    ///
    /// Engines that validate eagerly (streaming) reject non-finite or
    /// negative values; inside a session such an error quarantines the
    /// channel instead of aborting the session.
    fn push(&mut self, x: f64) -> Result<(), MbptaError>;

    /// Bulk-ingest a slice of measurements. The default folds
    /// [`push`](Self::push) over the slice, so every engine keeps
    /// working unchanged; engines with an amortized bulk path (the
    /// streaming and federated engines) override it. Either way the
    /// engine afterwards is **bit-identical** to the itemized loop at
    /// every batch split.
    ///
    /// # Errors
    ///
    /// Same as [`Self::push`]: ingestion stops at the first rejected
    /// value, with everything before it ingested.
    fn push_batch(&mut self, xs: &[f64]) -> Result<(), MbptaError> {
        for &x in xs {
            self.push(x)?;
        }
        Ok(())
    }

    /// Measurements ingested so far.
    fn len(&self) -> usize;

    /// `true` before the first measurement.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The engine's current estimate, if it can produce one yet. Engines
    /// refit at their own cadence and may return a cached estimate; the
    /// caller detects freshness via [`EngineEstimate::n`].
    fn estimate(&mut self) -> Option<EngineEstimate>;

    /// How many further measurements this engine can ingest with
    /// [`estimate`](Self::estimate) and [`converged`](Self::converged)
    /// guaranteed unchanged — i.e. its next refit/convergence event lies
    /// strictly beyond that many ingests. The session's bulk path polls
    /// once per such stretch instead of once per measurement.
    ///
    /// The default, `None`, promises nothing: the session falls back to
    /// per-item scheduling, which keeps engines that refit *inside*
    /// `estimate()` (the batch engine's poll-cadence refits) exact.
    fn quiet_horizon(&self) -> Option<usize> {
        None
    }

    /// `true` once the engine's convergence criterion has been met
    /// (latched).
    fn converged(&self) -> bool;

    /// Produce the final verdict over everything ingested.
    ///
    /// # Errors
    ///
    /// Whatever the underlying analysis returns (too few runs, i.i.d.
    /// rejection, degenerate fit, …).
    fn finish(&mut self) -> Result<Verdict, MbptaError>;

    /// Serialize the engine's complete state into a sealed checkpoint
    /// blob ([`persist`](crate::persist) format), such that
    /// [`EngineFactory::restore`] rebuilds an engine whose every future
    /// output is **bit-identical** to this one's.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Checkpoint`] if the engine does not support
    /// checkpointing (the default).
    fn save_state(&self) -> Result<Vec<u8>, MbptaError> {
        Err(MbptaError::checkpoint(
            "this engine does not support checkpointing",
        ))
    }
}

/// Creates one [`Engine`] per session channel. Implemented by
/// [`BatchFactory`] here and by `StreamFactory` in `proxima-stream`.
pub trait EngineFactory {
    /// The engine type this factory creates.
    type Engine: Engine;

    /// Create the engine for `channel`. Called once, on the channel's
    /// first measurement (or on [`AnalysisSession::channel`]).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the factory's
    /// configuration cannot produce an engine.
    ///
    /// [`AnalysisSession::channel`]: crate::session::AnalysisSession::channel
    fn create(&self, channel: &ChannelId) -> Result<Self::Engine, MbptaError>;

    /// Rebuild an engine from a checkpoint blob written by
    /// [`Engine::save_state`], verifying that the blob's configuration
    /// fingerprint matches this factory's (a checkpoint must not be
    /// silently resumed under different analysis settings).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Checkpoint`] for corrupt or mismatched
    /// bytes, or if the factory does not support restoring (the
    /// default).
    fn restore(&self, channel: &ChannelId, state: &[u8]) -> Result<Self::Engine, MbptaError> {
        let _ = (channel, state);
        Err(MbptaError::checkpoint(
            "this engine factory does not support checkpoint restore",
        ))
    }
}

/// Creates a [`BatchEngine`] per channel, all sharing one [`MbptaConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFactory {
    config: MbptaConfig,
    target_p: f64,
}

impl BatchFactory {
    /// A factory for `config`, tracking intermediate estimates at the
    /// `target_p` exceedance cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if `config` is invalid or
    /// `target_p` is outside `(0, 1)`.
    pub fn new(config: MbptaConfig, target_p: f64) -> Result<Self, MbptaError> {
        config.validate()?;
        if !(target_p > 0.0 && target_p < 1.0) {
            return Err(MbptaError::InvalidConfig {
                what: "target exceedance probability must be in (0, 1)",
            });
        }
        Ok(BatchFactory { config, target_p })
    }

    /// The shared pipeline configuration.
    pub fn config(&self) -> &MbptaConfig {
        &self.config
    }
}

impl EngineFactory for BatchFactory {
    type Engine = BatchEngine;

    fn create(&self, _channel: &ChannelId) -> Result<BatchEngine, MbptaError> {
        Ok(BatchEngine::new(self.config.clone(), self.target_p))
    }

    fn restore(&self, _channel: &ChannelId, state: &[u8]) -> Result<BatchEngine, MbptaError> {
        let payload = crate::persist::unseal(state, crate::persist::MAGIC_ENGINE)?;
        let mut r = crate::persist::Reader::new(payload);
        let kind = crate::persist::Decode::decode(&mut r)?;
        if !matches!(kind, EngineKind::Batch) {
            return Err(MbptaError::checkpoint(format!(
                "checkpointed engine is `{kind}`, session expects `batch`"
            )));
        }
        let engine = crate::persist::decode_batch_engine(&mut r, &self.config, self.target_p)?;
        r.finish()?;
        Ok(engine)
    }
}

/// How often a batch engine refits for an intermediate estimate, in
/// measurements — mirrors [`ConvergenceConfig::step`].
///
/// [`ConvergenceConfig::step`]: crate::convergence::ConvergenceConfig::step
const BATCH_REFIT_EVERY: usize = 250;
/// Batch convergence: consecutive estimates within this relative
/// tolerance…
const BATCH_REL_TOL: f64 = 0.01;
/// …for this many consecutive refits.
const BATCH_STABLE: usize = 3;

/// The batch engine: buffers the full measurement vector and runs the
/// classic pipeline ([`analyze`]-equivalent) on [`Engine::finish`].
/// Intermediate [`Engine::estimate`]s refit the tail on the current
/// prefix every [few hundred](crate::convergence::ConvergenceConfig)
/// measurements, tracking the same convergence criterion the batch
/// convergence analysis uses.
///
/// Its final verdict is **bit-identical** to calling the classic batch
/// analysis on the same vector — the session acceptance tests assert
/// this.
///
/// [`analyze`]: crate::pipeline::Pipeline::analyze
#[derive(Debug, Clone)]
pub struct BatchEngine {
    pub(crate) config: MbptaConfig,
    pub(crate) target_p: f64,
    pub(crate) times: Vec<f64>,
    pub(crate) high_watermark: f64,
    pub(crate) last_fit_n: usize,
    pub(crate) cached: Option<EngineEstimate>,
    pub(crate) last_budget: Option<f64>,
    pub(crate) stable_run: usize,
    pub(crate) converged: bool,
}

impl BatchEngine {
    /// An engine for `config`, tracking estimates at `target_p`. The
    /// configuration is assumed valid (the factory validates).
    pub fn new(config: MbptaConfig, target_p: f64) -> Self {
        BatchEngine {
            config,
            target_p,
            times: Vec::new(),
            high_watermark: f64::NEG_INFINITY,
            last_fit_n: 0,
            cached: None,
            last_budget: None,
            stable_run: 0,
            converged: false,
        }
    }

    /// The buffered measurements, in ingestion order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    fn refit(&mut self) {
        let n = self.times.len();
        self.last_fit_n = n;
        let Ok(fit) = fit_tail(&self.times, &self.config.block) else {
            return; // retry at the next cadence point
        };
        let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
        let Ok(budget) = pwcet.budget_for(self.target_p) else {
            return;
        };
        let convergence_delta = self.last_budget.map(|prev| ((budget - prev) / prev).abs());
        match convergence_delta {
            Some(delta) if delta <= BATCH_REL_TOL => self.stable_run += 1,
            Some(_) => self.stable_run = 0,
            None => {}
        }
        if self.stable_run >= BATCH_STABLE {
            self.converged = true;
        }
        self.last_budget = Some(budget);
        self.cached = Some(EngineEstimate {
            n,
            blocks: Some(fit.n_maxima),
            pwcet: budget,
            distribution: pwcet,
            ci: None,
            convergence_delta,
            iid: None,
            converged: self.converged,
            high_watermark: self.high_watermark,
        });
    }
}

impl Engine for BatchEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Batch
    }

    fn push(&mut self, x: f64) -> Result<(), MbptaError> {
        // No eager validation: `finish` defers to the classic pipeline,
        // which reports bad values with exactly the batch error
        // semantics.
        self.times.push(x);
        self.high_watermark = self.high_watermark.max(x);
        Ok(())
    }

    fn len(&self) -> usize {
        self.times.len()
    }

    fn estimate(&mut self) -> Option<EngineEstimate> {
        let n = self.times.len();
        // `last_fit_n` advances on failed fits too: a degenerate channel
        // retries at the refit cadence, not on every poll (a session
        // scheduler polls every push once primed — per-poll retries
        // would make a stuck channel quadratic over the campaign).
        if n >= self.config.min_runs
            && (self.last_fit_n == 0 || n - self.last_fit_n >= BATCH_REFIT_EVERY)
        {
            self.refit();
        }
        self.cached.clone()
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn finish(&mut self) -> Result<Verdict, MbptaError> {
        analyze_impl(&self.times, &self.config).map(Verdict::from_report)
    }

    fn save_state(&self) -> Result<Vec<u8>, MbptaError> {
        let mut w = crate::persist::Writer::new();
        crate::persist::Encode::encode(&EngineKind::Batch, &mut w);
        crate::persist::encode_batch_engine(self, &mut w);
        Ok(crate::persist::seal(
            crate::persist::MAGIC_ENGINE,
            w.into_bytes(),
        ))
    }
}

/// Assemble an [`EvtFit`] from an externally maintained block-maxima
/// buffer — the bridge streaming engines use to speak the batch fit
/// vocabulary. The Gumbel/GoF/GEV diagnostics are computed exactly as
/// [`fit_tail`] computes them on the same maxima; the POT cross-check is
/// `None` (it needs the raw vector, which a bounded-memory engine does
/// not keep).
///
/// # Errors
///
/// Returns [`MbptaError::Stats`] if the maxima are degenerate or too few
/// to fit.
pub fn fit_from_maxima(maxima: &[f64], block_size: usize) -> Result<EvtFit, MbptaError> {
    use proxima_stats::evt::{fit_gev, fit_gumbel, goodness_of_fit};
    let gumbel = fit_gumbel(maxima)?;
    let gof: GofReport = goodness_of_fit(maxima, &gumbel)?;
    Ok(EvtFit {
        gumbel,
        block_size,
        n_maxima: maxima.len(),
        gof,
        gev_diagnostic: fit_gev(maxima).ok(),
        pot_cross_check: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn batch_engine_finish_equals_classic_analyze() {
        let times = campaign(2000, 1);
        let config = MbptaConfig::default();
        let mut engine = BatchEngine::new(config.clone(), 1e-12);
        for &x in &times {
            engine.push(x).unwrap();
        }
        let verdict = engine.finish().unwrap();
        let report = analyze_impl(&times, &config).unwrap();
        assert_eq!(verdict.clone().into_report().unwrap(), report);
        assert_eq!(verdict.provenance.engine, EngineKind::Batch);
        assert_eq!(verdict.summary.n, 2000);
    }

    #[test]
    fn batch_engine_estimates_at_cadence_and_converges() {
        let times = campaign(4000, 2);
        let mut engine = BatchEngine::new(MbptaConfig::default(), 1e-12);
        let mut fits = Vec::new();
        for &x in &times {
            engine.push(x).unwrap();
            if let Some(est) = engine.estimate() {
                if fits.last() != Some(&est.n) {
                    fits.push(est.n);
                }
            }
        }
        // First estimate at min_runs, then every BATCH_REFIT_EVERY.
        assert_eq!(fits[0], MbptaConfig::default().min_runs);
        for pair in fits.windows(2) {
            assert_eq!(pair[1] - pair[0], BATCH_REFIT_EVERY);
        }
        assert!(engine.converged(), "stationary campaign converges");
    }

    #[test]
    fn batch_engine_short_buffer_has_no_estimate() {
        let mut engine = BatchEngine::new(MbptaConfig::default(), 1e-12);
        for &x in campaign(50, 3).iter() {
            engine.push(x).unwrap();
        }
        assert!(engine.estimate().is_none());
        assert!(matches!(
            engine.finish(),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn verdict_report_round_trip() {
        let report = analyze_impl(&campaign(1500, 4), &MbptaConfig::default()).unwrap();
        let verdict = Verdict::from_report(report.clone());
        assert!(verdict.iid.acceptable());
        assert_eq!(verdict.iid.label(), "passed");
        assert_eq!(verdict.high_watermark(), report.campaign_summary.max);
        assert_eq!(
            verdict.budget_for(1e-9).unwrap(),
            report.budget_for(1e-9).unwrap()
        );
        assert_eq!(verdict.into_report().unwrap(), report);
    }

    #[test]
    fn fit_from_maxima_matches_fit_tail_gumbel() {
        let times = campaign(3000, 5);
        let maxima = proxima_stats::evt::block_maxima(&times, 50).unwrap();
        let from_maxima = fit_from_maxima(&maxima, 50).unwrap();
        let tail = fit_tail(&times, &crate::config::BlockSpec::Fixed(50)).unwrap();
        assert_eq!(from_maxima.gumbel, tail.gumbel);
        assert_eq!(from_maxima.gof, tail.gof);
        assert_eq!(from_maxima.n_maxima, tail.n_maxima);
        assert!(from_maxima.pot_cross_check.is_none());
    }

    #[test]
    fn batch_engine_checkpoint_round_trips_bit_identically() {
        let times = campaign(1700, 6);
        let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        let channel = ChannelId::new("only");
        let mut engine = factory.create(&channel).unwrap();
        let mut estimates = Vec::new();
        for &x in &times[..900] {
            engine.push(x).unwrap();
            estimates.push(engine.estimate());
        }
        let blob = engine.save_state().unwrap();
        let mut restored = factory.restore(&channel, &blob).unwrap();
        // The restored engine continues exactly where the original left
        // off: every subsequent estimate and the final verdict match bit
        // for bit.
        for &x in &times[900..] {
            engine.push(x).unwrap();
            restored.push(x).unwrap();
            assert_eq!(engine.estimate(), restored.estimate());
            assert_eq!(engine.converged(), restored.converged());
        }
        assert_eq!(engine.finish().unwrap(), restored.finish().unwrap());
    }

    #[test]
    fn batch_restore_rejects_foreign_config_and_corrupt_bytes() {
        let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        let channel = ChannelId::new("only");
        let mut engine = factory.create(&channel).unwrap();
        for &x in campaign(300, 7).iter() {
            engine.push(x).unwrap();
        }
        let blob = engine.save_state().unwrap();
        // A factory with a different cutoff must refuse the blob.
        let other = BatchFactory::new(MbptaConfig::default(), 1e-9).unwrap();
        assert!(matches!(
            other.restore(&channel, &blob),
            Err(MbptaError::Checkpoint { .. })
        ));
        // Truncated and bit-flipped blobs are typed errors, not panics.
        assert!(matches!(
            factory.restore(&channel, &blob[..blob.len() / 2]),
            Err(MbptaError::Checkpoint { .. })
        ));
        let mut flipped = blob.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            factory.restore(&channel, &flipped),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn batch_factory_validates() {
        assert!(BatchFactory::new(MbptaConfig::default(), 1e-12).is_ok());
        assert!(BatchFactory::new(MbptaConfig::default(), 0.0).is_err());
        let bad = MbptaConfig {
            alpha: 0.0,
            ..MbptaConfig::default()
        };
        assert!(BatchFactory::new(bad, 1e-12).is_err());
    }
}
