//! The industrial MBTA baseline: high watermark × engineering factor.
//!
//! The paper compares MBPTA against "an industrial practice based on MBTA
//! applied to the baseline non-randomized platform … increasing by an
//! engineering factor (e.g. 50%) the highest value observed". The factor
//! covers unquantified uncertainty (worst cache layout, pathological
//! replacement states); its adequacy cannot be argued from the
//! measurements themselves, which is exactly the weakness MBPTA addresses.

use crate::{Campaign, MbptaError};

/// An MBTA bound: the observed high watermark inflated by a margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MbtaEstimate {
    /// Maximum observed execution time.
    pub high_watermark: f64,
    /// Engineering margin (0.2 = 20%).
    pub margin: f64,
    /// The resulting bound: `high_watermark × (1 + margin)`.
    pub bound: f64,
}

impl MbtaEstimate {
    /// Compute the MBTA bound from a campaign on the deterministic
    /// platform.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] for a negative margin.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::{baseline::MbtaEstimate, Campaign};
    ///
    /// let campaign = Campaign::from_times(vec![900.0, 1000.0, 950.0])?;
    /// let est = MbtaEstimate::from_campaign(&campaign, 0.5)?;
    /// assert_eq!(est.bound, 1500.0);
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn from_campaign(campaign: &Campaign, margin: f64) -> Result<Self, MbptaError> {
        if !(margin >= 0.0 && margin.is_finite()) {
            return Err(MbptaError::InvalidConfig {
                what: "engineering margin must be non-negative and finite",
            });
        }
        let hwm = campaign.high_watermark();
        Ok(MbtaEstimate {
            high_watermark: hwm,
            margin,
            bound: hwm * (1.0 + margin),
        })
    }

    /// The customary margins quoted in industrial practice (20% and 50%).
    pub fn customary_margins() -> [f64; 2] {
        [0.2, 0.5]
    }
}

impl std::fmt::Display for MbtaEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MBTA bound {:.0} (hwm {:.0} + {:.0}%)",
            self.bound,
            self.high_watermark,
            self.margin * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign() -> Campaign {
        Campaign::from_times(vec![100.0, 120.0, 110.0, 118.0]).unwrap()
    }

    #[test]
    fn bound_is_hwm_times_factor() {
        let e = MbtaEstimate::from_campaign(&campaign(), 0.5).unwrap();
        assert_eq!(e.high_watermark, 120.0);
        assert_eq!(e.bound, 180.0);
        let e20 = MbtaEstimate::from_campaign(&campaign(), 0.2).unwrap();
        assert_eq!(e20.bound, 144.0);
    }

    #[test]
    fn zero_margin_is_plain_hwm() {
        let e = MbtaEstimate::from_campaign(&campaign(), 0.0).unwrap();
        assert_eq!(e.bound, e.high_watermark);
    }

    #[test]
    fn negative_margin_rejected() {
        assert!(MbtaEstimate::from_campaign(&campaign(), -0.1).is_err());
        assert!(MbtaEstimate::from_campaign(&campaign(), f64::NAN).is_err());
    }

    #[test]
    fn display_readable() {
        let e = MbtaEstimate::from_campaign(&campaign(), 0.5).unwrap();
        let s = e.to_string();
        assert!(s.contains("180") && s.contains("50%"));
    }

    #[test]
    fn customary_margins_listed() {
        assert_eq!(MbtaEstimate::customary_margins(), [0.2, 0.5]);
    }
}
