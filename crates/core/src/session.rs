//! Multi-channel analysis sessions: demultiplex a tagged measurement
//! feed to one [`Engine`] per timing channel, schedule snapshots across
//! channels, and fold the per-channel [`Verdict`]s into a program-level
//! envelope.
//!
//! A *channel* is one independent timing population — a program path, a
//! core, a tenant. The session routes each [`Tagged`] measurement to its
//! channel's engine (created on first sight by the session's
//! [`EngineFactory`]), so any interleaving of channel feeds yields the
//! same per-channel verdicts as analysing each channel's measurements
//! alone. A shared scheduler emits [`SessionSnapshot`]s every `K`
//! measurements (round-robin across channels) and immediately when a
//! channel's estimate converges.
//!
//! One bad feed cannot abort the session: a channel whose engine rejects
//! a measurement (or whose analysis fails at the end) is quarantined and
//! reported per channel in the merged [`SessionVerdict`], wrapped in
//! [`MbptaError::Channel`].
//!
//! With [`SessionBuilder::early_finish`] enabled, a channel's engine is
//! finished and **dropped the moment its estimate converges** — its
//! sketch/buffer/window memory is freed mid-session instead of being
//! held until [`AnalysisSession::merge`], and later measurements on that
//! channel are counted and dropped.
//!
//! Same-channel runs can be bulk-ingested through
//! [`AnalysisSession::push_batch`] (or a [`ChannelHandle`]'s), which is
//! bit-identical to the per-item feed — identical snapshots, scheduler
//! bookkeeping and checkpoint bytes — while the scheduler scan runs once
//! per quiet stretch instead of once per measurement:
//!
//! ```
//! use proxima_mbpta::session::Tagged;
//! use proxima_mbpta::MbptaConfig;
//!
//! let times: Vec<f64> = (0..400).map(|i| 1e5 + f64::from(i % 83)).collect();
//! let mut itemized = MbptaConfig::default().session().build_batch()?;
//! for &x in &times {
//!     itemized.push(Tagged::new("chan", x))?;
//! }
//! let mut batched = MbptaConfig::default().session().build_batch()?;
//! batched.push_batch("chan", &times)?;
//! assert_eq!(batched.checkpoint()?, itemized.checkpoint()?);
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```
//!
//! [`SessionBuilder::early_finish`]: crate::config::SessionBuilder::early_finish
//!
//! # Examples
//!
//! ```
//! use proxima_mbpta::session::Tagged;
//! use proxima_mbpta::MbptaConfig;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut session = MbptaConfig::default().session().build_batch()?;
//! // A tagged feed interleaving two tenants.
//! for _ in 0..1000 {
//!     let fast = 1e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 60.0;
//!     let slow = 1.4e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 90.0;
//!     session.push(Tagged::new("tenant-a", fast))?;
//!     session.push(Tagged::new("tenant-b", slow))?;
//! }
//! let verdict = session.merge();
//! assert!(verdict.all_ok());
//! let (worst, budget) = verdict.envelope_budget(1e-12)?;
//! assert_eq!(worst.as_str(), "tenant-b");
//! assert!(budget > 1.4e5);
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::campaign::run_sharded;
use crate::engine::{Engine, EngineEstimate, EngineFactory, Verdict};
use crate::MbptaError;

/// Identifies one timing channel (per path / per core / per tenant) in a
/// tagged feed. Cheap to clone (shared string).
///
/// # Examples
///
/// ```
/// use proxima_mbpta::session::ChannelId;
///
/// let a = ChannelId::new("core0/nominal");
/// let b: ChannelId = "core0/nominal".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "core0/nominal");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(Arc<str>);

impl ChannelId {
    /// A channel id with the given label.
    pub fn new(label: impl AsRef<str>) -> Self {
        ChannelId(Arc::from(label.as_ref()))
    }

    /// The label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ChannelId {
    fn from(s: &str) -> Self {
        ChannelId::new(s)
    }
}

impl From<String> for ChannelId {
    fn from(s: String) -> Self {
        ChannelId(Arc::from(s))
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One measurement of a tagged feed: which channel it belongs to and the
/// measured execution time.
///
/// Parses from the tagged-line interchange format — `<channel> <time>`
/// (whitespace- or comma-separated) — used by `mbpta session`:
///
/// ```
/// use proxima_mbpta::session::Tagged;
///
/// let t: Tagged = "core0/nominal 104250".parse()?;
/// assert_eq!(t.channel.as_str(), "core0/nominal");
/// assert_eq!(t.time, 104250.0);
/// let u: Tagged = "tenant-b,98000.5".parse()?;
/// assert_eq!(u.channel.as_str(), "tenant-b");
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged {
    /// The channel the measurement belongs to.
    pub channel: ChannelId,
    /// The measured execution time.
    pub time: f64,
}

impl Tagged {
    /// A tagged measurement.
    pub fn new(channel: impl Into<ChannelId>, time: f64) -> Self {
        Tagged {
            channel: channel.into(),
            time,
        }
    }
}

impl std::str::FromStr for Tagged {
    type Err = MbptaError;

    fn from_str(line: &str) -> Result<Self, MbptaError> {
        let line = line.trim();
        let (channel, time) = line
            .split_once(',')
            .or_else(|| line.split_once(char::is_whitespace))
            .ok_or(MbptaError::InvalidConfig {
                what: "tagged line must be `<channel> <time>` or `<channel>,<time>`",
            })?;
        let channel = channel.trim();
        if channel.is_empty() {
            return Err(MbptaError::InvalidConfig {
                what: "tagged line has an empty channel label",
            });
        }
        let time = time
            .trim()
            .parse::<f64>()
            .map_err(|_| MbptaError::InvalidConfig {
                what: "tagged line has an unparsable time value",
            })?;
        Ok(Tagged::new(channel, time))
    }
}

/// One emitted snapshot of a session channel's estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The channel the estimate belongs to.
    pub channel: ChannelId,
    /// Session-wide measurements ingested when the snapshot was emitted.
    pub total: usize,
    /// The channel engine's estimate.
    pub estimate: EngineEstimate,
}

#[derive(Clone)]
struct ChannelState<E> {
    id: ChannelId,
    /// The running engine; `None` once the channel no longer needs one —
    /// finished early (verdict moved to `early_verdict`) or quarantined
    /// (`failed` set) — so its state (sketches, buffers, windows) is
    /// freed mid-session instead of at merge.
    engine: Option<E>,
    /// The stored verdict of an early-finished channel, already
    /// channel-scoped like [`AnalysisSession::merge`] produces it.
    early_verdict: Option<Result<Verdict, MbptaError>>,
    /// Measurements the engine had accepted when it was dropped (early
    /// finish or quarantine).
    accepted: usize,
    /// First engine failure on this channel; once set, the channel is
    /// quarantined and further measurements are counted in `dropped`.
    failed: Option<MbptaError>,
    /// Measurements dropped after quarantine (or after an early finish).
    dropped: usize,
    /// `EngineEstimate::n` of the last emitted snapshot, for freshness.
    last_emitted_n: Option<usize>,
    /// Channel length at the last poll that found nothing fresh — an
    /// engine's estimate is a pure function of its pushes, so until the
    /// channel grows past this there is nothing new to poll for.
    last_polled_len: usize,
    /// Whether the convergence transition has been announced.
    converged_emitted: bool,
}

impl<E: Engine> ChannelState<E> {
    /// Poll for a fresh (not-yet-emitted) estimate. Records the polled
    /// length whenever the outcome cannot change until the channel grows,
    /// so repeated scans between refits cost one length comparison.
    fn fresh_estimate(&mut self) -> Option<EngineEstimate> {
        let engine = self.engine.as_mut()?;
        let len = engine.len();
        if len == self.last_polled_len {
            return None;
        }
        match engine.estimate() {
            Some(estimate) if self.last_emitted_n != Some(estimate.n) => Some(estimate),
            _ => {
                self.last_polled_len = len;
                None
            }
        }
    }

    /// Record an emission at estimate count `n`.
    fn mark_emitted(&mut self, n: usize) {
        self.last_emitted_n = Some(n);
        self.last_polled_len = self.engine.as_ref().map_or(0, |e| e.len());
    }

    /// Finish the engine now and drop it, freeing its state; the verdict
    /// is held for [`AnalysisSession::merge`]. Pushes arriving after
    /// this are counted in `dropped`.
    fn finish_early(&mut self) {
        if let Some(mut engine) = self.engine.take() {
            self.accepted = engine.len();
            self.early_verdict = Some(
                engine
                    .finish()
                    .map(|mut verdict| {
                        verdict.provenance.channel = Some(self.id.clone());
                        verdict
                    })
                    .map_err(|e| MbptaError::channel_scoped(self.id.clone(), e)),
            );
        }
    }
}

/// A multi-channel analysis session. Created by
/// [`SessionBuilder`](crate::config::SessionBuilder); see the
/// [module docs](self) for the overall shape.
pub struct AnalysisSession<F: EngineFactory> {
    factory: F,
    channels: Vec<ChannelState<F::Engine>>,
    /// Channel-id → slot lookup. A `BTreeMap` on purpose: nothing
    /// iterates it today, but if something ever does, the order is the
    /// channel ids' — deterministic — not a hasher's.
    index: BTreeMap<ChannelId, usize>,
    total: usize,
    snapshot_every: usize,
    since_snapshot: usize,
    rr_cursor: usize,
    /// Auto-checkpoint cadence in measurements (`0` = disabled). Like
    /// `jobs` this is runtime policy, not analysis state: it is **not**
    /// persisted in [`checkpoint`](Self::checkpoint) blobs (the blob
    /// format predates it and results never depend on it).
    checkpoint_every: usize,
    /// `total` at the last [`mark_checkpointed`](Self::mark_checkpointed)
    /// (or at construction/restore — both are checkpoint boundaries).
    last_checkpoint_at: usize,
    jobs: usize,
    /// When true, a channel's engine is finished and dropped as soon as
    /// its estimate converges — freeing sketch/buffer memory in long
    /// sessions — instead of running until [`merge`](Self::merge).
    early_finish: bool,
    /// When false the session never polls engines (no scheduled
    /// snapshots, no convergence announcements) — the one-shot
    /// [`SessionBuilder::analyze`](crate::config::SessionBuilder::analyze)
    /// path, which has no snapshot consumer.
    polling: bool,
}

impl<F: EngineFactory> AnalysisSession<F> {
    /// Create a session. `snapshot_every` is the scheduler period in
    /// measurements (`0` disables scheduled snapshots; convergence
    /// announcements still fire); `jobs` bounds the worker threads
    /// [`merge`](Self::merge) uses (`0` = all cores); `early_finish`
    /// finishes each channel at its convergence announcement.
    pub(crate) fn new(
        factory: F,
        snapshot_every: usize,
        checkpoint_every: usize,
        jobs: usize,
        early_finish: bool,
    ) -> Self {
        AnalysisSession {
            factory,
            channels: Vec::new(),
            index: BTreeMap::new(),
            total: 0,
            snapshot_every,
            since_snapshot: 0,
            rr_cursor: 0,
            checkpoint_every,
            last_checkpoint_at: 0,
            jobs,
            early_finish,
            polling: true,
        }
    }

    /// Disable engine polling entirely (scheduled snapshots and
    /// convergence announcements) — for one-shot ingestion with no
    /// snapshot consumer.
    pub(crate) fn set_polling(&mut self, enabled: bool) {
        self.polling = enabled;
    }

    /// Total measurements ingested across all channels.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` before the first measurement.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of channels seen so far.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The channel ids, in first-seen order.
    pub fn channel_ids(&self) -> impl Iterator<Item = &ChannelId> {
        self.channels.iter().map(|c| &c.id)
    }

    /// The worker-thread bound [`merge`](Self::merge) will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The auto-checkpoint cadence in measurements (`0` = disabled).
    ///
    /// Configured with
    /// [`SessionBuilder::checkpoint_every`](crate::config::SessionBuilder::checkpoint_every);
    /// the session only *counts* — the caller owns the checkpoint
    /// bytes/IO: poll [`checkpoint_due`](Self::checkpoint_due) after
    /// ingesting, write [`checkpoint`](Self::checkpoint) somewhere
    /// durable, then [`mark_checkpointed`](Self::mark_checkpointed).
    pub fn checkpoint_every(&self) -> usize {
        self.checkpoint_every
    }

    /// Change the auto-checkpoint cadence (`0` disables it). Cadence is
    /// runtime policy, so a [`restore`](Self::restore)d session starts
    /// with it disabled — set it again if checkpointing should continue.
    pub fn set_checkpoint_every(&mut self, every: usize) {
        self.checkpoint_every = every;
    }

    /// Measurements ingested since the last
    /// [`mark_checkpointed`](Self::mark_checkpointed) (or since
    /// construction/restore, which are both checkpoint boundaries).
    pub fn since_checkpoint(&self) -> usize {
        self.total - self.last_checkpoint_at
    }

    /// `true` when a cadence is set and at least that many measurements
    /// arrived since the last checkpoint mark.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_every > 0 && self.since_checkpoint() >= self.checkpoint_every
    }

    /// Measurements until the next checkpoint falls due (`None` when the
    /// cadence is disabled, `Some(0)` when one is already due). Feeders
    /// that want checkpoint positions independent of their chunking cut
    /// chunks to this bound.
    pub fn until_checkpoint(&self) -> Option<usize> {
        if self.checkpoint_every == 0 {
            None
        } else {
            Some(
                self.checkpoint_every
                    .saturating_sub(self.since_checkpoint()),
            )
        }
    }

    /// Record that the caller just persisted a
    /// [`checkpoint`](Self::checkpoint): the cadence counter restarts
    /// from the current total.
    pub fn mark_checkpointed(&mut self) {
        self.last_checkpoint_at = self.total;
    }

    /// Install a channel from engine-state bytes ([`Engine::save_state`]
    /// format), routed through [`EngineFactory::restore`] — so the blob's
    /// engine kind and configuration fingerprint are verified exactly as
    /// on a session restore. This is the federated ingestion surface: a
    /// shard ships sealed analyzer state, the coordinator folds it into
    /// engine-state bytes and adopts it as a live channel (which can keep
    /// accepting measurements afterwards).
    ///
    /// The adopted engine's measurements count toward the session total
    /// (and the checkpoint cadence), but do not retroactively trigger
    /// scheduled snapshots.
    ///
    /// # Errors
    ///
    /// * [`MbptaError::InvalidConfig`] if the channel already exists —
    ///   adopting must not silently clobber live analysis state;
    /// * [`MbptaError::Checkpoint`] for corrupt, wrong-kind or
    ///   configuration-mismatched state bytes.
    pub fn adopt_channel(
        &mut self,
        id: impl Into<ChannelId>,
        state: &[u8],
    ) -> Result<(), MbptaError> {
        let id = id.into();
        if self.index.contains_key(&id) {
            return Err(MbptaError::InvalidConfig {
                what: "cannot adopt a channel that already exists in the session",
            });
        }
        let engine = self.factory.restore(&id, state)?;
        let n = engine.len();
        let i = self.channels.len();
        self.channels.push(ChannelState {
            id: id.clone(),
            engine: Some(engine),
            early_verdict: None,
            accepted: 0,
            failed: None,
            dropped: 0,
            last_emitted_n: None,
            last_polled_len: 0,
            converged_emitted: false,
        });
        self.index.insert(id, i);
        self.total += n;
        Ok(())
    }

    /// `true` once every healthy channel's estimate has converged (and
    /// at least one channel exists). Quarantined channels are excluded —
    /// they will never converge and are reported at [`merge`](Self::merge)
    /// instead; early-finished channels count as converged.
    pub fn all_converged(&self) -> bool {
        let mut healthy = 0;
        for state in &self.channels {
            if state.failed.is_some() {
                continue;
            }
            if let Some(engine) = &state.engine {
                if !engine.converged() {
                    return false;
                }
            }
            healthy += 1;
        }
        healthy > 0
    }

    fn channel_index(&mut self, id: ChannelId) -> Result<usize, MbptaError> {
        if let Some(&i) = self.index.get(&id) {
            return Ok(i);
        }
        let engine = self
            .factory
            .create(&id)
            .map_err(|e| MbptaError::channel_scoped(id.clone(), e))?;
        let i = self.channels.len();
        self.channels.push(ChannelState {
            id: id.clone(),
            engine: Some(engine),
            early_verdict: None,
            accepted: 0,
            failed: None,
            dropped: 0,
            last_emitted_n: None,
            last_polled_len: 0,
            converged_emitted: false,
        });
        self.index.insert(id, i);
        Ok(i)
    }

    /// A handle to `channel`, creating its engine if this is the first
    /// sighting. The handle pushes without re-hashing the channel id.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Channel`] if the factory cannot create an
    /// engine for this channel (configuration error).
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::MbptaConfig;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    /// let mut session = MbptaConfig::default().session().build_batch()?;
    /// let mut nominal = session.channel("nominal")?;
    /// for _ in 0..1000 {
    ///     let x = 1e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 70.0;
    ///     nominal.push(x);
    /// }
    /// assert_eq!(nominal.len(), 1000);
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn channel(
        &mut self,
        id: impl Into<ChannelId>,
    ) -> Result<ChannelHandle<'_, F>, MbptaError> {
        let index = self.channel_index(id.into())?;
        Ok(ChannelHandle {
            session: self,
            index,
        })
    }

    /// Ingest one tagged measurement, creating the channel's engine on
    /// first sight. Returns a snapshot when the scheduler emitted one.
    ///
    /// A measurement the channel's engine rejects (non-finite value on a
    /// validating engine) **quarantines that channel** — it is reported
    /// in the merged verdict — rather than failing the session; pushes
    /// to a quarantined channel are counted and dropped. Engine
    /// *creation* failure is a configuration error and is returned.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Channel`] only if the engine factory fails
    /// for a new channel.
    pub fn push(&mut self, tagged: Tagged) -> Result<Option<SessionSnapshot>, MbptaError> {
        let index = self.channel_index(tagged.channel)?;
        Ok(self.push_at(index, tagged.time))
    }

    /// Ingest a whole feed, collecting every snapshot emitted along the
    /// way.
    ///
    /// # Errors
    ///
    /// Same as [`Self::push`].
    pub fn extend(
        &mut self,
        feed: impl IntoIterator<Item = Tagged>,
    ) -> Result<Vec<SessionSnapshot>, MbptaError> {
        let mut out = Vec::new();
        for tagged in feed {
            if let Some(snap) = self.push(tagged)? {
                out.push(snap);
            }
        }
        Ok(out)
    }

    /// Bulk-ingest a slice of measurements for one channel, collecting
    /// every snapshot the itemized [`push`](Self::push) loop would have
    /// emitted — **bit for bit**, including the scheduler's checkpointed
    /// bookkeeping — while the engine ingests in amortized batches.
    ///
    /// The slice is cut into *quiet stretches*: runs of measurements
    /// across which the channel's engine guarantees its estimate and
    /// convergence verdict cannot change ([`Engine::quiet_horizon`]) and
    /// no scheduled snapshot falls due. Each stretch takes the engine's
    /// [`Engine::push_batch`] path and settles the scheduler with one
    /// poll (or, when the scheduler is primed, one scan) instead of one
    /// per measurement; the measurements *at* refit checkpoints and
    /// snapshot deadlines go through the exact per-item path. Engines
    /// with no horizon (the batch engine's poll-cadence refits) fall
    /// back to per-item scheduling throughout.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Channel`] only if the engine factory fails
    /// for a new channel. A measurement the engine rejects does *not*
    /// error: exactly as in the itemized loop it quarantines the channel,
    /// and the rest of the slice is counted as dropped.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::session::Tagged;
    /// use proxima_mbpta::MbptaConfig;
    ///
    /// let feed: Vec<f64> = (0..2_000).map(|i| 1e5 + ((i * 37) % 500) as f64).collect();
    /// let mut batched = MbptaConfig::default().session().build_batch()?;
    /// let mut itemized = MbptaConfig::default().session().build_batch()?;
    ///
    /// let snaps = batched.push_batch("nominal", &feed)?;
    /// let mut reference = Vec::new();
    /// for &x in &feed {
    ///     reference.extend(itemized.push(Tagged::new("nominal", x))?);
    /// }
    /// assert_eq!(snaps, reference);
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn push_batch(
        &mut self,
        channel: impl Into<ChannelId>,
        xs: &[f64],
    ) -> Result<Vec<SessionSnapshot>, MbptaError> {
        let index = self.channel_index(channel.into())?;
        Ok(self.push_batch_at(index, xs))
    }

    fn push_batch_at(&mut self, index: usize, xs: &[f64]) -> Vec<SessionSnapshot> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < xs.len() {
            let stretch = self.quiet_stretch(index, xs.len() - i);
            if stretch <= 1 {
                // At a refit checkpoint, snapshot deadline or pending
                // announcement: take the exact per-item path.
                if let Some(snap) = self.push_at(index, xs[i]) {
                    out.push(snap);
                }
                i += 1;
                continue;
            }
            let chunk = &xs[i..i + stretch];
            i += stretch;
            self.ingest_quietly(index, chunk);
            if !self.polling {
                continue;
            }
            if self.snapshot_every == 0 {
                self.poll_quietly(index);
            } else if self.since_snapshot >= self.snapshot_every {
                // Primed scheduler: the per-item scans all provably
                // failed (no channel was fresh when it primed and the
                // pushed engine is inside its quiet horizon); the last
                // item's full emit reproduces their cumulative
                // bookkeeping exactly.
                let emitted = self.emit(index);
                debug_assert!(emitted.is_none(), "scan emitted inside a quiet stretch");
            } else {
                self.since_snapshot += chunk.len();
                debug_assert!(self.since_snapshot < self.snapshot_every);
                self.poll_quietly(index);
            }
        }
        out
    }

    /// How many measurements can be bulk-ingested for `channels[index]`
    /// from the current state before the per-item scheduler could do
    /// anything but bookkeeping. `<= 1` means "go item by item".
    fn quiet_stretch(&self, index: usize, remaining: usize) -> usize {
        if !self.polling {
            return remaining;
        }
        let state = &self.channels[index];
        let engine_h = match &state.engine {
            // Quarantined or early-finished: pushes only count drops and
            // can never announce.
            None => usize::MAX,
            Some(engine) => {
                if state.failed.is_none() && !state.converged_emitted && engine.converged() {
                    return 1; // announcement pending on the next push
                }
                match engine.quiet_horizon() {
                    None => return 1,
                    Some(h) => h,
                }
            }
        };
        let schedule_h = if self.snapshot_every == 0 {
            usize::MAX
        } else if self.since_snapshot >= self.snapshot_every {
            // Primed: scans run every item but provably keep failing
            // inside the engine's horizon.
            engine_h
        } else {
            self.snapshot_every - self.since_snapshot - 1
        };
        remaining.min(engine_h).min(schedule_h)
    }

    /// The per-item ingest loop of [`Self::push_at`], collapsed for a
    /// quiet stretch: bulk engine ingest, with the itemized quarantine
    /// semantics (prefix accepted, rejected value swallowed, remainder
    /// dropped) on an engine error.
    fn ingest_quietly(&mut self, index: usize, chunk: &[f64]) {
        self.total += chunk.len();
        let poll_eligible = self.polling;
        let state = &mut self.channels[index];
        match state.engine.as_mut() {
            None => state.dropped += chunk.len(),
            Some(engine) => {
                let before = engine.len();
                if let Err(e) = engine.push_batch(chunk) {
                    let ingested = engine.len() - before;
                    // The itemized loop polled after each accepted
                    // measurement; settle that bookkeeping while the
                    // engine is still here (a no-op when nothing was
                    // accepted — the outcome class cannot change inside
                    // the quiet stretch).
                    if poll_eligible && state.failed.is_none() && !state.converged_emitted {
                        let _ = state.fresh_estimate();
                    }
                    state.failed = Some(e);
                    if let Some(engine) = state.engine.take() {
                        state.accepted = engine.len();
                    }
                    // The rejected measurement itself is neither
                    // accepted nor dropped, exactly as in `push_at`.
                    state.dropped += chunk.len() - ingested - 1;
                }
            }
        }
    }

    /// The convergence-announcement poll of [`Self::emit`] for a whole
    /// quiet stretch: one `fresh_estimate` settles `last_polled_len` to
    /// exactly the per-item end state (fruitless polls record the final
    /// length; a fresh-but-unconverged estimate leaves it untouched —
    /// and the class cannot flip inside the stretch).
    fn poll_quietly(&mut self, index: usize) {
        let state = &mut self.channels[index];
        if state.failed.is_none() && !state.converged_emitted && state.engine.is_some() {
            let _ = state.fresh_estimate();
        }
    }

    fn push_at(&mut self, index: usize, time: f64) -> Option<SessionSnapshot> {
        self.total += 1;
        let state = &mut self.channels[index];
        let outcome = match state.engine.as_mut() {
            // Quarantined or early-finished: count and drop.
            None => {
                state.dropped += 1;
                Ok(())
            }
            Some(engine) => engine.push(time),
        };
        if let Err(e) = outcome {
            // Quarantine the channel AND free its engine state now: merge
            // takes the error path and never reads the engine again, so
            // holding its buffers for the rest of the session would only
            // burn memory.
            state.failed = Some(e);
            if let Some(engine) = state.engine.take() {
                state.accepted = engine.len();
            }
        }
        self.emit(index)
    }

    /// The snapshot scheduler: announce a convergence transition on the
    /// just-pushed channel immediately; otherwise, every
    /// `snapshot_every` measurements, emit the next fresh estimate in
    /// round-robin channel order.
    fn emit(&mut self, pushed: usize) -> Option<SessionSnapshot> {
        if !self.polling {
            return None;
        }
        let total = self.total;
        let state = &mut self.channels[pushed];
        if state.failed.is_none() && !state.converged_emitted && state.engine.is_some() {
            // Poll the pushed channel even when scheduled snapshots are
            // off: engines that refit on demand (batch) track their
            // convergence inside `estimate`, and the poll is cadence-
            // gated inside the engine.
            let fresh = state.fresh_estimate();
            if state.engine.as_ref().is_some_and(Engine::converged) {
                state.converged_emitted = true;
                // Announce only if the scheduler has not already emitted
                // this exact estimate (it carries `converged: true`).
                let announcement = fresh.map(|estimate| {
                    state.mark_emitted(estimate.n);
                    SessionSnapshot {
                        channel: state.id.clone(),
                        total,
                        estimate,
                    }
                });
                if self.early_finish {
                    state.finish_early();
                }
                if announcement.is_some() {
                    return announcement;
                }
            }
        }
        if self.snapshot_every == 0 {
            return None;
        }
        self.since_snapshot += 1;
        if self.since_snapshot < self.snapshot_every {
            return None;
        }
        let n_channels = self.channels.len();
        for k in 0..n_channels {
            let i = (self.rr_cursor + k) % n_channels;
            let state = &mut self.channels[i];
            if state.failed.is_some() {
                continue;
            }
            if let Some(estimate) = state.fresh_estimate() {
                state.mark_emitted(estimate.n);
                self.rr_cursor = (i + 1) % n_channels;
                self.since_snapshot = 0;
                return Some(SessionSnapshot {
                    channel: state.id.clone(),
                    total,
                    estimate,
                });
            }
        }
        // No channel had a fresh estimate: stay primed so the next fresh
        // one emits without waiting another full period (the primed
        // re-scan is one length comparison per channel).
        self.since_snapshot = self.snapshot_every;
        None
    }

    /// Serialize the session's complete state into a sealed checkpoint
    /// blob: scheduler cursors (`total`, snapshot phase, round-robin
    /// cursor), the early-finish/polling flags, and — per channel, in
    /// first-seen order — its engine state ([`Engine::save_state`]),
    /// quarantine error, early-finish verdict, drop counters and
    /// snapshot-freshness bookkeeping.
    ///
    /// [`AnalysisSession::restore`] rebuilds a session whose every
    /// subsequent snapshot, convergence announcement and merged verdict
    /// is **bit-identical** to this one's, at any `jobs` setting.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Checkpoint`] if a channel's engine cannot
    /// serialize its state.
    pub fn checkpoint(&self) -> Result<Vec<u8>, MbptaError> {
        use crate::persist::{seal, Writer, MAGIC_SESSION};
        let mut w = Writer::new();
        w.usize(self.total);
        w.usize(self.snapshot_every);
        w.usize(self.since_snapshot);
        w.usize(self.rr_cursor);
        w.bool(self.early_finish);
        w.bool(self.polling);
        w.usize(self.channels.len());
        for state in &self.channels {
            encode_channel_state(state, &mut w)?;
        }
        Ok(seal(MAGIC_SESSION, w.into_bytes()))
    }

    /// Serialize one channel's complete state — engine, early verdict,
    /// quarantine error, drop counters and snapshot bookkeeping — as a
    /// standalone sealed record (magic
    /// [`MAGIC_CHANNEL`](crate::persist::MAGIC_CHANNEL)).
    ///
    /// The record is the unit of channel migration: a sharded
    /// coordinator that re-partitions channels across worker sessions
    /// exports each channel from the session that held it and
    /// [`adopt_channel_record`](Self::adopt_channel_record)s it into
    /// its new owner. The encoding is byte-for-byte the per-channel
    /// section of a session [`checkpoint`](Self::checkpoint), so a
    /// migrated channel's later snapshots and verdicts are
    /// **bit-identical** to never having moved.
    ///
    /// # Errors
    ///
    /// [`MbptaError::Checkpoint`] if the channel is unknown or its
    /// engine cannot serialize its state.
    pub fn export_channel_record(&self, channel: &str) -> Result<Vec<u8>, MbptaError> {
        use crate::persist::{seal, Writer, MAGIC_CHANNEL};
        let state = self
            .channels
            .iter()
            .find(|state| state.id.as_str() == channel)
            .ok_or_else(|| {
                MbptaError::checkpoint(format!("cannot export unknown channel `{channel}`"))
            })?;
        let mut w = Writer::new();
        encode_channel_state(state, &mut w)?;
        Ok(seal(MAGIC_CHANNEL, w.into_bytes()))
    }

    /// Install a channel from an
    /// [`export_channel_record`](Self::export_channel_record) blob,
    /// restoring its engine through [`EngineFactory::restore`] (so the
    /// record's configuration fingerprint is verified against this
    /// session's factory). The channel arrives with its full history —
    /// early verdict, quarantine state, drop counters, snapshot
    /// bookkeeping — and its measurements count toward the session
    /// total, exactly as on a session restore.
    ///
    /// # Errors
    ///
    /// * [`MbptaError::InvalidConfig`] if the channel already exists;
    /// * [`MbptaError::Checkpoint`] for corrupt, wrong-magic or
    ///   configuration-mismatched record bytes.
    pub fn adopt_channel_record(&mut self, record: &[u8]) -> Result<ChannelId, MbptaError> {
        use crate::persist::{unseal, Reader, MAGIC_CHANNEL};
        let payload = unseal(record, MAGIC_CHANNEL)?;
        let mut r = Reader::new(payload);
        let state = decode_channel_state(&self.factory, &mut r)?;
        r.finish()?;
        if self.index.contains_key(&state.id) {
            return Err(MbptaError::InvalidConfig {
                what: "cannot adopt a channel that already exists in the session",
            });
        }
        let id = state.id.clone();
        let n = state.engine.as_ref().map_or(state.accepted, Engine::len);
        self.index.insert(id.clone(), self.channels.len());
        self.channels.push(state);
        self.total += n;
        Ok(id)
    }

    /// Rebuild a session from a [`checkpoint`](Self::checkpoint) blob.
    /// Channel engines are recreated through
    /// [`EngineFactory::restore`], which verifies the blob's
    /// configuration fingerprint against `factory` — a checkpoint cannot
    /// be silently resumed under different analysis settings. `jobs`
    /// bounds the worker threads [`merge`](Self::merge) will use (it
    /// does not affect results, so it may differ from the
    /// checkpointing process's setting).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Checkpoint`] for truncated, corrupted,
    /// wrong-version or configuration-mismatched bytes.
    pub fn restore(factory: F, state: &[u8], jobs: usize) -> Result<Self, MbptaError> {
        use crate::persist::{unseal, Reader, MAGIC_SESSION};
        let payload = unseal(state, MAGIC_SESSION)?;
        let mut r = Reader::new(payload);
        let total = r.usize()?;
        let snapshot_every = r.usize()?;
        let since_snapshot = r.usize()?;
        let rr_cursor = r.usize()?;
        let early_finish = r.bool()?;
        let polling = r.bool()?;
        let n_channels = r.usize()?;
        if n_channels > payload.len() {
            return Err(MbptaError::checkpoint(
                "checkpoint channel count exceeds the payload size",
            ));
        }
        let mut channels = Vec::with_capacity(n_channels);
        let mut index = BTreeMap::new();
        for _ in 0..n_channels {
            let state = decode_channel_state(&factory, &mut r)?;
            if index.insert(state.id.clone(), channels.len()).is_some() {
                return Err(MbptaError::checkpoint(format!(
                    "checkpoint repeats channel `{}`",
                    state.id
                )));
            }
            channels.push(state);
        }
        r.finish()?;
        Ok(AnalysisSession {
            factory,
            channels,
            index,
            total,
            snapshot_every,
            since_snapshot,
            rr_cursor,
            // Cadence is runtime policy (like `jobs`), not persisted
            // state; a restore begins at a checkpoint boundary.
            checkpoint_every: 0,
            last_checkpoint_at: total,
            jobs,
            early_finish,
            polling,
        })
    }

    /// Finish every channel's engine and fold the per-channel verdicts
    /// into the merged [`SessionVerdict`]. Channels are finished in
    /// parallel over the workspace sharding engine (bounded by the
    /// session's `jobs`); each channel's verdict is a pure function of
    /// its own feed, so the result is identical for every `jobs` value.
    pub fn merge(self) -> SessionVerdict {
        let jobs = self.jobs;
        let n = self.channels.len();
        let slots: Vec<Mutex<Option<ChannelState<F::Engine>>>> = self
            .channels
            .into_iter()
            .map(|state| Mutex::new(Some(state)))
            .collect();
        let channels = run_sharded(n, jobs, |shard| {
            shard
                .map(|i| {
                    let mut state = slots[i]
                        .lock()
                        // Each index goes to exactly one worker, so a
                        // poisoned slot can only mean a panic mid-take in a
                        // prior unwinding run; the stored state is intact
                        // and safe to recover.
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        // proxima-lint: allow(no-lib-panic) -- run_sharded
                        // hands each index to exactly one worker, so the
                        // slot is still occupied on first (only) take.
                        .expect("each channel finished exactly once");
                    let outcome = match (state.failed.take(), state.early_verdict.take()) {
                        (Some(e), _) => Err(MbptaError::channel_scoped(state.id.clone(), e)),
                        // Finished at convergence: the verdict is already
                        // scoped and the engine state long freed.
                        (None, Some(verdict)) => verdict,
                        (None, None) => state
                            .engine
                            .take()
                            // proxima-lint: allow(no-lib-panic) -- invariant:
                            // a channel that is neither failed nor
                            // early-finished still owns its engine.
                            .expect("running channel holds an engine")
                            .finish()
                            .map(|mut verdict| {
                                verdict.provenance.channel = Some(state.id.clone());
                                verdict
                            })
                            .map_err(|e| MbptaError::channel_scoped(state.id.clone(), e)),
                    };
                    ChannelVerdict {
                        channel: state.id,
                        outcome,
                        dropped: state.dropped,
                    }
                })
                .collect()
        });
        SessionVerdict { channels }
    }
}

/// Encode one channel's complete state — the per-channel section of a
/// session checkpoint, shared verbatim by
/// [`AnalysisSession::checkpoint`] and
/// [`AnalysisSession::export_channel_record`] so migrated channels and
/// checkpointed channels serialize bit-identically.
fn encode_channel_state<E: Engine>(
    state: &ChannelState<E>,
    w: &mut crate::persist::Writer,
) -> Result<(), MbptaError> {
    use crate::persist::Encode;
    state.id.encode(w);
    match &state.engine {
        Some(engine) => {
            w.bool(true);
            w.bytes(&engine.save_state()?);
        }
        None => w.bool(false),
    }
    match &state.early_verdict {
        None => w.u8(0),
        Some(Ok(verdict)) => {
            w.u8(1);
            verdict.encode(w);
        }
        Some(Err(e)) => {
            w.u8(2);
            e.encode(w);
        }
    }
    w.usize(state.accepted);
    state.failed.encode(w);
    w.usize(state.dropped);
    state.last_emitted_n.encode(w);
    w.usize(state.last_polled_len);
    w.bool(state.converged_emitted);
    Ok(())
}

/// Decode one channel-state record (the inverse of
/// [`encode_channel_state`]), restoring the engine through `factory`
/// and enforcing the structural invariants a live channel must hold.
fn decode_channel_state<F: EngineFactory>(
    factory: &F,
    r: &mut crate::persist::Reader<'_>,
) -> Result<ChannelState<F::Engine>, MbptaError> {
    use crate::persist::Decode;
    let id = ChannelId::decode(r)?;
    let engine = if r.bool()? {
        Some(factory.restore(&id, r.bytes()?)?)
    } else {
        None
    };
    let early_verdict = match r.u8()? {
        0 => None,
        1 => Some(Ok(Verdict::decode(r)?)),
        2 => Some(Err(MbptaError::decode(r)?)),
        other => {
            return Err(MbptaError::checkpoint(format!(
                "unknown early-verdict tag {other}"
            )))
        }
    };
    let accepted = r.usize()?;
    let failed = Option::decode(r)?;
    let dropped = r.usize()?;
    let last_emitted_n = Option::decode(r)?;
    let last_polled_len = r.usize()?;
    let converged_emitted = r.bool()?;
    if engine.is_none() && early_verdict.is_none() && failed.is_none() {
        return Err(MbptaError::checkpoint(
            "checkpointed channel has neither an engine nor a recorded outcome",
        ));
    }
    if engine.is_some() && early_verdict.is_some() {
        return Err(MbptaError::checkpoint(
            "checkpointed channel has both a live engine and an early verdict",
        ));
    }
    Ok(ChannelState {
        id,
        engine,
        early_verdict,
        accepted,
        failed,
        dropped,
        last_emitted_n,
        last_polled_len,
        converged_emitted,
    })
}

impl<F: EngineFactory + Clone> Clone for AnalysisSession<F>
where
    F::Engine: Clone,
{
    fn clone(&self) -> Self {
        AnalysisSession {
            factory: self.factory.clone(),
            channels: self.channels.clone(),
            index: self.index.clone(),
            total: self.total,
            snapshot_every: self.snapshot_every,
            since_snapshot: self.since_snapshot,
            rr_cursor: self.rr_cursor,
            checkpoint_every: self.checkpoint_every,
            last_checkpoint_at: self.last_checkpoint_at,
            jobs: self.jobs,
            early_finish: self.early_finish,
            polling: self.polling,
        }
    }
}

impl<F: EngineFactory> std::fmt::Debug for AnalysisSession<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("channels", &self.channels.len())
            .field("total", &self.total)
            .field("snapshot_every", &self.snapshot_every)
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

/// A borrowed handle to one session channel: push measurements and read
/// the channel's state without re-hashing the channel id on every call.
///
/// Obtained from [`AnalysisSession::channel`]; holds the session
/// mutably, so interleave handles by re-acquiring them (cheap).
///
/// # Examples
///
/// ```
/// use proxima_mbpta::MbptaConfig;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut session = MbptaConfig::default().session().build_batch()?;
/// {
///     let mut fault = session.channel("fault-recovery")?;
///     for _ in 0..500 {
///         let x = 1.2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0;
///         fault.push(x);
///     }
///     assert_eq!(fault.id().as_str(), "fault-recovery");
///     assert!(!fault.failed());
/// }
/// assert_eq!(session.len(), 500);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub struct ChannelHandle<'a, F: EngineFactory> {
    session: &'a mut AnalysisSession<F>,
    index: usize,
}

impl<F: EngineFactory> ChannelHandle<'_, F> {
    /// The channel's id.
    pub fn id(&self) -> &ChannelId {
        &self.session.channels[self.index].id
    }

    /// Push one measurement to this channel (same semantics as
    /// [`AnalysisSession::push`], channel lookup already done).
    pub fn push(&mut self, time: f64) -> Option<SessionSnapshot> {
        self.session.push_at(self.index, time)
    }

    /// Bulk-ingest a slice of measurements into this channel (same
    /// semantics and bit-identity guarantee as
    /// [`AnalysisSession::push_batch`], channel lookup already done).
    pub fn push_batch(&mut self, xs: &[f64]) -> Vec<SessionSnapshot> {
        self.session.push_batch_at(self.index, xs)
    }

    /// Measurements this channel's engine accepted (frozen at the finish
    /// point for an early-finished channel).
    pub fn len(&self) -> usize {
        let state = &self.session.channels[self.index];
        state.engine.as_ref().map_or(state.accepted, Engine::len)
    }

    /// `true` before the channel's first measurement.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel engine's current estimate, if any (`None` once the
    /// channel was finished early — its verdict waits in
    /// [`AnalysisSession::merge`]).
    pub fn estimate(&mut self) -> Option<EngineEstimate> {
        let state = &mut self.session.channels[self.index];
        if state.failed.is_some() {
            return None;
        }
        state.engine.as_mut()?.estimate()
    }

    /// `true` once the channel's estimate converged (an early-finished
    /// channel converged by definition).
    pub fn converged(&self) -> bool {
        let state = &self.session.channels[self.index];
        state
            .engine
            .as_ref()
            .map_or(state.early_verdict.is_some(), Engine::converged)
    }

    /// `true` if this channel was finished early at convergence (its
    /// engine state freed, later measurements dropped).
    pub fn finished_early(&self) -> bool {
        let state = &self.session.channels[self.index];
        state.engine.is_none() && state.early_verdict.is_some()
    }

    /// `true` if this channel was quarantined by a bad measurement.
    pub fn failed(&self) -> bool {
        self.session.channels[self.index].failed.is_some()
    }
}

/// One channel's outcome in a merged session.
#[derive(Debug)]
pub struct ChannelVerdict {
    /// The channel.
    pub channel: ChannelId,
    /// The verdict, or the channel-scoped failure
    /// ([`MbptaError::Channel`]) that quarantined it.
    pub outcome: Result<Verdict, MbptaError>,
    /// Measurements dropped after the channel was quarantined.
    pub dropped: usize,
}

/// The merged outcome of a session: every channel's verdict (or scoped
/// failure) plus program-level envelope queries — the maximum budget
/// across channels, mirroring the per-path max-across-paths semantics of
/// [`paths`](crate::paths).
#[derive(Debug)]
pub struct SessionVerdict {
    channels: Vec<ChannelVerdict>,
}

impl SessionVerdict {
    /// Per-channel outcomes, in first-seen channel order.
    pub fn channels(&self) -> &[ChannelVerdict] {
        &self.channels
    }

    /// Consume into the per-channel outcomes.
    pub fn into_channels(self) -> Vec<ChannelVerdict> {
        self.channels
    }

    /// Look up one channel's outcome by label.
    pub fn verdict(&self, channel: &str) -> Option<&Result<Verdict, MbptaError>> {
        self.channels
            .iter()
            .find(|c| c.channel.as_str() == channel)
            .map(|c| &c.outcome)
    }

    /// The successfully analysed channels.
    pub fn ok_channels(&self) -> impl Iterator<Item = (&ChannelId, &Verdict)> {
        self.channels
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok().map(|v| (&c.channel, v)))
    }

    /// The quarantined/failed channels with their scoped errors.
    pub fn failures(&self) -> impl Iterator<Item = (&ChannelId, &MbptaError)> {
        self.channels
            .iter()
            .filter_map(|c| c.outcome.as_ref().err().map(|e| (&c.channel, e)))
    }

    /// `true` if every channel produced a verdict.
    pub fn all_ok(&self) -> bool {
        self.channels.iter().all(|c| c.outcome.is_ok())
    }

    /// The program-level pWCET budget at cutoff `p`: the maximum across
    /// the analysable channels, with the winning channel — the session
    /// form of per-path max-across-paths.
    ///
    /// # Errors
    ///
    /// Returns the first channel's scoped error if **no** channel
    /// produced a verdict, or [`MbptaError::Stats`] for an invalid `p`.
    pub fn envelope_budget(&self, p: f64) -> Result<(&ChannelId, f64), MbptaError> {
        let mut best: Option<(&ChannelId, f64)> = None;
        for (id, verdict) in self.ok_channels() {
            let budget = verdict.budget_for(p)?;
            if best.is_none_or(|(_, cur)| budget > cur) {
                best = Some((id, budget));
            }
        }
        match best {
            Some(found) => Ok(found),
            None => Err(self
                .channels
                .first()
                .and_then(|c| c.outcome.as_ref().err().cloned())
                .unwrap_or(MbptaError::InvalidConfig {
                    what: "session analysed no channel",
                })),
        }
    }

    /// The program-level pWCET curve: envelope budget at each
    /// probability.
    ///
    /// # Errors
    ///
    /// Same as [`Self::envelope_budget`].
    pub fn envelope_curve(&self, probabilities: &[f64]) -> Result<Vec<(f64, f64)>, MbptaError> {
        probabilities
            .iter()
            .map(|&p| Ok((self.envelope_budget(p)?.1, p)))
            .collect()
    }

    /// Highest observed execution time across the analysable channels.
    pub fn high_watermark(&self) -> f64 {
        self.ok_channels()
            .map(|(_, v)| v.high_watermark())
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MbptaConfig;
    use crate::engine::{BatchFactory, EngineKind};
    use crate::pipeline::analyze_impl;
    use rand::{Rng, SeedableRng};

    fn campaign(base: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| base + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
            .collect()
    }

    #[test]
    fn channel_id_and_tagged_parse() {
        let t: Tagged = " nominal \t 123.5 ".parse().unwrap();
        assert_eq!(t.channel.as_str(), "nominal");
        assert_eq!(t.time, 123.5);
        let c: Tagged = "a,2".parse().unwrap();
        assert_eq!(c, Tagged::new("a", 2.0));
        assert!("just-one-token".parse::<Tagged>().is_err());
        assert!(" , 5".parse::<Tagged>().is_err());
        assert!("ch abc".parse::<Tagged>().is_err());
        assert_eq!(ChannelId::new("x").to_string(), "x");
    }

    #[test]
    fn single_channel_session_equals_bare_analyze() {
        let times = campaign(1e5, 1500, 1);
        let config = MbptaConfig::default();
        let mut session = config.clone().session().build_batch().unwrap();
        for &x in &times {
            session.push(Tagged::new("only", x)).unwrap();
        }
        let merged = session.merge();
        let verdict = merged.verdict("only").unwrap().as_ref().unwrap();
        let report = analyze_impl(&times, &config).unwrap();
        assert_eq!(verdict.clone().into_report().unwrap(), report);
        assert_eq!(
            verdict.provenance.channel.as_ref().unwrap().as_str(),
            "only"
        );
    }

    #[test]
    fn interleaving_does_not_change_per_channel_verdicts() {
        let a = campaign(1.0e5, 800, 2);
        let b = campaign(1.2e5, 800, 20);
        let build = || MbptaConfig::default().session().build_batch().unwrap();

        // Round-robin interleave.
        let mut rr = build();
        for (&x, &y) in a.iter().zip(&b) {
            rr.push(Tagged::new("a", x)).unwrap();
            rr.push(Tagged::new("b", y)).unwrap();
        }
        // All of `a`, then all of `b`.
        let mut seq = build();
        for &x in &a {
            seq.push(Tagged::new("a", x)).unwrap();
        }
        for &y in &b {
            seq.push(Tagged::new("b", y)).unwrap();
        }
        let rr = rr.merge();
        let seq = seq.merge();
        for ch in ["a", "b"] {
            assert_eq!(
                rr.verdict(ch).unwrap().as_ref().unwrap(),
                seq.verdict(ch).unwrap().as_ref().unwrap(),
                "channel {ch} verdict depends on interleaving"
            );
        }
    }

    #[test]
    fn merge_jobs_invariant() {
        let a = campaign(1.0e5, 700, 3);
        let b = campaign(1.1e5, 700, 21);
        let c = campaign(1.3e5, 700, 41);
        let run = |jobs| {
            let mut session = MbptaConfig::default()
                .session()
                .jobs(jobs)
                .build_batch()
                .unwrap();
            for ((&x, &y), &z) in a.iter().zip(&b).zip(&c) {
                session.push(Tagged::new("a", x)).unwrap();
                session.push(Tagged::new("b", y)).unwrap();
                session.push(Tagged::new("c", z)).unwrap();
            }
            session.merge()
        };
        let serial = run(1);
        for jobs in [2, 3, 8] {
            let parallel = run(jobs);
            for ch in ["a", "b", "c"] {
                assert_eq!(
                    serial.verdict(ch).unwrap().as_ref().unwrap(),
                    parallel.verdict(ch).unwrap().as_ref().unwrap(),
                    "jobs={jobs} diverged on channel {ch}"
                );
            }
        }
    }

    #[test]
    fn bad_channel_is_quarantined_not_fatal() {
        let good = campaign(1e5, 1000, 4);
        let mut session = MbptaConfig::default().session().build_batch().unwrap();
        for &x in &good {
            session.push(Tagged::new("good", x)).unwrap();
            // Constant feed: analysable only as a degenerate failure.
            session.push(Tagged::new("stuck", 500.0)).unwrap();
        }
        let merged = session.merge();
        assert!(!merged.all_ok());
        assert!(merged.verdict("good").unwrap().is_ok());
        let failures: Vec<_> = merged.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0.as_str(), "stuck");
        assert!(matches!(
            failures[0].1,
            MbptaError::Channel { channel, .. } if channel.as_str() == "stuck"
        ));
        // The envelope still answers from the good channel.
        let (winner, budget) = merged.envelope_budget(1e-12).unwrap();
        assert_eq!(winner.as_str(), "good");
        assert!(budget > 1e5);
    }

    #[test]
    fn envelope_is_max_across_channels() {
        let mut session = MbptaConfig::default().session().build_batch().unwrap();
        for (label, base, seed) in [("slow", 1.4e5, 40), ("fast", 1.0e5, 2)] {
            let mut handle = session.channel(label).unwrap();
            for x in campaign(base, 900, seed) {
                handle.push(x);
            }
        }
        let merged = session.merge();
        let p = 1e-9;
        let (winner, envelope) = merged.envelope_budget(p).unwrap();
        assert_eq!(winner.as_str(), "slow");
        for (_, verdict) in merged.ok_channels() {
            assert!(envelope >= verdict.budget_for(p).unwrap());
        }
        let curve = merged.envelope_curve(&[1e-6, 1e-9, 1e-12]).unwrap();
        assert!(curve[0].0 <= curve[1].0 && curve[1].0 <= curve[2].0);
        assert!(merged.high_watermark() >= 1.4e5);
    }

    #[test]
    fn scheduler_emits_round_robin_across_channels() {
        let a = campaign(1.0e5, 2000, 5);
        let b = campaign(1.2e5, 2000, 22);
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(100)
            .build_batch()
            .unwrap();
        let mut snapshots = Vec::new();
        for (&x, &y) in a.iter().zip(&b) {
            if let Some(s) = session.push(Tagged::new("a", x)).unwrap() {
                snapshots.push(s);
            }
            if let Some(s) = session.push(Tagged::new("b", y)).unwrap() {
                snapshots.push(s);
            }
        }
        assert!(snapshots.len() >= 4, "got {}", snapshots.len());
        // Both channels get airtime.
        assert!(snapshots.iter().any(|s| s.channel.as_str() == "a"));
        assert!(snapshots.iter().any(|s| s.channel.as_str() == "b"));
        // Snapshots never repeat a stale estimate per channel.
        for ch in ["a", "b"] {
            let ns: Vec<usize> = snapshots
                .iter()
                .filter(|s| s.channel.as_str() == ch)
                .map(|s| s.estimate.n)
                .collect();
            for pair in ns.windows(2) {
                assert!(pair[1] > pair[0], "stale snapshot re-emitted on {ch}");
            }
        }
        // Totals are strictly increasing across the session.
        for pair in snapshots.windows(2) {
            assert!(pair[1].total > pair[0].total);
        }
    }

    #[test]
    fn batch_convergence_tracked_with_scheduling_off() {
        // With snapshot_every(0), scheduled snapshots are off but the
        // per-push convergence poll must still drive batch engines:
        // `all_converged` becomes true on a long stationary feed (the
        // `--stop-on-converged` contract).
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .build_batch()
            .unwrap();
        let mut announced = 0;
        for x in campaign(1e5, 4000, 8) {
            if session.push(Tagged::new("only", x)).unwrap().is_some() {
                announced += 1;
            }
        }
        assert!(session.all_converged(), "batch engine never converged");
        assert_eq!(announced, 1, "exactly one convergence announcement");
    }

    #[test]
    fn snapshots_disabled_with_zero_period() {
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .build_batch()
            .unwrap();
        let mut emitted = 0;
        for x in campaign(1e5, 600, 6) {
            if session.push(Tagged::new("only", x)).unwrap().is_some() {
                emitted += 1;
            }
        }
        // Only a convergence announcement may fire; no periodic ones.
        assert!(emitted <= 1, "scheduled snapshots leaked: {emitted}");
    }

    #[test]
    fn early_finish_freezes_channel_at_convergence() {
        let feed = campaign(1e5, 6000, 9);
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .early_finish(true)
            .build_batch()
            .unwrap();
        let mut frozen_at = None;
        for &x in &feed {
            session.push(Tagged::new("only", x)).unwrap();
            let mut ch = session.channel("only").unwrap();
            if ch.finished_early() {
                frozen_at.get_or_insert(ch.len());
                assert!(ch.converged());
                assert!(ch.estimate().is_none(), "engine state is gone");
            }
        }
        let frozen_at = frozen_at.expect("stationary feed converges well before 6000");
        assert!(frozen_at < 6000);
        assert!(session.all_converged());
        let merged = session.merge();
        let cv = &merged.channels()[0];
        let verdict = cv.outcome.as_ref().unwrap();
        // The verdict covers the feed up to convergence; the rest was
        // dropped (and counted).
        assert_eq!(verdict.summary.n, frozen_at);
        assert_eq!(cv.dropped, 6000 - frozen_at);
        let reference = analyze_impl(&feed[..frozen_at], &MbptaConfig::default()).unwrap();
        assert_eq!(verdict.clone().into_report().unwrap(), reference);
    }

    #[test]
    fn early_finish_announces_convergence_once_then_stays_silent() {
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .early_finish(true)
            .build_batch()
            .unwrap();
        let mut announced = 0;
        for x in campaign(1e5, 5000, 8) {
            if session.push(Tagged::new("only", x)).unwrap().is_some() {
                announced += 1;
            }
        }
        assert_eq!(announced, 1, "one announcement, then the engine is gone");
    }

    #[test]
    fn early_finish_off_keeps_engines_to_the_end() {
        let feed = campaign(1e5, 5000, 8);
        let run = |early| {
            let mut session = MbptaConfig::default()
                .session()
                .snapshot_every(0)
                .early_finish(early)
                .build_batch()
                .unwrap();
            for &x in &feed {
                session.push(Tagged::new("only", x)).unwrap();
            }
            session.merge()
        };
        let full = run(false);
        let early = run(true);
        let full_v = full.verdict("only").unwrap().as_ref().unwrap();
        let early_v = early.verdict("only").unwrap().as_ref().unwrap();
        assert_eq!(full_v.summary.n, 5000);
        assert!(early_v.summary.n < 5000);
        // Both describe the same stationary population: budgets agree to
        // the convergence tolerance even though n differs.
        let (f, e) = (
            full_v.budget_for(1e-12).unwrap(),
            early_v.budget_for(1e-12).unwrap(),
        );
        assert!((f / e - 1.0).abs() < 0.05, "full={f} early={e}");
    }

    #[test]
    fn session_checkpoint_resume_is_bit_identical_mid_feed() {
        let a = campaign(1.0e5, 1600, 31);
        let b = campaign(1.2e5, 1600, 32);
        let build = || {
            MbptaConfig::default()
                .session()
                .snapshot_every(100)
                .build_batch()
                .unwrap()
        };
        let mut uninterrupted = build();
        let mut resumed = build();
        let mut resumed_snaps = Vec::new();
        let mut uninterrupted_snaps = Vec::new();
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            for (ch, v) in [("a", x), ("b", y)] {
                if let Some(s) = uninterrupted.push(Tagged::new(ch, v)).unwrap() {
                    uninterrupted_snaps.push(s);
                }
                if let Some(s) = resumed.push(Tagged::new(ch, v)).unwrap() {
                    resumed_snaps.push(s);
                }
            }
            if i == 700 {
                // Checkpoint → restore mid-feed, with a different jobs
                // setting; everything downstream must not notice.
                let blob = resumed.checkpoint().unwrap();
                let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
                resumed = AnalysisSession::restore(factory, &blob, 3).unwrap();
                assert_eq!(resumed.len(), uninterrupted.len());
                assert_eq!(resumed.jobs(), 3);
            }
        }
        assert_eq!(resumed_snaps, uninterrupted_snaps);
        let merged_u = uninterrupted.merge();
        let merged_r = resumed.merge();
        for ch in ["a", "b"] {
            assert_eq!(merged_u.verdict(ch).unwrap(), merged_r.verdict(ch).unwrap());
        }
    }

    #[test]
    fn checkpoint_captures_quarantine_and_early_finish() {
        let feed = campaign(1e5, 6000, 9);
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(0)
            .early_finish(true)
            .build_batch()
            .unwrap();
        for &x in &feed {
            session.push(Tagged::new("good", x)).unwrap();
            session.push(Tagged::new("stuck", 500.0)).unwrap();
        }
        {
            let ch = session.channel("good").unwrap();
            assert!(ch.finished_early(), "stationary feed finishes early");
        }
        let blob = session.checkpoint().unwrap();
        let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        let restored = AnalysisSession::restore(factory, &blob, 0).unwrap();
        let (a, b) = (session.merge(), restored.merge());
        assert_eq!(a.verdict("good").unwrap(), b.verdict("good").unwrap());
        assert_eq!(a.verdict("stuck").unwrap(), b.verdict("stuck").unwrap());
        assert_eq!(a.channels()[0].dropped, b.channels()[0].dropped);
    }

    #[test]
    fn restore_rejects_corrupt_bytes_with_typed_errors() {
        let mut session = MbptaConfig::default().session().build_batch().unwrap();
        for x in campaign(1e5, 400, 10) {
            session.push(Tagged::new("only", x)).unwrap();
        }
        let blob = session.checkpoint().unwrap();
        let factory = || BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        for cut in [0, 4, 12, blob.len() / 2, blob.len() - 1] {
            assert!(matches!(
                AnalysisSession::restore(factory(), &blob[..cut], 0),
                Err(MbptaError::Checkpoint { .. })
            ));
        }
        let mut flipped = blob.clone();
        let mid = flipped.len() / 3;
        flipped[mid] ^= 1;
        assert!(matches!(
            AnalysisSession::restore(factory(), &flipped, 0),
            Err(MbptaError::Checkpoint { .. })
        ));
    }

    #[test]
    fn merged_verdict_records_provenance_kind() {
        let mut session = MbptaConfig::default().session().build_batch().unwrap();
        for x in campaign(1e5, 800, 7) {
            session.push(Tagged::new("only", x)).unwrap();
        }
        let merged = session.merge();
        let verdict = merged.verdict("only").unwrap().as_ref().unwrap();
        assert_eq!(verdict.provenance.engine, EngineKind::Batch);
        assert_eq!(verdict.provenance.n, 800);
        assert!(format!("{merged:?}").contains("only"));
    }

    #[test]
    fn checkpoint_cadence_counts_and_rearms() {
        let mut session = MbptaConfig::default()
            .session()
            .checkpoint_every(100)
            .build_batch()
            .unwrap();
        assert_eq!(session.checkpoint_every(), 100);
        assert_eq!(session.until_checkpoint(), Some(100));
        assert!(!session.checkpoint_due());
        for x in campaign(1e5, 99, 5) {
            session.push(Tagged::new("ch", x)).unwrap();
        }
        assert_eq!(session.until_checkpoint(), Some(1));
        assert!(!session.checkpoint_due());
        session.push(Tagged::new("ch", 1.0e5)).unwrap();
        assert!(session.checkpoint_due());
        assert_eq!(session.until_checkpoint(), Some(0));
        assert_eq!(session.since_checkpoint(), 100);
        session.mark_checkpointed();
        assert!(!session.checkpoint_due());
        assert_eq!(session.since_checkpoint(), 0);
        assert_eq!(session.until_checkpoint(), Some(100));

        // Cadence is runtime policy, not persisted state: a restored
        // session starts with checkpointing disabled until re-armed.
        let blob = session.checkpoint().unwrap();
        let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        let mut restored = AnalysisSession::restore(factory, &blob, 0).unwrap();
        assert_eq!(restored.checkpoint_every(), 0);
        assert!(restored.until_checkpoint().is_none());
        assert!(!restored.checkpoint_due());
        restored.set_checkpoint_every(40);
        assert_eq!(restored.until_checkpoint(), Some(40));
    }

    #[test]
    fn adopt_channel_installs_state_and_rejects_duplicates() {
        // Donor engine state, saved outside any session.
        let times = campaign(1.1e5, 800, 9);
        let factory = BatchFactory::new(MbptaConfig::default(), 1e-12).unwrap();
        let mut donor = factory.create(&ChannelId::new("fed")).unwrap();
        donor.push_batch(&times).unwrap();
        let state = donor.save_state().unwrap();

        let mut session = MbptaConfig::default().session().build_batch().unwrap();
        for x in campaign(1.0e5, 700, 4) {
            session.push(Tagged::new("live", x)).unwrap();
        }
        session.adopt_channel("fed", &state).unwrap();
        assert_eq!(session.len(), 700 + 800);
        assert_eq!(session.channel_count(), 2);
        // Adopting must never clobber a live channel.
        assert!(session.adopt_channel("fed", &state).is_err());
        assert!(session.adopt_channel("live", &state).is_err());
        // Garbage state bytes are rejected by the factory fingerprint.
        assert!(session.adopt_channel("other", b"not engine state").is_err());

        // The adopted channel analyses exactly like a pushed one.
        let merged = session.merge();
        let adopted = merged.verdict("fed").unwrap().as_ref().unwrap();
        let mut direct = MbptaConfig::default().session().build_batch().unwrap();
        for &x in &times {
            direct.push(Tagged::new("fed", x)).unwrap();
        }
        let direct = direct.merge();
        assert_eq!(adopted, direct.verdict("fed").unwrap().as_ref().unwrap());
    }

    #[test]
    fn channel_record_export_adopt_migrates_bit_identically() {
        let full = campaign(1.15e5, 1400, 12);
        let (prefix, suffix) = full.split_at(900);

        // Donor holds the channel mid-feed, alongside a sibling.
        let mut donor = MbptaConfig::default().session().build_batch().unwrap();
        for &x in prefix {
            donor.push(Tagged::new("mover", x)).unwrap();
        }
        for x in campaign(1.0e5, 500, 13) {
            donor.push(Tagged::new("stayer", x)).unwrap();
        }
        assert!(matches!(
            donor.export_channel_record("ghost"),
            Err(MbptaError::Checkpoint { .. })
        ));
        let record = donor.export_channel_record("mover").unwrap();

        // The new owner adopts it, measurements counting into its total.
        let mut owner = MbptaConfig::default().session().build_batch().unwrap();
        let id = owner.adopt_channel_record(&record).unwrap();
        assert_eq!(id.as_str(), "mover");
        assert_eq!(owner.len(), prefix.len());
        // A channel lives in exactly one session shard at a time.
        assert!(matches!(
            owner.adopt_channel_record(&record),
            Err(MbptaError::InvalidConfig { .. })
        ));
        // Corrupt or wrong-magic bytes are typed errors, not panics.
        assert!(matches!(
            owner.adopt_channel_record(&record[..record.len() - 3]),
            Err(MbptaError::Checkpoint { .. })
        ));
        assert!(matches!(
            owner.adopt_channel_record(&donor.checkpoint().unwrap()),
            Err(MbptaError::Checkpoint { .. })
        ));

        // Finish the feed in the new owner; a never-migrated control
        // session sees the identical per-channel sequence.
        for &x in suffix {
            owner.push(Tagged::new("mover", x)).unwrap();
        }
        let mut control = MbptaConfig::default().session().build_batch().unwrap();
        for &x in &full {
            control.push(Tagged::new("mover", x)).unwrap();
        }
        let (moved, stayed) = (owner.merge(), control.merge());
        assert_eq!(
            moved.verdict("mover").unwrap(),
            stayed.verdict("mover").unwrap(),
            "migration must be invisible to the verdict"
        );
    }

    #[test]
    fn channel_record_carries_early_finish_and_quarantine() {
        let build = || {
            MbptaConfig::default()
                .session()
                .snapshot_every(0)
                .early_finish(true)
                .build_batch()
                .unwrap()
        };
        let mut donor = build();
        for x in campaign(1e5, 6000, 14) {
            donor.push(Tagged::new("done", x)).unwrap();
            // Constant feed: analysable only as a degenerate failure.
            donor.push(Tagged::new("stuck", 500.0)).unwrap();
        }
        assert!(donor.channel("done").unwrap().finished_early());

        // Migrate both the early-finished and the quarantined channel:
        // frozen verdicts, quarantine errors and drop counters travel
        // inside the record.
        let mut owner = build();
        for ch in ["done", "stuck"] {
            let record = donor.export_channel_record(ch).unwrap();
            owner.adopt_channel_record(&record).unwrap();
        }
        let (a, b) = (donor.merge(), owner.merge());
        assert_eq!(a.verdict("done").unwrap(), b.verdict("done").unwrap());
        assert_eq!(a.verdict("stuck").unwrap(), b.verdict("stuck").unwrap());
        assert_eq!(a.channels()[0].dropped, b.channels()[0].dropped);
        assert_eq!(a.channels()[1].dropped, b.channels()[1].dropped);
    }
}
