//! Human-readable analysis reports and plot-data export.

use crate::pipeline::MbptaReport;
use crate::MbptaError;

/// Render an [`MbptaReport`] as the text block an engineer would paste in
/// a verification dossier: campaign summary, i.i.d. evidence, fit
/// diagnostics, and the pWCET table at the customary cutoffs.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{render_report, MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let times: Vec<f64> = (0..1000)
///     .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// let text = render_report(&report);
/// assert!(text.contains("Ljung-Box"));
/// assert!(text.contains("1e-12"));
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn render_report(report: &MbptaReport) -> String {
    let mut out = String::new();
    let s = &report.campaign_summary;
    out.push_str("=== MBPTA analysis report ===\n");
    out.push_str(&format!(
        "campaign: n={} mean={:.1} sd={:.1} min={:.0} max={:.0} (high watermark)\n",
        s.n, s.mean, s.std_dev, s.min, s.max
    ));
    out.push_str(&format!(
        "i.i.d. gate (alpha={:.2}): Ljung-Box p={:.3} | two-sample KS p={:.3} => {}\n",
        report.iid.alpha,
        report.iid.ljung_box.p_value,
        report.iid.ks.p_value,
        if report.iid.passed {
            "PASSED"
        } else {
            "REJECTED"
        }
    ));
    if let Some(runs) = report.iid.runs {
        out.push_str(&format!(
            "runs-test diagnostic: z={:+.2}, p={:.3}\n",
            runs.statistic, runs.p_value
        ));
    }
    out.push_str(&format!(
        "tail fit: Gumbel(mu={:.1}, beta={:.2}) on {} maxima (block={}), KS GoF p={:.3}\n",
        report.fit.gumbel.mu(),
        report.fit.gumbel.beta(),
        report.fit.n_maxima,
        report.fit.block_size,
        report.fit.gof.ks.p_value
    ));
    if let Some(gev) = report.fit.gev_diagnostic {
        out.push_str(&format!("GEV shape diagnostic: xi={:+.3}\n", gev.xi()));
    }
    if let Some(gpd) = report.fit.pot_cross_check {
        out.push_str(&format!(
            "POT cross-check: GPD(xi={:+.3}, sigma={:.2}) above u={:.0}\n",
            gpd.xi(),
            gpd.sigma(),
            gpd.threshold()
        ));
    }
    out.push_str("pWCET estimates:\n");
    for exp in [3i32, 6, 9, 12, 15] {
        let p = 10f64.powi(-exp);
        match report.pwcet.budget_for(p) {
            Ok(budget) => {
                let vs_hwm = budget / s.max;
                out.push_str(&format!(
                    "  P(exceed) = 1e-{exp:<2} : {budget:>14.0} cycles  ({vs_hwm:.3}x high watermark)\n"
                ));
            }
            Err(e) => out.push_str(&format!("  P(exceed) = 1e-{exp:<2} : error {e}\n")),
        }
    }
    out
}

/// Render the pWCET curve as CSV (`budget_cycles,exceedance_probability`),
/// ready for external plotting of Figure 2's projection line.
///
/// # Errors
///
/// Returns [`MbptaError::Stats`] if any probability is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{render_pwcet_csv, MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let times: Vec<f64> = (0..1000)
///     .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// let csv = render_pwcet_csv(&report, &[1e-6, 1e-9, 1e-12])?;
/// assert!(csv.starts_with("budget_cycles,exceedance_probability"));
/// assert_eq!(csv.lines().count(), 4);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn render_pwcet_csv(report: &MbptaReport, probabilities: &[f64]) -> Result<String, MbptaError> {
    let mut out = String::from("budget_cycles,exceedance_probability\n");
    for (budget, p) in report.pwcet.curve(probabilities)? {
        out.push_str(&format!("{budget:.3},{p:e}\n"));
    }
    Ok(out)
}

/// Render the empirical survival staircase of a campaign as CSV
/// (`execution_time,empirical_exceedance`) — the observed side of a pWCET
/// plot.
///
/// # Errors
///
/// Returns [`MbptaError::Stats`] on an empty or non-finite sample.
pub fn render_survival_csv(times: &[f64]) -> Result<String, MbptaError> {
    let ecdf = proxima_stats::ecdf::Ecdf::new(times).map_err(MbptaError::Stats)?;
    let mut out = String::from("execution_time,empirical_exceedance\n");
    for (x, s) in ecdf.survival_points() {
        out.push_str(&format!("{x:.3},{s:e}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::analyze_impl as analyze;
    use crate::MbptaConfig;
    use rand::{Rng, SeedableRng};

    fn sample_report() -> MbptaReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let times: Vec<f64> = (0..1500)
            .map(|_| 2e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 120.0)
            .collect();
        analyze(&times, &MbptaConfig::default()).unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let text = render_report(&sample_report());
        for needle in [
            "MBPTA analysis report",
            "high watermark",
            "Ljung-Box",
            "two-sample KS",
            "Gumbel",
            "pWCET estimates",
            "1e-15",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn passed_gate_rendered() {
        let text = render_report(&sample_report());
        assert!(text.contains("PASSED"));
    }

    #[test]
    fn pwcet_csv_well_formed() {
        let r = sample_report();
        let csv = render_pwcet_csv(&r, &[1e-3, 1e-6, 1e-9]).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "budget_cycles,exceedance_probability");
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 2);
            assert!(cols[0].parse::<f64>().is_ok(), "{line}");
            assert!(cols[1].parse::<f64>().is_ok(), "{line}");
        }
        assert!(render_pwcet_csv(&r, &[2.0]).is_err());
    }

    #[test]
    fn survival_csv_covers_all_observations() {
        let times = vec![3.0, 1.0, 2.0, 2.0];
        let csv = render_survival_csv(&times).unwrap();
        assert_eq!(csv.lines().count(), 5); // header + 4 points
        assert!(csv.lines().last().unwrap().starts_with("3.000"));
        assert!(render_survival_csv(&[]).is_err());
    }

    #[test]
    fn budgets_in_report_increase_with_exponent() {
        let r = sample_report();
        let b3 = r.budget_for(1e-3).unwrap();
        let b15 = r.budget_for(1e-15).unwrap();
        assert!(b15 > b3);
        let text = render_report(&r);
        // The 1e-15 row exists and mentions a multiplier of the HWM.
        assert!(text.contains("x high watermark"));
    }
}
