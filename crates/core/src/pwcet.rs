//! The probabilistic WCET distribution.

use proxima_stats::dist::{ContinuousDistribution, Gumbel};
use proxima_stats::StatsError;

use crate::MbptaError;

/// A probabilistic worst-case execution time distribution.
///
/// `Pwcet` wraps the Gumbel tail fitted to **block maxima** and answers
/// queries in *per-run* terms. If the Gumbel `G` models the maximum of a
/// block of `B` runs, then for a single run
///
/// `P(run > x) = 1 − G(x)^(1/B)`  and conversely the budget exceeded with
/// per-run probability `p` is `G⁻¹((1 − p)^B)`.
///
/// Both conversions are implemented in log-space so exceedance
/// probabilities of 10⁻¹⁵ keep full relative precision.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::Pwcet;
/// use proxima_stats::dist::Gumbel;
///
/// let tail = Gumbel::new(100_000.0, 250.0)?;
/// let pwcet = Pwcet::new(tail, 50);
/// let budget = pwcet.budget_for(1e-12)?;
/// let p = pwcet.exceedance_probability(budget);
/// assert!((p / 1e-12 - 1.0).abs() < 1e-6);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pwcet {
    tail: Gumbel,
    block_size: usize,
}

impl Pwcet {
    /// Wrap a fitted block-maxima Gumbel with its block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(tail: Gumbel, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Pwcet { tail, block_size }
    }

    /// The underlying Gumbel distribution of block maxima.
    pub fn tail(&self) -> &Gumbel {
        &self.tail
    }

    /// The block size the tail was fitted at.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The execution-time budget exceeded by one run with probability `p`
    /// (the pWCET estimate at cutoff probability `p`).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p < 1`.
    pub fn budget_for(&self, p: f64) -> Result<f64, MbptaError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MbptaError::Stats(StatsError::InvalidArgument {
                what: "exceedance probability must be in (0, 1)",
            }));
        }
        // Per-block non-exceedance: (1 − p)^B, computed as exp(B·ln1p(−p)).
        let block_cdf = (self.block_size as f64 * (-p).ln_1p()).exp();
        // For tiny p the CDF is so close to 1 that we invert via the
        // survival form of the Gumbel quantile instead: S_block ≈ B·p.
        let block_sf = -((self.block_size as f64) * (-p).ln_1p()).exp_m1();
        if block_sf < 1e-12 {
            // Far tail: use the numerically exact exceedance inversion.
            Ok(self
                .tail
                .exceedance_quantile(block_sf.max(f64::MIN_POSITIVE))?)
        } else {
            Ok(self
                .tail
                .quantile(block_cdf.clamp(f64::MIN_POSITIVE, 1.0 - 1e-16))?)
        }
    }

    /// The per-run probability that one execution exceeds `budget` cycles.
    pub fn exceedance_probability(&self, budget: f64) -> f64 {
        // P(run > x) = 1 − G(x)^{1/B} = −expm1(ln G(x)/B);
        // ln G(x) = −exp(−z) for the Gumbel, exact even in the far tail.
        let z = (budget - self.tail.mu()) / self.tail.beta();
        let ln_g = -(-z).exp();
        -(ln_g / self.block_size as f64).exp_m1()
    }

    /// Sample the pWCET curve: `(budget, exceedance probability)` pairs for
    /// the given per-run probabilities — the straight line of Figure 2.
    ///
    /// # Errors
    ///
    /// Returns an error if any probability is outside `(0, 1)`.
    pub fn curve(&self, probabilities: &[f64]) -> Result<Vec<(f64, f64)>, MbptaError> {
        probabilities
            .iter()
            .map(|&p| Ok((self.budget_for(p)?, p)))
            .collect()
    }
}

impl std::fmt::Display for Pwcet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pWCET[gumbel mu={:.1} beta={:.2}, block={}]",
            self.tail.mu(),
            self.tail.beta(),
            self.block_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pwcet() -> Pwcet {
        Pwcet::new(Gumbel::new(10_000.0, 50.0).unwrap(), 50)
    }

    #[test]
    fn budget_and_probability_are_inverse() {
        let p = pwcet();
        for &prob in &[1e-3, 1e-6, 1e-9, 1e-12, 1e-15] {
            let b = p.budget_for(prob).unwrap();
            let back = p.exceedance_probability(b);
            assert!(
                (back / prob - 1.0).abs() < 1e-5,
                "prob={prob} budget={b} back={back}"
            );
        }
    }

    #[test]
    fn budget_grows_as_cutoff_shrinks() {
        let p = pwcet();
        let mut prev = 0.0;
        for exp in 3..=15 {
            let b = p.budget_for(10f64.powi(-exp)).unwrap();
            assert!(b > prev, "exp={exp}");
            prev = b;
        }
    }

    #[test]
    fn block_probability_relation() {
        // For small p: budget at per-run p equals the Gumbel exceedance at
        // ≈ B·p (the survival of a max of B runs ≈ B × per-run survival).
        let p = pwcet();
        let per_run = 1e-12;
        let expected = p.tail().exceedance_quantile(50.0 * per_run).unwrap();
        let got = p.budget_for(per_run).unwrap();
        assert!(
            (got - expected).abs() < 0.5,
            "got={got} expected≈{expected}"
        );
    }

    #[test]
    fn block_size_one_matches_raw_gumbel() {
        let g = Gumbel::new(500.0, 10.0).unwrap();
        let p = Pwcet::new(g, 1);
        for &prob in &[1e-3, 1e-9] {
            let a = p.budget_for(prob).unwrap();
            let b = g.exceedance_quantile(prob).unwrap();
            assert!((a - b).abs() < 1e-6, "a={a} b={b}");
        }
    }

    #[test]
    fn larger_block_means_smaller_per_run_budget() {
        // The same fitted block-maxima tail interpreted at a larger block
        // size implies each individual run is less extreme.
        let g = Gumbel::new(10_000.0, 50.0).unwrap();
        let b10 = Pwcet::new(g, 10).budget_for(1e-9).unwrap();
        let b100 = Pwcet::new(g, 100).budget_for(1e-9).unwrap();
        assert!(b100 < b10);
    }

    #[test]
    fn curve_is_monotone() {
        let p = pwcet();
        let probs: Vec<f64> = (3..=15).map(|e| 10f64.powi(-e)).collect();
        let curve = p.curve(&probs).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0, "budgets increase");
            assert!(w[1].1 < w[0].1, "probabilities decrease");
        }
    }

    #[test]
    fn invalid_probability_errors() {
        let p = pwcet();
        assert!(p.budget_for(0.0).is_err());
        assert!(p.budget_for(1.0).is_err());
        assert!(p.curve(&[0.5, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_panics() {
        Pwcet::new(Gumbel::new(0.0, 1.0).unwrap(), 0);
    }

    #[test]
    fn display_mentions_parameters() {
        let s = pwcet().to_string();
        assert!(s.contains("block=50"));
    }
}
