//! The end-to-end MBPTA pipeline.

use proxima_sim::Inst;
use proxima_stats::descriptive::Summary;

use crate::campaign::CampaignRunner;
use crate::config::MbptaConfig;
use crate::evt_fit::{fit_tail, EvtFit};
use crate::iid::{self, IidReport};
use crate::pwcet::Pwcet;
use crate::{Campaign, MbptaError};

/// The full outcome of an MBPTA analysis of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaReport {
    /// Descriptive summary of the measured execution times.
    pub campaign_summary: Summary,
    /// The i.i.d. gate outcome.
    pub iid: IidReport,
    /// The EVT fit and its diagnostics.
    pub fit: EvtFit,
    /// The pWCET distribution answering per-run exceedance queries.
    pub pwcet: Pwcet,
}

impl MbptaReport {
    /// Convenience: the pWCET budget at cutoff probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p < 1`.
    pub fn budget_for(&self, p: f64) -> Result<f64, MbptaError> {
        self.pwcet.budget_for(p)
    }

    /// The observed high watermark of the campaign.
    pub fn high_watermark(&self) -> f64 {
        self.campaign_summary.max
    }
}

/// The classic batch pipeline over measured execution times:
/// i.i.d. gate → block maxima → Gumbel fit → pWCET. Shared by
/// [`Pipeline::analyze`], the session's `BatchEngine`, and the deprecated
/// [`analyze`](crate::compat::analyze) shim.
pub(crate) fn analyze_impl(times: &[f64], config: &MbptaConfig) -> Result<MbptaReport, MbptaError> {
    config.validate()?;
    if times.len() < config.min_runs {
        return Err(MbptaError::CampaignTooSmall {
            needed: config.min_runs,
            got: times.len(),
        });
    }
    let campaign = Campaign::from_times(times.to_vec())?;
    let campaign_summary = campaign.summary()?;
    let iid = iid::validate_strict(campaign.times(), config.alpha, config.ljung_box_lags)?;
    let fit = fit_tail(campaign.times(), &config.block)?;
    if config.strict_gof && !fit.gof.ks.passes(config.alpha) {
        return Err(MbptaError::PoorFit {
            ks_p: fit.gof.ks.p_value,
        });
    }
    let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
    Ok(MbptaReport {
        campaign_summary,
        iid,
        fit,
        pwcet,
    })
}

/// A configured MBPTA pipeline — the object form of the deprecated
/// [`analyze`](crate::compat::analyze) /
/// [`measure_and_analyze`](crate::compat::measure_and_analyze) shims,
/// and the anchor the streaming crate hangs its
/// entry point on (`proxima_stream::PipelineStreamExt` adds
/// `Pipeline::stream()`, returning an incremental analyzer that shares
/// this pipeline's block size and significance level).
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let times: Vec<f64> = (0..1500)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// assert!(report.budget_for(1e-9)? >= report.high_watermark());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    config: MbptaConfig,
}

impl Pipeline {
    /// A pipeline running `config`.
    pub fn new(config: MbptaConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &MbptaConfig {
        &self.config
    }

    /// Run the batch analysis with this configuration (the supported
    /// one-shot form).
    ///
    /// # Errors
    ///
    /// * [`MbptaError::CampaignTooSmall`] below `config.min_runs`;
    /// * [`MbptaError::IidRejected`] if the i.i.d. gate fails — MBPTA is
    ///   not applicable (e.g. the platform is not randomized);
    /// * [`MbptaError::PoorFit`] if `config.strict_gof` and the Gumbel
    ///   is rejected by the KS goodness-of-fit;
    /// * [`MbptaError::Stats`] for degenerate/insufficient data.
    pub fn analyze(&self, times: &[f64]) -> Result<MbptaReport, MbptaError> {
        analyze_impl(times, &self.config)
    }

    /// Measure with `runner` and analyze with this configuration.
    ///
    /// # Errors
    ///
    /// Anything [`CampaignRunner::run`] or [`Pipeline::analyze`] returns.
    pub fn measure_and_analyze(
        &self,
        runner: &CampaignRunner,
        trace: &[Inst],
        runs: usize,
        master_seed: u64,
    ) -> Result<MbptaReport, MbptaError> {
        let campaign = runner.run(trace, runs, master_seed)?;
        analyze_impl(campaign.times(), &self.config)
    }

    /// Start building a multi-channel session from this pipeline's
    /// configuration — equivalent to `self.config().clone().session()`.
    pub fn session(&self) -> crate::config::SessionBuilder {
        self.config.clone().session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn analyze(times: &[f64], config: &MbptaConfig) -> Result<MbptaReport, MbptaError> {
        Pipeline::new(config.clone()).analyze(times)
    }

    fn rand_campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..10).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn pipeline_succeeds_on_iid_campaign() {
        let times = rand_campaign(3000, 1);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        assert!(r.iid.passed);
        assert_eq!(r.campaign_summary.n, 3000);
        assert!(r.budget_for(1e-12).unwrap() > r.high_watermark());
    }

    #[test]
    fn pwcet_tightly_upper_bounds_observations() {
        // Figure 2's claim: the projection upper-bounds the observed tail
        // without being orders of magnitude away.
        let times = rand_campaign(3000, 2);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        let hwm = r.high_watermark();
        let spread = r.campaign_summary.max - r.campaign_summary.min;
        let b6 = r.budget_for(1e-6).unwrap();
        assert!(b6 > hwm - spread * 0.1, "b6={b6} hwm={hwm}");
        assert!(b6 < hwm + 3.0 * spread, "b6={b6} should stay near the data");
    }

    #[test]
    fn non_iid_campaign_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut level = 0.0f64;
        let times: Vec<f64> = (0..2000)
            .map(|_| {
                level = 0.97 * level + rng.gen::<f64>();
                1e5 + 500.0 * level
            })
            .collect();
        assert!(matches!(
            analyze(&times, &MbptaConfig::default()),
            Err(MbptaError::IidRejected { .. })
        ));
    }

    #[test]
    fn campaign_below_min_runs_rejected() {
        let times = rand_campaign(50, 4);
        assert!(matches!(
            analyze(&times, &MbptaConfig::default()),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn deterministic_times_error_not_panic() {
        let times = vec![1000.0; 500];
        assert!(analyze(&times, &MbptaConfig::default()).is_err());
    }

    #[test]
    fn strict_gof_flag_respected() {
        // Bimodal data fits a Gumbel poorly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let times: Vec<f64> = (0..3000)
            .map(|i| {
                let base = if i % 2 == 0 { 1e5 } else { 3e5 };
                base + rng.gen::<f64>()
            })
            .collect();
        let lenient = MbptaConfig::default();
        let strict = MbptaConfig {
            strict_gof: true,
            ..MbptaConfig::default()
        };
        // Either the iid gate already rejects the alternation (KS on halves
        // passes since halves are identical; LB detects alternation) or the
        // GoF rejects in strict mode — assert strict fails somehow.
        let lenient_result = analyze(&times, &lenient);
        let strict_result = analyze(&times, &strict);
        if lenient_result.is_ok() {
            assert!(matches!(strict_result, Err(MbptaError::PoorFit { .. })));
        } else {
            assert!(strict_result.is_err());
        }
    }

    #[test]
    fn report_budget_monotone_in_cutoff() {
        let times = rand_campaign(2000, 6);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        let b6 = r.budget_for(1e-6).unwrap();
        let b12 = r.budget_for(1e-12).unwrap();
        let b15 = r.budget_for(1e-15).unwrap();
        assert!(b6 < b12 && b12 < b15);
    }
}
