//! The end-to-end MBPTA pipeline.

use proxima_sim::Inst;
use proxima_stats::descriptive::Summary;

use crate::campaign::CampaignRunner;
use crate::config::MbptaConfig;
use crate::evt_fit::{fit_tail, EvtFit};
use crate::iid::{self, IidReport};
use crate::pwcet::Pwcet;
use crate::{Campaign, MbptaError};

/// The full outcome of an MBPTA analysis of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MbptaReport {
    /// Descriptive summary of the measured execution times.
    pub campaign_summary: Summary,
    /// The i.i.d. gate outcome.
    pub iid: IidReport,
    /// The EVT fit and its diagnostics.
    pub fit: EvtFit,
    /// The pWCET distribution answering per-run exceedance queries.
    pub pwcet: Pwcet,
}

impl MbptaReport {
    /// Convenience: the pWCET budget at cutoff probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p < 1`.
    pub fn budget_for(&self, p: f64) -> Result<f64, MbptaError> {
        self.pwcet.budget_for(p)
    }

    /// The observed high watermark of the campaign.
    pub fn high_watermark(&self) -> f64 {
        self.campaign_summary.max
    }
}

/// The classic batch pipeline over measured execution times:
/// i.i.d. gate → block maxima → Gumbel fit → pWCET. Shared by
/// [`Pipeline::analyze`], the session's `BatchEngine`, and the deprecated
/// [`analyze`] shim.
pub(crate) fn analyze_impl(times: &[f64], config: &MbptaConfig) -> Result<MbptaReport, MbptaError> {
    config.validate()?;
    if times.len() < config.min_runs {
        return Err(MbptaError::CampaignTooSmall {
            needed: config.min_runs,
            got: times.len(),
        });
    }
    let campaign = Campaign::from_times(times.to_vec())?;
    let campaign_summary = campaign.summary()?;
    let iid = iid::validate_strict(campaign.times(), config.alpha, config.ljung_box_lags)?;
    let fit = fit_tail(campaign.times(), &config.block)?;
    if config.strict_gof && !fit.gof.ks.passes(config.alpha) {
        return Err(MbptaError::PoorFit {
            ks_p: fit.gof.ks.p_value,
        });
    }
    let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
    Ok(MbptaReport {
        campaign_summary,
        iid,
        fit,
        pwcet,
    })
}

/// Run the MBPTA pipeline over measured execution times:
/// i.i.d. gate → block maxima → Gumbel fit → pWCET.
///
/// Deprecated: this free function is now a thin shim routing through a
/// single-channel [`AnalysisSession`](crate::session::AnalysisSession)
/// with a batch engine — its result is bit-identical to the session's
/// verdict. Prefer [`MbptaConfig::session`] (multi-channel, one result
/// vocabulary) or [`Pipeline::analyze`] for the one-shot form.
///
/// # Errors
///
/// * [`MbptaError::CampaignTooSmall`] below `config.min_runs`;
/// * [`MbptaError::IidRejected`] if the i.i.d. gate fails — MBPTA is not
///   applicable (e.g. the platform is not randomized);
/// * [`MbptaError::PoorFit`] if `config.strict_gof` and the Gumbel is
///   rejected by the KS goodness-of-fit;
/// * [`MbptaError::Stats`] for degenerate/insufficient data.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let times: Vec<f64> = (0..1500)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// assert!(report.budget_for(1e-9)? >= report.high_watermark());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `MbptaConfig::session()` (SessionBuilder) or `Pipeline::analyze`; \
            this shim delegates to a single-channel batch session"
)]
pub fn analyze(times: &[f64], config: &MbptaConfig) -> Result<MbptaReport, MbptaError> {
    config
        .clone()
        .session()
        .analyze(times)?
        .into_report()
        .ok_or(MbptaError::InvalidConfig {
            what: "batch session produced a non-batch verdict",
        })
}

/// Measure and analyze in one call: run a sharded parallel campaign with
/// `runner` and feed the merged measurement vector to the batch pipeline.
///
/// Deprecated: a thin shim over a single-channel session (see
/// [`analyze`]); prefer [`Pipeline::measure_and_analyze`] or a session
/// fed by `CampaignRunner::run`/`run_many`.
///
/// Because the runner's measurement vector is independent of its `jobs`
/// setting, the resulting report — pWCET included — is bit-identical
/// whether the campaign ran on one core or all of them.
///
/// # Errors
///
/// Anything [`CampaignRunner::run`] or the batch pipeline returns.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::measure_and_analyze`, or feed a `CampaignRunner` campaign \
            into a `SessionBuilder` session"
)]
pub fn measure_and_analyze(
    runner: &CampaignRunner,
    trace: &[Inst],
    runs: usize,
    master_seed: u64,
    config: &MbptaConfig,
) -> Result<MbptaReport, MbptaError> {
    let campaign = runner.run(trace, runs, master_seed)?;
    #[allow(deprecated)] // shims share one delegation path
    analyze(campaign.times(), config)
}

/// A configured MBPTA pipeline — the object form of [`analyze`] /
/// [`measure_and_analyze`], and the anchor the streaming crate hangs its
/// entry point on (`proxima_stream::PipelineStreamExt` adds
/// `Pipeline::stream()`, returning an incremental analyzer that shares
/// this pipeline's block size and significance level).
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let times: Vec<f64> = (0..1500)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// assert!(report.budget_for(1e-9)? >= report.high_watermark());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    config: MbptaConfig,
}

impl Pipeline {
    /// A pipeline running `config`.
    pub fn new(config: MbptaConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &MbptaConfig {
        &self.config
    }

    /// Run the batch analysis with this configuration.
    ///
    /// # Errors
    ///
    /// Same as the deprecated [`analyze`] free function (this is the
    /// supported one-shot form).
    pub fn analyze(&self, times: &[f64]) -> Result<MbptaReport, MbptaError> {
        analyze_impl(times, &self.config)
    }

    /// Measure with `runner` and analyze with this configuration.
    ///
    /// # Errors
    ///
    /// Anything [`CampaignRunner::run`] or [`Pipeline::analyze`] returns.
    pub fn measure_and_analyze(
        &self,
        runner: &CampaignRunner,
        trace: &[Inst],
        runs: usize,
        master_seed: u64,
    ) -> Result<MbptaReport, MbptaError> {
        let campaign = runner.run(trace, runs, master_seed)?;
        analyze_impl(campaign.times(), &self.config)
    }

    /// Start building a multi-channel session from this pipeline's
    /// configuration — equivalent to `self.config().clone().session()`.
    pub fn session(&self) -> crate::config::SessionBuilder {
        self.config.clone().session()
    }
}

#[cfg(test)]
#[allow(deprecated)] // deliberately exercises the deprecated shims: they
                     // must stay behaviourally identical to the session path
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..10).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn pipeline_succeeds_on_iid_campaign() {
        let times = rand_campaign(3000, 1);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        assert!(r.iid.passed);
        assert_eq!(r.campaign_summary.n, 3000);
        assert!(r.budget_for(1e-12).unwrap() > r.high_watermark());
    }

    #[test]
    fn pwcet_tightly_upper_bounds_observations() {
        // Figure 2's claim: the projection upper-bounds the observed tail
        // without being orders of magnitude away.
        let times = rand_campaign(3000, 2);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        let hwm = r.high_watermark();
        let spread = r.campaign_summary.max - r.campaign_summary.min;
        let b6 = r.budget_for(1e-6).unwrap();
        assert!(b6 > hwm - spread * 0.1, "b6={b6} hwm={hwm}");
        assert!(b6 < hwm + 3.0 * spread, "b6={b6} should stay near the data");
    }

    #[test]
    fn non_iid_campaign_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut level = 0.0f64;
        let times: Vec<f64> = (0..2000)
            .map(|_| {
                level = 0.97 * level + rng.gen::<f64>();
                1e5 + 500.0 * level
            })
            .collect();
        assert!(matches!(
            analyze(&times, &MbptaConfig::default()),
            Err(MbptaError::IidRejected { .. })
        ));
    }

    #[test]
    fn campaign_below_min_runs_rejected() {
        let times = rand_campaign(50, 4);
        assert!(matches!(
            analyze(&times, &MbptaConfig::default()),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn deterministic_times_error_not_panic() {
        let times = vec![1000.0; 500];
        assert!(analyze(&times, &MbptaConfig::default()).is_err());
    }

    #[test]
    fn strict_gof_flag_respected() {
        // Bimodal data fits a Gumbel poorly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let times: Vec<f64> = (0..3000)
            .map(|i| {
                let base = if i % 2 == 0 { 1e5 } else { 3e5 };
                base + rng.gen::<f64>()
            })
            .collect();
        let lenient = MbptaConfig::default();
        let strict = MbptaConfig {
            strict_gof: true,
            ..MbptaConfig::default()
        };
        // Either the iid gate already rejects the alternation (KS on halves
        // passes since halves are identical; LB detects alternation) or the
        // GoF rejects in strict mode — assert strict fails somehow.
        let lenient_result = analyze(&times, &lenient);
        let strict_result = analyze(&times, &strict);
        if lenient_result.is_ok() {
            assert!(matches!(strict_result, Err(MbptaError::PoorFit { .. })));
        } else {
            assert!(strict_result.is_err());
        }
    }

    #[test]
    fn measure_and_analyze_independent_of_jobs() {
        use crate::campaign::CampaignRunner;
        use proxima_sim::{Inst, PlatformConfig};

        let trace: Vec<Inst> = (0..200)
            .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
            .collect();
        let config = MbptaConfig {
            min_runs: 100,
            ..MbptaConfig::default()
        };
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let serial =
            measure_and_analyze(&runner.clone().with_jobs(1), &trace, 400, 0, &config).unwrap();
        let parallel = measure_and_analyze(&runner.with_jobs(8), &trace, 400, 0, &config).unwrap();
        // Same measurements ⇒ same report, down to the pWCET parameters.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pipeline_object_matches_free_functions() {
        let times = rand_campaign(2000, 1);
        let config = MbptaConfig::default();
        let object = Pipeline::new(config.clone()).analyze(&times).unwrap();
        let free = analyze(&times, &config).unwrap();
        assert_eq!(object, free);
        assert_eq!(Pipeline::default().config(), &MbptaConfig::default());
    }

    #[test]
    fn report_budget_monotone_in_cutoff() {
        let times = rand_campaign(2000, 6);
        let r = analyze(&times, &MbptaConfig::default()).unwrap();
        let b6 = r.budget_for(1e-6).unwrap();
        let b12 = r.budget_for(1e-12).unwrap();
        let b15 = r.budget_for(1e-15).unwrap();
        assert!(b6 < b12 && b12 < b15);
    }
}
