//! Campaign-size convergence criterion.
//!
//! The paper: *"We execute TVCA 3,000 times to collect execution times
//! which satisfied the convergence criteria defined in the MBPTA
//! process."* The criterion implemented here follows the ECRTS 2012
//! process: re-fit the tail on growing prefixes of the campaign and accept
//! once the pWCET estimate at a reference cutoff stabilizes within a
//! relative tolerance over consecutive checkpoints.

use crate::config::{BlockSpec, MbptaConfig};
use crate::evt_fit::fit_tail;
use crate::pwcet::Pwcet;
use crate::{Campaign, MbptaError};

/// Configuration of the convergence check.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceConfig {
    /// The per-run cutoff probability the estimate is tracked at.
    pub reference_cutoff: f64,
    /// Relative tolerance between consecutive checkpoint estimates.
    pub rel_tol: f64,
    /// Number of consecutive stable checkpoints required.
    pub stable_checkpoints: usize,
    /// Runs added between checkpoints.
    pub step: usize,
    /// Smallest prefix analysed.
    pub min_runs: usize,
    /// Block policy used for the prefix fits (fixed sizes keep prefixes
    /// comparable).
    pub block: BlockSpec,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            reference_cutoff: 1e-12,
            rel_tol: 0.01,
            stable_checkpoints: 3,
            step: 250,
            min_runs: 500,
            block: BlockSpec::Fixed(25),
        }
    }
}

/// One checkpoint of the convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Prefix length (number of runs used).
    pub runs: usize,
    /// pWCET estimate at the reference cutoff for this prefix.
    pub estimate: f64,
}

/// Outcome of the convergence analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// The checkpoint trajectory.
    pub trajectory: Vec<ConvergencePoint>,
    /// The first prefix length at which the criterion was met, if any.
    pub converged_at: Option<usize>,
}

impl ConvergenceReport {
    /// `true` if the campaign satisfied the criterion.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// Track the pWCET estimate across growing prefixes of `campaign` and
/// report when (whether) it stabilizes.
///
/// # Errors
///
/// Returns [`MbptaError::CampaignTooSmall`] if the campaign is shorter
/// than `config.min_runs`, or a stats error if a prefix fit fails.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::convergence::{check_convergence, ConvergenceConfig};
/// use proxima_mbpta::Campaign;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let times: Vec<f64> = (0..3000)
///     .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
///     .collect();
/// let campaign = Campaign::from_times(times)?;
/// let report = check_convergence(&campaign, &ConvergenceConfig::default())?;
/// assert!(report.converged());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn check_convergence(
    campaign: &Campaign,
    config: &ConvergenceConfig,
) -> Result<ConvergenceReport, MbptaError> {
    if campaign.len() < config.min_runs {
        return Err(MbptaError::CampaignTooSmall {
            needed: config.min_runs,
            got: campaign.len(),
        });
    }
    let mut trajectory = Vec::new();
    let mut stable_run = 0usize;
    let mut converged_at = None;
    let mut n = config.min_runs;
    while n <= campaign.len() {
        let prefix = campaign.prefix(n)?;
        let fit = fit_tail(prefix.times(), &config.block)?;
        let pwcet = Pwcet::new(fit.gumbel, fit.block_size);
        let estimate = pwcet.budget_for(config.reference_cutoff)?;
        if let Some(prev) = trajectory.last() {
            let prev: &ConvergencePoint = prev;
            let rel = ((estimate - prev.estimate) / prev.estimate).abs();
            if rel <= config.rel_tol {
                stable_run += 1;
            } else {
                stable_run = 0;
            }
        }
        trajectory.push(ConvergencePoint { runs: n, estimate });
        if converged_at.is_none() && stable_run >= config.stable_checkpoints {
            converged_at = Some(n);
        }
        if n == campaign.len() {
            break;
        }
        n = (n + config.step).min(campaign.len());
    }
    Ok(ConvergenceReport {
        trajectory,
        converged_at,
    })
}

/// Convenience: run convergence with the pipeline defaults of an
/// [`MbptaConfig`] (fixed block of 25, 1% tolerance).
///
/// # Errors
///
/// Same as [`check_convergence`].
pub fn check_with_defaults(
    campaign: &Campaign,
    _config: &MbptaConfig,
) -> Result<ConvergenceReport, MbptaError> {
    check_convergence(campaign, &ConvergenceConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn stationary_campaign(n: usize, seed: u64) -> Campaign {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Campaign::from_times(
            (0..n)
                .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn stationary_campaign_converges() {
        let c = stationary_campaign(3000, 1);
        let r = check_convergence(&c, &ConvergenceConfig::default()).unwrap();
        assert!(r.converged(), "trajectory: {:?}", r.trajectory);
        assert!(r.converged_at.unwrap() <= 3000);
        // Trajectory covers min_runs up to the full campaign.
        assert_eq!(r.trajectory.first().unwrap().runs, 500);
        assert_eq!(r.trajectory.last().unwrap().runs, 3000);
    }

    #[test]
    fn drifting_campaign_converges_late_or_never() {
        // A strong drift keeps shifting the estimate.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let times: Vec<f64> = (0..3000)
            .map(|i| 1e5 + i as f64 * 50.0 + 100.0 * rng.gen::<f64>())
            .collect();
        let c = Campaign::from_times(times).unwrap();
        let r = check_convergence(&c, &ConvergenceConfig::default()).unwrap();
        // The estimate keeps growing with the drift: if it ever "converges"
        // it must be only at the very end; typically it does not.
        if let Some(at) = r.converged_at {
            assert!(at > 2000, "drift should delay convergence, got {at}");
        }
    }

    #[test]
    fn short_campaign_rejected() {
        let c = stationary_campaign(100, 3);
        assert!(matches!(
            check_convergence(&c, &ConvergenceConfig::default()),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn trajectory_estimates_are_positive_and_finite() {
        let c = stationary_campaign(2000, 4);
        let r = check_convergence(&c, &ConvergenceConfig::default()).unwrap();
        for p in &r.trajectory {
            assert!(p.estimate.is_finite() && p.estimate > 0.0);
        }
    }

    #[test]
    fn defaults_wrapper_works() {
        let c = stationary_campaign(1500, 5);
        let r = check_with_defaults(&c, &crate::MbptaConfig::default()).unwrap();
        assert!(!r.trajectory.is_empty());
    }
}
