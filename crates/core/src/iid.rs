//! The i.i.d. validation gate.
//!
//! MBPTA requires the measured execution times to be independent and
//! identically distributed. Following the paper's protocol (Section III):
//! independence is tested with the **Ljung-Box** test and identical
//! distribution with the **two-sample Kolmogorov-Smirnov** test (first half
//! of the campaign vs second half), both at a 5% significance level —
//! "i.i.d. is rejected only if the value for any of the tests is lower
//! than 0.05". The paper reports p-values of 0.83 and 0.45 for the TVCA
//! campaign.

use proxima_stats::tests::{ks_two_sample, ljung_box, runs_test, TestResult};
use proxima_stats::{autocorr, StatsError};

use crate::MbptaError;

/// Outcome of the i.i.d. gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IidReport {
    /// Ljung-Box independence test result.
    pub ljung_box: TestResult,
    /// Two-sample KS identical-distribution test result (half vs half).
    pub ks: TestResult,
    /// Wald–Wolfowitz runs test — a supplementary non-parametric
    /// independence diagnostic (ECRTS 2012 protocol); not part of the
    /// paper's pass/fail gate. `None` if the sample had too many median
    /// ties to dichotomize.
    pub runs: Option<TestResult>,
    /// Significance level used.
    pub alpha: f64,
    /// `true` if both gate tests (Ljung-Box, KS) pass at `alpha`.
    pub passed: bool,
}

/// Run the i.i.d. gate over a campaign's execution times (in measurement
/// order).
///
/// `lags` selects the Ljung-Box lag count; `None` uses
/// [`autocorr::default_lag`].
///
/// # Errors
///
/// Returns [`MbptaError::Stats`] if the sample is too small or degenerate
/// for either test.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::iid::validate;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let times: Vec<f64> = (0..1000)
///     .map(|_| 1000.0 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 80.0)
///     .collect();
/// let report = validate(&times, 0.05, None)?;
/// assert!(report.passed);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn validate(times: &[f64], alpha: f64, lags: Option<usize>) -> Result<IidReport, MbptaError> {
    if times.len() < 40 {
        return Err(MbptaError::Stats(StatsError::InsufficientData {
            needed: 40,
            got: times.len(),
        }));
    }
    let lags = lags.unwrap_or_else(|| autocorr::default_lag(times.len()));
    let lb = ljung_box(times, lags)?;
    let mid = times.len() / 2;
    let ks = ks_two_sample(&times[..mid], &times[mid..])?;
    Ok(IidReport {
        ljung_box: lb,
        ks,
        runs: runs_test(times).ok(),
        alpha,
        passed: lb.passes(alpha) && ks.passes(alpha),
    })
}

/// Like [`validate`] but converts a failed gate into
/// [`MbptaError::IidRejected`], for pipelines that must not continue on
/// non-i.i.d. data.
///
/// # Errors
///
/// [`MbptaError::IidRejected`] if either test fails; [`MbptaError::Stats`]
/// if a test could not be run.
pub fn validate_strict(
    times: &[f64],
    alpha: f64,
    lags: Option<usize>,
) -> Result<IidReport, MbptaError> {
    let report = validate(times, alpha, lags)?;
    if !report.passed {
        return Err(MbptaError::IidRejected {
            ljung_box_p: report.ljung_box.p_value,
            ks_p: report.ks.p_value,
            alpha,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn iid_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| 5000.0 + 100.0 * rng.gen::<f64>()).collect()
    }

    #[test]
    fn iid_data_passes() {
        // Seed chosen to pass the 5%-level gate deterministically with the
        // vendored StdRng stream.
        let r = validate(&iid_sample(1000, 8), 0.05, None).unwrap();
        assert!(r.passed, "lb={} ks={}", r.ljung_box.p_value, r.ks.p_value);
        assert!(validate_strict(&iid_sample(1000, 8), 0.05, None).is_ok());
    }

    #[test]
    fn trending_data_fails_ks_or_lb() {
        // A drifting mean violates identical distribution (and usually
        // independence too).
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let times: Vec<f64> = (0..1000)
            .map(|i| 5000.0 + i as f64 * 2.0 + 10.0 * rng.gen::<f64>())
            .collect();
        let r = validate(&times, 0.05, None).unwrap();
        assert!(!r.passed);
        let strict = validate_strict(&times, 0.05, None);
        assert!(matches!(strict, Err(MbptaError::IidRejected { .. })));
    }

    #[test]
    fn autocorrelated_data_fails_lb() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut x = 0.0f64;
        let times: Vec<f64> = (0..1000)
            .map(|_| {
                x = 0.95 * x + rng.gen::<f64>();
                5000.0 + 100.0 * x
            })
            .collect();
        let r = validate(&times, 0.05, None).unwrap();
        assert!(!r.ljung_box.passes(0.05));
        assert!(!r.passed);
    }

    #[test]
    fn small_sample_rejected() {
        assert!(validate(&iid_sample(20, 1), 0.05, None).is_err());
    }

    #[test]
    fn custom_lag_respected() {
        let r5 = validate(&iid_sample(500, 2), 0.05, Some(5)).unwrap();
        let r20 = validate(&iid_sample(500, 2), 0.05, Some(20)).unwrap();
        // Different lag counts give different statistics.
        assert_ne!(r5.ljung_box.statistic, r20.ljung_box.statistic);
    }

    #[test]
    fn boundary_p_value_passes() {
        // passes() is >= alpha; verified at the report level.
        let r = validate(&iid_sample(400, 3), 0.05, None).unwrap();
        assert_eq!(r.passed, r.ljung_box.passes(0.05) && r.ks.passes(0.05));
    }
}
