//! Error type of the MBPTA crate.

use proxima_stats::StatsError;
use std::fmt;

/// Errors produced by the MBPTA pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MbptaError {
    /// The campaign failed the i.i.d. validation gate; MBPTA must not
    /// proceed (the platform is not sufficiently randomized, or the
    /// protocol was violated).
    IidRejected {
        /// p-value of the Ljung-Box independence test.
        ljung_box_p: f64,
        /// p-value of the two-sample KS identical-distribution test.
        ks_p: f64,
        /// The significance level the gate was run at.
        alpha: f64,
    },
    /// The fitted tail failed goodness-of-fit at the configured level.
    PoorFit {
        /// KS goodness-of-fit p-value against the fitted Gumbel.
        ks_p: f64,
    },
    /// An underlying statistical routine failed.
    Stats(StatsError),
    /// The campaign has too few runs for the requested configuration.
    CampaignTooSmall {
        /// Runs required.
        needed: usize,
        /// Runs available.
        got: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the offending parameter.
        what: &'static str,
    },
    /// A channel-scoped failure inside a multi-channel session: one
    /// tenant's bad feed or failed analysis, quarantined so it cannot
    /// abort the other channels. The merged
    /// [`SessionVerdict`](crate::session::SessionVerdict) reports these
    /// per channel.
    Channel {
        /// The channel whose feed or analysis failed.
        channel: crate::session::ChannelId,
        /// The underlying failure.
        source: Box<MbptaError>,
    },
    /// A checkpoint could not be saved or restored: the bytes were
    /// truncated, corrupted (checksum mismatch), written by an
    /// unsupported format version, or inconsistent with the session
    /// configuration they are being restored into. Decoding **never**
    /// panics on malformed input — it returns this variant.
    Checkpoint {
        /// Description of what went wrong.
        what: String,
    },
}

impl MbptaError {
    /// Wrap an error as a channel-scoped failure (idempotent: an error
    /// already scoped to a channel is returned unchanged).
    pub fn channel_scoped(channel: crate::session::ChannelId, source: MbptaError) -> MbptaError {
        match source {
            MbptaError::Channel { .. } => source,
            other => MbptaError::Channel {
                channel,
                source: Box::new(other),
            },
        }
    }

    /// Build a [`MbptaError::Checkpoint`] from any message — the
    /// conventional way the persistence layer reports malformed or
    /// mismatched checkpoint bytes.
    pub fn checkpoint(what: impl Into<String>) -> MbptaError {
        MbptaError::Checkpoint { what: what.into() }
    }

    /// Strip a channel scope, returning the underlying error; non-channel
    /// errors pass through unchanged.
    pub fn into_unscoped(self) -> MbptaError {
        match self {
            MbptaError::Channel { source, .. } => source.into_unscoped(),
            other => other,
        }
    }
}

impl fmt::Display for MbptaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbptaError::IidRejected {
                ljung_box_p,
                ks_p,
                alpha,
            } => write!(
                f,
                "i.i.d. hypothesis rejected at alpha={alpha}: ljung-box p={ljung_box_p:.4}, ks p={ks_p:.4}"
            ),
            MbptaError::PoorFit { ks_p } => {
                write!(f, "gumbel tail fit rejected by goodness-of-fit (ks p={ks_p:.4})")
            }
            MbptaError::Stats(e) => write!(f, "statistics error: {e}"),
            MbptaError::CampaignTooSmall { needed, got } => {
                write!(f, "campaign too small: need {needed} runs, got {got}")
            }
            MbptaError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            MbptaError::Channel { channel, source } => {
                write!(f, "channel `{channel}`: {source}")
            }
            MbptaError::Checkpoint { what } => write!(f, "checkpoint error: {what}"),
        }
    }
}

impl std::error::Error for MbptaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MbptaError::Stats(e) => Some(e),
            MbptaError::Channel { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StatsError> for MbptaError {
    fn from(e: StatsError) -> Self {
        MbptaError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_p_values() {
        let e = MbptaError::IidRejected {
            ljung_box_p: 0.01,
            ks_p: 0.5,
            alpha: 0.05,
        };
        let s = e.to_string();
        assert!(s.contains("0.01") && s.contains("0.5"));
    }

    #[test]
    fn stats_error_converts_and_chains() {
        let e: MbptaError = StatsError::NonFiniteData.into();
        assert!(matches!(e, MbptaError::Stats(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn channel_error_wraps_scopes_and_chains() {
        let id = crate::session::ChannelId::new("tenant-9");
        let e = MbptaError::channel_scoped(id.clone(), StatsError::NonFiniteData.into());
        assert!(e.to_string().contains("tenant-9"));
        assert!(std::error::Error::source(&e).is_some());
        // Idempotent wrap, reversible unwrap.
        let rewrapped = MbptaError::channel_scoped(crate::session::ChannelId::new("other"), e);
        assert!(rewrapped.to_string().contains("tenant-9"));
        assert!(matches!(
            rewrapped.into_unscoped(),
            MbptaError::Stats(StatsError::NonFiniteData)
        ));
    }

    #[test]
    fn checkpoint_error_displays_reason() {
        let e = MbptaError::checkpoint("bad magic");
        assert!(matches!(e, MbptaError::Checkpoint { .. }));
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MbptaError>();
    }
}
