//! Error type of the MBPTA crate.

use proxima_stats::StatsError;
use std::fmt;

/// Errors produced by the MBPTA pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MbptaError {
    /// The campaign failed the i.i.d. validation gate; MBPTA must not
    /// proceed (the platform is not sufficiently randomized, or the
    /// protocol was violated).
    IidRejected {
        /// p-value of the Ljung-Box independence test.
        ljung_box_p: f64,
        /// p-value of the two-sample KS identical-distribution test.
        ks_p: f64,
        /// The significance level the gate was run at.
        alpha: f64,
    },
    /// The fitted tail failed goodness-of-fit at the configured level.
    PoorFit {
        /// KS goodness-of-fit p-value against the fitted Gumbel.
        ks_p: f64,
    },
    /// An underlying statistical routine failed.
    Stats(StatsError),
    /// The campaign has too few runs for the requested configuration.
    CampaignTooSmall {
        /// Runs required.
        needed: usize,
        /// Runs available.
        got: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for MbptaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbptaError::IidRejected {
                ljung_box_p,
                ks_p,
                alpha,
            } => write!(
                f,
                "i.i.d. hypothesis rejected at alpha={alpha}: ljung-box p={ljung_box_p:.4}, ks p={ks_p:.4}"
            ),
            MbptaError::PoorFit { ks_p } => {
                write!(f, "gumbel tail fit rejected by goodness-of-fit (ks p={ks_p:.4})")
            }
            MbptaError::Stats(e) => write!(f, "statistics error: {e}"),
            MbptaError::CampaignTooSmall { needed, got } => {
                write!(f, "campaign too small: need {needed} runs, got {got}")
            }
            MbptaError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for MbptaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MbptaError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for MbptaError {
    fn from(e: StatsError) -> Self {
        MbptaError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_p_values() {
        let e = MbptaError::IidRejected {
            ljung_box_p: 0.01,
            ks_p: 0.5,
            alpha: 0.05,
        };
        let s = e.to_string();
        assert!(s.contains("0.01") && s.contains("0.5"));
    }

    #[test]
    fn stats_error_converts_and_chains() {
        let e: MbptaError = StatsError::NonFiniteData.into();
        assert!(matches!(e, MbptaError::Stats(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MbptaError>();
    }
}
