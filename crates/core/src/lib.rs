//! Measurement-Based Probabilistic Timing Analysis (MBPTA).
//!
//! This crate implements the analysis half of Fernandez et al.,
//! *"Probabilistic Timing Analysis on Time-Randomized Platforms for the
//! Space Domain"* (DATE 2017), following the MBPTA process of Cucu-Grosjean
//! et al. (ECRTS 2012):
//!
//! 1. **Measure** — collect end-to-end execution times of the program on an
//!    MBPTA-compliant (time-randomized) platform, flushing caches and
//!    reseeding the hardware PRNG for every run ([`Campaign`]).
//! 2. **Validate i.i.d.** — Ljung-Box independence test and two-sample
//!    Kolmogorov-Smirnov identical-distribution test at α = 0.05; the
//!    analysis is enabled only if both pass ([`iid`]).
//! 3. **Fit the tail** — group the measurements into blocks, take block
//!    maxima, fit a Gumbel distribution (PWM + MLE), check goodness of fit,
//!    and cross-check with a peaks-over-threshold GPD fit ([`evt_fit`]).
//! 4. **Answer pWCET queries** — the [`Pwcet`] distribution converts
//!    between execution-time budgets and per-run exceedance probabilities
//!    (10⁻³ … 10⁻¹⁵), honouring the block/run probability relation
//!    ([`pwcet`]).
//! 5. **Per-path analysis** — analyse each program path separately and
//!    take the maximum across paths, as the paper does ([`paths`]).
//!
//! The industrial-practice baseline the paper compares against — the
//! maximum observed execution time (*high watermark*) inflated by an
//! engineering factor on the deterministic platform — is in [`baseline`].
//!
//! The public surface is session-oriented:
//! [`MbptaConfig::session`] starts a [`SessionBuilder`], which builds an
//! [`AnalysisSession`] demultiplexing a tagged
//! measurement feed to one [`Engine`] per timing channel
//! (per path / per core / per tenant) behind one result vocabulary
//! ([`Verdict`]). [`Pipeline`] remains the one-shot
//! object form; the `analyze`/`measure_and_analyze` free functions are
//! deprecated shims over the session.
//!
//! # Examples
//!
//! End-to-end analysis of a synthetic campaign:
//!
//! ```
//! use proxima_mbpta::MbptaConfig;
//! use rand::{Rng, SeedableRng};
//!
//! // Stand-in for measured execution times on a randomized platform.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let times: Vec<f64> = (0..1000)
//!     .map(|_| 100_000.0 + 500.0 * rng.gen::<f64>() + 200.0 * rng.gen::<f64>())
//!     .collect();
//!
//! let verdict = MbptaConfig::default().session().analyze(&times)?;
//! assert!(verdict.iid.acceptable());
//! let budget = verdict.pwcet.budget_for(1e-12)?;
//! assert!(budget > verdict.high_watermark());
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod compat;
pub mod confidence;
pub mod convergence;
pub mod cv;
pub mod engine;
pub mod evt_fit;
pub mod iid;
pub mod paths;
pub mod persist;
pub mod pwcet;
pub mod risk;
pub mod sched;
pub mod session;

mod config;
mod error;
mod pipeline;
mod report;

pub use campaign::{Campaign, CampaignRunner};
pub use config::{BlockSpec, MbptaConfig, SessionBuilder};
pub use engine::{BatchEngine, BatchFactory, Engine, EngineEstimate, EngineFactory, Verdict};
pub use error::MbptaError;
// Every deprecated shim is defined (and tested) in [`compat`]; this is
// the single re-export keeping the old import paths alive.
#[allow(deprecated)]
pub use compat::{analyze, measure_and_analyze};
pub use pipeline::{MbptaReport, Pipeline};
pub use pwcet::Pwcet;
pub use report::{render_pwcet_csv, render_report, render_survival_csv};
pub use session::{AnalysisSession, ChannelHandle, ChannelId, SessionSnapshot, Tagged};
