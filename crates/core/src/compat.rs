//! The crate's deprecation surface, maintained in one place.
//!
//! Every deprecated pre-session entry point lives (or is anchored) here,
//! so the shim plumbing — the definitions, the single `#[allow]` needed
//! to keep them wired together, and the regression tests pinning them to
//! the session path — is not scattered across the modules they
//! originally came from. The crate root re-exports them so the old
//! import paths (`proxima_mbpta::analyze`, …) keep compiling.
//!
//! Policy: shims delegate to the supported path (they are *thin*: no
//! logic of their own beyond delegation), stay bit-identical to it, and
//! are removed together in the next breaking release. New deprecations
//! go in this module, not next to the code they shadow.

use proxima_sim::Inst;

use crate::campaign::CampaignRunner;
use crate::config::MbptaConfig;
use crate::pipeline::MbptaReport;
use crate::MbptaError;

/// Run the MBPTA pipeline over measured execution times:
/// i.i.d. gate → block maxima → Gumbel fit → pWCET.
///
/// Deprecated: this free function is now a thin shim routing through a
/// single-channel [`AnalysisSession`](crate::session::AnalysisSession)
/// with a batch engine — its result is bit-identical to the session's
/// verdict. Prefer [`MbptaConfig::session`] (multi-channel, one result
/// vocabulary) or [`Pipeline::analyze`](crate::Pipeline::analyze) for
/// the one-shot form.
///
/// # Errors
///
/// * [`MbptaError::CampaignTooSmall`] below `config.min_runs`;
/// * [`MbptaError::IidRejected`] if the i.i.d. gate fails — MBPTA is not
///   applicable (e.g. the platform is not randomized);
/// * [`MbptaError::PoorFit`] if `config.strict_gof` and the Gumbel is
///   rejected by the KS goodness-of-fit;
/// * [`MbptaError::Stats`] for degenerate/insufficient data.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::{MbptaConfig, Pipeline};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let times: Vec<f64> = (0..1500)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
/// let report = Pipeline::new(MbptaConfig::default()).analyze(&times)?;
/// assert!(report.budget_for(1e-9)? >= report.high_watermark());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `MbptaConfig::session()` (SessionBuilder) or `Pipeline::analyze`; \
            this shim delegates to a single-channel batch session"
)]
pub fn analyze(times: &[f64], config: &MbptaConfig) -> Result<MbptaReport, MbptaError> {
    config
        .clone()
        .session()
        .analyze(times)?
        .into_report()
        .ok_or(MbptaError::InvalidConfig {
            what: "batch session produced a non-batch verdict",
        })
}

/// Measure and analyze in one call: run a sharded parallel campaign with
/// `runner` and feed the merged measurement vector to the batch pipeline.
///
/// Deprecated: a thin shim over a single-channel session (see
/// [`analyze`]); prefer
/// [`Pipeline::measure_and_analyze`](crate::Pipeline::measure_and_analyze)
/// or a session fed by `CampaignRunner::run`/`run_many`.
///
/// Because the runner's measurement vector is independent of its `jobs`
/// setting, the resulting report — pWCET included — is bit-identical
/// whether the campaign ran on one core or all of them.
///
/// # Errors
///
/// Anything [`CampaignRunner::run`] or the batch pipeline returns.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::measure_and_analyze`, or feed a `CampaignRunner` campaign \
            into a `SessionBuilder` session"
)]
pub fn measure_and_analyze(
    runner: &CampaignRunner,
    trace: &[Inst],
    runs: usize,
    master_seed: u64,
    config: &MbptaConfig,
) -> Result<MbptaReport, MbptaError> {
    let campaign = runner.run(trace, runs, master_seed)?;
    #[allow(deprecated)] // shims share one delegation path
    analyze(campaign.times(), config)
}

#[cfg(test)]
#[allow(deprecated)] // deliberately exercises the deprecated shims: they
                     // must stay behaviourally identical to the session path
mod tests {
    use super::*;
    use crate::Pipeline;
    use rand::{Rng, SeedableRng};

    fn rand_campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..10).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn measure_and_analyze_independent_of_jobs() {
        use proxima_sim::{Inst, PlatformConfig};

        let trace: Vec<Inst> = (0..200)
            .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
            .collect();
        let config = MbptaConfig {
            min_runs: 100,
            ..MbptaConfig::default()
        };
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let serial =
            measure_and_analyze(&runner.clone().with_jobs(1), &trace, 400, 0, &config).unwrap();
        let parallel = measure_and_analyze(&runner.with_jobs(8), &trace, 400, 0, &config).unwrap();
        // Same measurements ⇒ same report, down to the pWCET parameters.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pipeline_object_matches_free_functions() {
        let times = rand_campaign(2000, 1);
        let config = MbptaConfig::default();
        let object = Pipeline::new(config.clone()).analyze(&times).unwrap();
        let free = analyze(&times, &config).unwrap();
        assert_eq!(object, free);
        assert_eq!(Pipeline::default().config(), &MbptaConfig::default());
    }
}
