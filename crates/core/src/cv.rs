//! The MBPTA-CV analysis pipeline (Abella et al., TODAES 2017).
//!
//! An alternative to the block-maxima process of [`crate::analyze`]: the
//! residual coefficient of variation selects the exceedance threshold, and
//! an exponential tail (GPD with ξ = 0) is fitted over it. MBPTA-CV needs
//! no block-size parameter and refuses heavy-looking tails by
//! construction, at the price of committing to the exponential shape.
//! Ablation **A7** (`exp_cv`) compares the two methods on the same
//! campaigns.

use proxima_stats::evt::{fit_cv_tail, CvFit};

use crate::config::MbptaConfig;
use crate::iid::{self, IidReport};
use crate::{Campaign, MbptaError};

/// Result of an MBPTA-CV analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// The i.i.d. gate outcome (same gate as the block-maxima pipeline).
    pub iid: IidReport,
    /// The CV threshold selection and exponential tail fit.
    pub fit: CvFit,
    /// Number of observations analysed.
    pub runs: usize,
    /// The campaign's high watermark.
    pub high_watermark: f64,
}

impl CvReport {
    /// The execution-time budget exceeded with per-run probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] unless `0 < p <` the tail fraction.
    pub fn budget_for(&self, p: f64) -> Result<f64, MbptaError> {
        Ok(self.fit.budget_for(p)?)
    }

    /// The per-run probability of exceeding `budget`.
    pub fn exceedance_probability(&self, budget: f64) -> f64 {
        self.fit.exceedance_probability(budget)
    }
}

/// Run the MBPTA-CV pipeline: i.i.d. gate → residual-CV threshold
/// selection → exponential tail fit.
///
/// `min_tail`/`max_tail` bound the exceedance-set sizes scanned; the
/// customary setting for 3,000-run campaigns scans 20…10% of the sample.
///
/// # Errors
///
/// * the same gate errors as [`crate::analyze`];
/// * [`MbptaError::Stats`] with `NoConvergence` if no threshold has an
///   exponential-compatible residual CV (heavy tail — the method refuses
///   rather than underestimates).
///
/// # Examples
///
/// ```
/// use proxima_mbpta::cv::analyze_cv;
/// use proxima_mbpta::MbptaConfig;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let times: Vec<f64> = (0..2000)
///     .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
///     .collect();
/// let report = analyze_cv(&times, &MbptaConfig::default())?;
/// assert!(report.budget_for(1e-12)? > report.high_watermark);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn analyze_cv(times: &[f64], config: &MbptaConfig) -> Result<CvReport, MbptaError> {
    config.validate()?;
    if times.len() < config.min_runs {
        return Err(MbptaError::CampaignTooSmall {
            needed: config.min_runs,
            got: times.len(),
        });
    }
    let campaign = Campaign::from_times(times.to_vec())?;
    let iid = iid::validate_strict(campaign.times(), config.alpha, config.ljung_box_lags)?;
    let min_tail = 20;
    let max_tail = (times.len() / 10).max(min_tail + 1);
    let fit = fit_cv_tail(campaign.times(), min_tail, max_tail)?;
    Ok(CvReport {
        iid,
        fit,
        runs: times.len(),
        high_watermark: campaign.high_watermark(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn campaign(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    #[test]
    fn cv_pipeline_succeeds_on_iid_campaign() {
        let times = campaign(3000, 1);
        let r = analyze_cv(&times, &MbptaConfig::default()).unwrap();
        assert!(r.iid.passed);
        assert!(r.fit.tail_size >= 20);
        let b = r.budget_for(1e-12).unwrap();
        assert!(b > r.high_watermark);
    }

    #[test]
    fn cv_and_block_maxima_agree_on_order_of_magnitude() {
        let times = campaign(3000, 2);
        let bm = crate::pipeline::analyze_impl(&times, &MbptaConfig::default()).unwrap();
        let cv = analyze_cv(&times, &MbptaConfig::default()).unwrap();
        let b_bm = bm.budget_for(1e-12).unwrap();
        let b_cv = cv.budget_for(1e-12).unwrap();
        let ratio = b_cv / b_bm;
        assert!(
            (0.8..1.25).contains(&ratio),
            "bm={b_bm:.0} cv={b_cv:.0} ratio={ratio:.3}"
        );
    }

    #[test]
    fn non_iid_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let times: Vec<f64> = (0..2000)
            .map(|i| 1e5 + i as f64 * 10.0 + rng.gen::<f64>())
            .collect();
        assert!(matches!(
            analyze_cv(&times, &MbptaConfig::default()),
            Err(MbptaError::IidRejected { .. })
        ));
    }

    #[test]
    fn small_campaign_rejected() {
        let times = campaign(50, 4);
        assert!(matches!(
            analyze_cv(&times, &MbptaConfig::default()),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn budgets_monotone() {
        let times = campaign(2000, 5);
        let r = analyze_cv(&times, &MbptaConfig::default()).unwrap();
        let b9 = r.budget_for(1e-9).unwrap();
        let b15 = r.budget_for(1e-15).unwrap();
        assert!(b15 > b9);
        // Round trip.
        let p = r.exceedance_probability(b9);
        assert!((p / 1e-9 - 1.0).abs() < 1e-6);
    }
}
