//! Measurement campaigns: collections of execution-time observations.

use proxima_sim::{Inst, Platform};
use proxima_stats::descriptive::Summary;
use proxima_stats::StatsError;

use crate::MbptaError;

/// A measurement campaign: the execution times (in cycles) of repeated
/// runs of one program path under the MBPTA protocol.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::Campaign;
///
/// let c = Campaign::from_times(vec![100.0, 105.0, 103.0, 108.0])?;
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.high_watermark(), 108.0);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    times: Vec<f64>,
}

impl Campaign {
    /// Wrap a vector of measured execution times.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] if the sample is empty or contains
    /// non-finite values.
    pub fn from_times(times: Vec<f64>) -> Result<Self, MbptaError> {
        if times.is_empty() {
            return Err(MbptaError::Stats(StatsError::InsufficientData {
                needed: 1,
                got: 0,
            }));
        }
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(MbptaError::Stats(StatsError::NonFiniteData));
        }
        Ok(Campaign { times })
    }

    /// Read a campaign from a reader: one execution time per line (blank
    /// lines and `#` comments skipped) — the interchange format of
    /// measurement rigs and of the `mbpta` CLI. Pass `&mut reader` if you
    /// need the reader back.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] for unparsable lines (reported as
    /// non-finite data) or an empty file.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::Campaign;
    ///
    /// let data = "# cycles\n100\n105.5\n\n103\n";
    /// let c = Campaign::from_reader(data.as_bytes())?;
    /// assert_eq!(c.len(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_reader<R: std::io::Read>(reader: R) -> Result<Self, MbptaError> {
        use std::io::BufRead;
        let buf = std::io::BufReader::new(reader);
        let mut times = Vec::new();
        for line in buf.lines() {
            let line = line.map_err(|_| MbptaError::Stats(StatsError::NonFiniteData))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let value: f64 = line
                .parse()
                .map_err(|_| MbptaError::Stats(StatsError::NonFiniteData))?;
            times.push(value);
        }
        Campaign::from_times(times)
    }

    /// Write the campaign in the same one-time-per-line format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        for t in &self.times {
            writeln!(writer, "{t}")?;
        }
        Ok(())
    }

    /// Execute the paper's measurement protocol on a simulated platform:
    /// `runs` executions of `trace`, flushing and reseeding per run
    /// (the platform does this inside `run`), with per-run seeds
    /// `base_seed, base_seed + 1, …`.
    pub fn measure(
        platform: &mut Platform,
        trace: &[Inst],
        runs: usize,
        base_seed: u64,
    ) -> Result<Self, MbptaError> {
        let obs = platform.campaign(trace, runs, base_seed);
        Campaign::from_times(obs.into_iter().map(|o| o.cycles as f64).collect())
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the campaign holds no observations (impossible by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The observations, in measurement order (order matters: the
    /// independence test runs over this sequence).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The maximum observed execution time — industry's *high watermark*.
    pub fn high_watermark(&self) -> f64 {
        self.times.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Descriptive summary of the observations.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] for campaigns of fewer than 2 runs.
    pub fn summary(&self) -> Result<Summary, MbptaError> {
        Ok(Summary::of(&self.times)?)
    }

    /// A prefix of the campaign (used by the convergence analysis).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::CampaignTooSmall`] if `n` exceeds the number
    /// of observations.
    pub fn prefix(&self, n: usize) -> Result<Campaign, MbptaError> {
        if n > self.times.len() || n == 0 {
            return Err(MbptaError::CampaignTooSmall {
                needed: n.max(1),
                got: self.times.len(),
            });
        }
        Ok(Campaign {
            times: self.times[..n].to_vec(),
        })
    }
}

impl AsRef<[f64]> for Campaign {
    fn as_ref(&self) -> &[f64] {
        &self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{Inst, Platform, PlatformConfig};

    #[test]
    fn construction_validates() {
        assert!(Campaign::from_times(vec![]).is_err());
        assert!(Campaign::from_times(vec![f64::NAN]).is_err());
        assert!(Campaign::from_times(vec![-1.0]).is_err());
        assert!(Campaign::from_times(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn high_watermark_is_max() {
        let c = Campaign::from_times(vec![5.0, 9.0, 7.0]).unwrap();
        assert_eq!(c.high_watermark(), 9.0);
    }

    #[test]
    fn measure_runs_protocol() {
        let prog: Vec<Inst> = (0..100)
            .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
            .collect();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let c = Campaign::measure(&mut p, &prog, 50, 0).unwrap();
        assert_eq!(c.len(), 50);
        assert!(c.times().iter().all(|&t| t > 0.0));
    }

    #[test]
    fn prefix_takes_first_runs() {
        let c = Campaign::from_times(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = c.prefix(2).unwrap();
        assert_eq!(p.times(), &[1.0, 2.0]);
        assert!(c.prefix(5).is_err());
        assert!(c.prefix(0).is_err());
    }

    #[test]
    fn reader_round_trip() {
        let c = Campaign::from_times(vec![100.0, 105.5, 103.0]).unwrap();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Campaign::from_reader(buf.as_slice()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn reader_skips_comments_and_blanks() {
        let text = "# header\n\n1\n  2.5 \n# mid\n3\n";
        let c = Campaign::from_reader(text.as_bytes()).unwrap();
        assert_eq!(c.times(), &[1.0, 2.5, 3.0]);
    }

    #[test]
    fn reader_rejects_garbage_and_empty() {
        assert!(Campaign::from_reader("abc\n".as_bytes()).is_err());
        assert!(Campaign::from_reader("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn summary_consistent() {
        let c = Campaign::from_times(vec![10.0, 20.0, 30.0]).unwrap();
        let s = c.summary().unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.max, c.high_watermark());
    }
}
