//! Measurement campaigns: collections of execution-time observations, and
//! the sharded parallel engine that collects them.

use proxima_prng::SplitMix64;
use proxima_sim::{Inst, Platform, PlatformConfig};
use proxima_stats::descriptive::Summary;
use proxima_stats::StatsError;

use crate::MbptaError;

/// A measurement campaign: the execution times (in cycles) of repeated
/// runs of one program path under the MBPTA protocol.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::Campaign;
///
/// let c = Campaign::from_times(vec![100.0, 105.0, 103.0, 108.0])?;
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.high_watermark(), 108.0);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    times: Vec<f64>,
}

impl Campaign {
    /// Wrap a vector of measured execution times.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] if the sample is empty or contains
    /// non-finite values.
    pub fn from_times(times: Vec<f64>) -> Result<Self, MbptaError> {
        if times.is_empty() {
            return Err(MbptaError::Stats(StatsError::InsufficientData {
                needed: 1,
                got: 0,
            }));
        }
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(MbptaError::Stats(StatsError::NonFiniteData));
        }
        Ok(Campaign { times })
    }

    /// Read a campaign from a reader: one execution time per line (blank
    /// lines and `#` comments skipped) — the interchange format of
    /// measurement rigs and of the `mbpta` CLI. Pass `&mut reader` if you
    /// need the reader back.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] for unparsable lines (reported as
    /// non-finite data) or an empty file.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::Campaign;
    ///
    /// let data = "# cycles\n100\n105.5\n\n103\n";
    /// let c = Campaign::from_reader(data.as_bytes())?;
    /// assert_eq!(c.len(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_reader<R: std::io::Read>(reader: R) -> Result<Self, MbptaError> {
        use std::io::BufRead;
        let buf = std::io::BufReader::new(reader);
        let mut times = Vec::new();
        for line in buf.lines() {
            let line = line.map_err(|_| MbptaError::Stats(StatsError::NonFiniteData))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let value: f64 = line
                .parse()
                .map_err(|_| MbptaError::Stats(StatsError::NonFiniteData))?;
            times.push(value);
        }
        Campaign::from_times(times)
    }

    /// Write the campaign in the same one-time-per-line format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        for t in &self.times {
            writeln!(writer, "{t}")?;
        }
        Ok(())
    }

    /// Execute the paper's measurement protocol on a simulated platform:
    /// `runs` executions of `trace`, flushing and reseeding per run
    /// (the platform does this inside `run`), with per-run seeds
    /// `base_seed, base_seed + 1, …`.
    pub fn measure(
        platform: &mut Platform,
        trace: &[Inst],
        runs: usize,
        base_seed: u64,
    ) -> Result<Self, MbptaError> {
        let obs = platform.campaign(trace, runs, base_seed);
        Campaign::from_times(obs.into_iter().map(|o| o.cycles as f64).collect())
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the campaign holds no observations (impossible by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The observations, in measurement order (order matters: the
    /// independence test runs over this sequence).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The maximum observed execution time — industry's *high watermark*.
    pub fn high_watermark(&self) -> f64 {
        self.times.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Descriptive summary of the observations.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] for campaigns of fewer than 2 runs.
    pub fn summary(&self) -> Result<Summary, MbptaError> {
        Ok(Summary::of(&self.times)?)
    }

    /// A prefix of the campaign (used by the convergence analysis).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::CampaignTooSmall`] if `n` exceeds the number
    /// of observations.
    pub fn prefix(&self, n: usize) -> Result<Campaign, MbptaError> {
        if n > self.times.len() || n == 0 {
            return Err(MbptaError::CampaignTooSmall {
                needed: n.max(1),
                got: self.times.len(),
            });
        }
        Ok(Campaign {
            times: self.times[..n].to_vec(),
        })
    }
}

impl AsRef<[f64]> for Campaign {
    fn as_ref(&self) -> &[f64] {
        &self.times
    }
}

/// Sharded parallel campaign engine.
///
/// Measurement campaigns are embarrassingly parallel: the paper's protocol
/// gives every run a fresh platform state (flushed caches, new seed), so
/// runs share nothing. `CampaignRunner` splits the `runs` indices into one
/// contiguous shard per worker, gives each shard its own [`Platform`]
/// instance, and draws the per-run seed for run `i` from the SplitMix64
/// stream of the master seed via [`SplitMix64::stream_seed`] — an O(1)
/// random access, so the seed of a run depends only on `(master_seed, i)`,
/// never on which shard executed it. Merging the shards in index order
/// therefore reproduces **bit for bit** the measurement vector a serial run
/// (`jobs = 1`) with the same master seed produces.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::CampaignRunner;
/// use proxima_sim::{Inst, PlatformConfig};
///
/// let trace: Vec<Inst> = (0..100)
///     .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
///     .collect();
/// let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
/// let serial = runner.clone().with_jobs(1).run(&trace, 40, 7)?;
/// let parallel = runner.with_jobs(4).run(&trace, 40, 7)?;
/// assert_eq!(serial.times(), parallel.times());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    config: PlatformConfig,
    jobs: usize,
}

impl CampaignRunner {
    /// Create a runner for `config` using all available cores.
    pub fn new(config: PlatformConfig) -> Self {
        CampaignRunner { config, jobs: 0 }
    }

    /// Limit the runner to `jobs` worker threads (`0` = all available
    /// cores).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The number of worker threads the runner will use.
    pub fn jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }

    /// The platform configuration each shard instantiates.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Execute the measurement protocol: `runs` executions of `trace`, the
    /// run at index `i` seeded with the `i`-th element of the master seed's
    /// SplitMix64 stream. The result is identical for every `jobs` setting.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] if `runs == 0`.
    pub fn run(
        &self,
        trace: &[Inst],
        runs: usize,
        master_seed: u64,
    ) -> Result<Campaign, MbptaError> {
        Campaign::from_times(self.measure_times(trace, runs, master_seed))
    }

    /// Measure several traces — one per program path / session channel —
    /// in **one thread pool**: the `traces.len() × runs` run indices are
    /// flattened and sharded over the same engine as [`Self::run`], so a
    /// many-path campaign saturates the cores even when each path alone
    /// would not.
    ///
    /// Trace `t` draws its per-run seeds from the SplitMix64 stream of
    /// the derived master seed [`SplitMix64::stream_seed`]`(master_seed,
    /// t)`; campaign `t` of the result is therefore **bit-identical** to
    /// `self.run(&traces[t], runs, SplitMix64::stream_seed(master_seed,
    /// t))` — at every `jobs` setting.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] for an empty trace list and
    /// [`MbptaError::Stats`] if `runs == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_mbpta::CampaignRunner;
    /// use proxima_prng::SplitMix64;
    /// use proxima_sim::{Inst, PlatformConfig};
    ///
    /// let traces: Vec<Vec<Inst>> = (0..3)
    ///     .map(|p| {
    ///         (0..60)
    ///             .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * ((p + i) % 40)))
    ///             .collect()
    ///     })
    ///     .collect();
    /// let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
    /// let pooled = runner.run_many(&traces, 30, 7)?;
    /// let alone = runner.run(&traces[1], 30, SplitMix64::stream_seed(7, 1))?;
    /// assert_eq!(pooled[1].times(), alone.times());
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn run_many(
        &self,
        traces: &[Vec<Inst>],
        runs: usize,
        master_seed: u64,
    ) -> Result<Vec<Campaign>, MbptaError> {
        if traces.is_empty() {
            return Err(MbptaError::InvalidConfig {
                what: "run_many needs at least one trace",
            });
        }
        if runs == 0 {
            return Err(MbptaError::Stats(StatsError::InsufficientData {
                needed: 1,
                got: 0,
            }));
        }
        let total = traces.len() * runs;
        let times = run_sharded(total, self.jobs(), |shard| {
            // One platform per (shard, trace) stretch; `Platform::run`
            // flushes and reseeds per run, so a fresh instance is
            // bit-identical to a reused one.
            let mut current: Option<(usize, Platform)> = None;
            shard
                .map(|global| {
                    let t = global / runs;
                    let i = (global % runs) as u64;
                    if current.as_ref().is_none_or(|(ct, _)| *ct != t) {
                        current = Some((t, Platform::new(self.config.clone())));
                    }
                    let trace_seed = SplitMix64::stream_seed(master_seed, t as u64);
                    let seed = SplitMix64::stream_seed(trace_seed, i);
                    // proxima-lint: allow(no-lib-panic) -- the branch above
                    // installs a platform whenever `current` is vacant.
                    let (_, platform) = current.as_mut().expect("platform just installed");
                    platform.run(&traces[t], seed).cycles as f64
                })
                .collect()
        });
        times
            .chunks(runs)
            .map(|chunk| Campaign::from_times(chunk.to_vec()))
            .collect()
    }

    fn measure_times(&self, trace: &[Inst], runs: usize, master_seed: u64) -> Vec<f64> {
        run_sharded(runs, self.jobs(), |shard| {
            self.shard_times(trace, shard, master_seed)
        })
    }

    /// Run one shard of the campaign on a private platform instance.
    fn shard_times(
        &self,
        trace: &[Inst],
        shard: std::ops::Range<usize>,
        master_seed: u64,
    ) -> Vec<f64> {
        let mut platform = Platform::new(self.config.clone());
        shard
            .map(|i| {
                let seed = SplitMix64::stream_seed(master_seed, i as u64);
                platform.run(trace, seed).cycles as f64
            })
            .collect()
    }
}

/// Resolve a `jobs` knob: `0` means all available cores.
pub(crate) fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// The sharding engine: run `work` over the shards of `0..len` on up to
/// `jobs` scoped workers (`0` = all cores) and concatenate the per-shard
/// results **in index order** — joining in spawn order, so the output is
/// identical to a serial `work(0..len)` whenever `work` is a pure function
/// of its range. Shared by the campaign runner, the bootstrap resampler
/// and the per-path fan-out.
pub(crate) fn run_sharded<T, F>(len: usize, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let jobs = resolve_jobs(jobs);
    if jobs <= 1 || len <= 1 {
        return work(0..len);
    }
    std::thread::scope(|scope| {
        let work = &work;
        let workers: Vec<_> = shard_ranges(len, jobs)
            .into_iter()
            .map(|shard| scope.spawn(move || work(shard)))
            .collect();
        workers
            .into_iter()
            // proxima-lint: allow(no-lib-panic) -- join() only errs if the
            // worker itself panicked; this re-raises that panic, it does
            // not introduce a new failure mode.
            .flat_map(|w| w.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Split `0..runs` into at most `jobs` contiguous ranges of near-equal
/// size, in index order — the work-splitting half of the sharding engine.
fn shard_ranges(runs: usize, jobs: usize) -> Vec<std::ops::Range<usize>> {
    let shards = jobs.min(runs).max(1);
    let base = runs / shards;
    let extra = runs % shards;
    let mut start = 0;
    (0..shards)
        .map(|s| {
            let len = base + usize::from(s < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{Inst, Platform, PlatformConfig};

    #[test]
    fn construction_validates() {
        assert!(Campaign::from_times(vec![]).is_err());
        assert!(Campaign::from_times(vec![f64::NAN]).is_err());
        assert!(Campaign::from_times(vec![-1.0]).is_err());
        assert!(Campaign::from_times(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn high_watermark_is_max() {
        let c = Campaign::from_times(vec![5.0, 9.0, 7.0]).unwrap();
        assert_eq!(c.high_watermark(), 9.0);
    }

    #[test]
    fn measure_runs_protocol() {
        let prog: Vec<Inst> = (0..100)
            .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
            .collect();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let c = Campaign::measure(&mut p, &prog, 50, 0).unwrap();
        assert_eq!(c.len(), 50);
        assert!(c.times().iter().all(|&t| t > 0.0));
    }

    #[test]
    fn prefix_takes_first_runs() {
        let c = Campaign::from_times(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = c.prefix(2).unwrap();
        assert_eq!(p.times(), &[1.0, 2.0]);
        assert!(c.prefix(5).is_err());
        assert!(c.prefix(0).is_err());
    }

    #[test]
    fn reader_round_trip() {
        let c = Campaign::from_times(vec![100.0, 105.5, 103.0]).unwrap();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Campaign::from_reader(buf.as_slice()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn reader_skips_comments_and_blanks() {
        let text = "# header\n\n1\n  2.5 \n# mid\n3\n";
        let c = Campaign::from_reader(text.as_bytes()).unwrap();
        assert_eq!(c.times(), &[1.0, 2.5, 3.0]);
    }

    #[test]
    fn reader_rejects_garbage_and_empty() {
        assert!(Campaign::from_reader("abc\n".as_bytes()).is_err());
        assert!(Campaign::from_reader("# only comments\n".as_bytes()).is_err());
    }

    fn striding_loads(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::load(
                    0x100 + 4 * (i as u64 % 16),
                    0x10_0000 + 4096 * (i as u64 % 40),
                )
            })
            .collect()
    }

    #[test]
    fn runner_matches_serial_reference() {
        // The runner at jobs=1 must equal a hand-rolled serial loop over
        // the SplitMix64 seed stream.
        let prog = striding_loads(200);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(1);
        let c = runner.run(&prog, 30, 99).unwrap();
        let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
        let reference: Vec<f64> = (0..30u64)
            .map(|i| {
                platform
                    .run(&prog, proxima_prng::SplitMix64::stream_seed(99, i))
                    .cycles as f64
            })
            .collect();
        assert_eq!(c.times(), &reference[..]);
    }

    #[test]
    fn runner_deterministic_across_job_counts() {
        let prog = striding_loads(300);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let reference = runner.clone().with_jobs(1).run(&prog, 97, 1234).unwrap();
        for jobs in [2, 3, 4, 8, 16] {
            let parallel = runner.clone().with_jobs(jobs).run(&prog, 97, 1234).unwrap();
            assert_eq!(
                reference.times(),
                parallel.times(),
                "jobs={jobs} diverged from serial"
            );
        }
    }

    #[test]
    fn runner_rejects_empty_campaign() {
        let prog = striding_loads(10);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(2);
        assert!(runner.run(&prog, 0, 0).is_err());
    }

    #[test]
    fn runner_different_seeds_differ() {
        let prog = striding_loads(500);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(4);
        let a = runner.run(&prog, 50, 1).unwrap();
        let b = runner.run(&prog, 50, 2).unwrap();
        assert_ne!(a.times(), b.times());
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for runs in [0usize, 1, 7, 97, 1000] {
            for jobs in [1usize, 2, 3, 8, 64] {
                let ranges = shard_ranges(runs, jobs);
                assert!(ranges.len() <= jobs.max(1));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "runs={runs} jobs={jobs}");
                    next = r.end;
                }
                assert_eq!(next, runs, "runs={runs} jobs={jobs}");
            }
        }
    }

    #[test]
    fn run_many_matches_per_trace_runs_at_any_jobs() {
        let traces: Vec<Vec<Inst>> = (0..3)
            .map(|p| {
                (0..80)
                    .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * ((p + i) % 40)))
                    .collect()
            })
            .collect();
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        let reference = runner
            .clone()
            .with_jobs(1)
            .run_many(&traces, 40, 9)
            .unwrap();
        // Each pooled campaign equals the standalone run with the
        // per-trace stream seed.
        for (t, campaign) in reference.iter().enumerate() {
            let alone = runner
                .clone()
                .with_jobs(1)
                .run(&traces[t], 40, SplitMix64::stream_seed(9, t as u64))
                .unwrap();
            assert_eq!(campaign.times(), alone.times(), "trace {t}");
        }
        // And the pool is bit-identical at every jobs setting, including
        // shards that straddle trace boundaries.
        for jobs in [2, 3, 5, 8, 16] {
            let pooled = runner
                .clone()
                .with_jobs(jobs)
                .run_many(&traces, 40, 9)
                .unwrap();
            for (r, p) in reference.iter().zip(&pooled) {
                assert_eq!(r.times(), p.times(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn run_many_rejects_empty_inputs() {
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        assert!(runner.run_many(&[], 10, 0).is_err());
        assert!(runner.run_many(&[striding_loads(10)], 0, 0).is_err());
    }

    #[test]
    fn jobs_zero_means_auto() {
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant());
        assert!(runner.jobs() >= 1);
        assert_eq!(runner.clone().with_jobs(3).jobs(), 3);
    }

    #[test]
    fn summary_consistent() {
        let c = Campaign::from_times(vec![10.0, 20.0, 30.0]).unwrap();
        let s = c.summary().unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.max, c.high_watermark());
    }
}
