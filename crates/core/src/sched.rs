//! Fixed-priority schedulability analysis consuming (p)WCET budgets.
//!
//! WCET estimates exist to be fed into schedulability analysis: the TVCA
//! runs three periodic tasks under a fixed-priority scheduler, and the
//! system-level question is whether every task meets its deadline when
//! each is budgeted at its (p)WCET. This module implements classical
//! response-time analysis (Joseph & Pandya 1986; Audsley et al. 1993) for
//! constrained-deadline fixed-priority task sets:
//!
//! `R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j`
//!
//! iterated to fixed point. With the `C_i` set to pWCET budgets at a
//! per-activation cutoff chosen via [`crate::risk`], a positive result
//! means every deadline holds except with the budgeted probability — the
//! end-to-end argument the MBPTA pipeline feeds.

use crate::MbptaError;

/// A periodic task with a fixed-priority budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task name.
    pub name: String,
    /// Period (and implicit deadline if `deadline` is `None`), in cycles.
    pub period: f64,
    /// Relative deadline in cycles (must be ≤ period).
    pub deadline: f64,
    /// Budgeted worst-case execution time in cycles (e.g. a pWCET).
    pub wcet: f64,
}

impl TaskSpec {
    /// A task with deadline equal to its period.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] unless `0 < wcet ≤ period`.
    pub fn implicit_deadline(
        name: impl Into<String>,
        period: f64,
        wcet: f64,
    ) -> Result<Self, MbptaError> {
        let t = TaskSpec {
            name: name.into(),
            period,
            deadline: period,
            wcet,
        };
        t.validate()?;
        Ok(t)
    }

    fn validate(&self) -> Result<(), MbptaError> {
        let ok = self.period.is_finite()
            && self.deadline.is_finite()
            && self.wcet.is_finite()
            && self.wcet > 0.0
            && self.period > 0.0
            && self.deadline > 0.0
            && self.deadline <= self.period
            && self.wcet <= self.deadline;
        if ok {
            Ok(())
        } else {
            Err(MbptaError::InvalidConfig {
                what: "task needs 0 < wcet, 0 < deadline <= period, all finite",
            })
        }
    }

    /// Utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }
}

/// Per-task outcome of the response-time analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResponse {
    /// Task name.
    pub name: String,
    /// Worst-case response time in cycles, or `None` if the fixed point
    /// diverged past the deadline (unschedulable).
    pub response_time: Option<f64>,
    /// The task's deadline.
    pub deadline: f64,
}

impl TaskResponse {
    /// `true` if the task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.response_time.is_some_and(|r| r <= self.deadline)
    }
}

/// Result of analysing a task set.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedAnalysis {
    /// Per-task responses, in priority order (index 0 = highest).
    pub tasks: Vec<TaskResponse>,
    /// Total utilization of the set.
    pub utilization: f64,
}

impl SchedAnalysis {
    /// `true` if every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.tasks.iter().all(TaskResponse::schedulable)
    }
}

/// Rate-monotonic priority order: sort tasks by period, shortest first.
/// Optimal among fixed-priority assignments for implicit deadlines
/// (Liu & Layland 1973).
pub fn rate_monotonic_order(tasks: &mut [TaskSpec]) {
    tasks.sort_by(|a, b| a.period.total_cmp(&b.period));
}

/// Response-time analysis of `tasks`, which must already be in priority
/// order (index 0 = highest priority).
///
/// # Errors
///
/// Returns [`MbptaError::InvalidConfig`] for an empty set or an invalid
/// task.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::sched::{response_time_analysis, TaskSpec};
///
/// let tasks = vec![
///     TaskSpec::implicit_deadline("sensor", 100_000.0, 20_000.0)?,
///     TaskSpec::implicit_deadline("act-x", 200_000.0, 80_000.0)?,
/// ];
/// let analysis = response_time_analysis(&tasks)?;
/// assert!(analysis.schedulable());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn response_time_analysis(tasks: &[TaskSpec]) -> Result<SchedAnalysis, MbptaError> {
    if tasks.is_empty() {
        return Err(MbptaError::InvalidConfig {
            what: "task set must be non-empty",
        });
    }
    for t in tasks {
        t.validate()?;
    }
    let utilization = tasks.iter().map(TaskSpec::utilization).sum();
    let mut out = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let mut r = task.wcet;
        let mut response = None;
        for _ in 0..10_000 {
            let interference: f64 = tasks[..i]
                .iter()
                .map(|hp| (r / hp.period).ceil() * hp.wcet)
                .sum();
            let next = task.wcet + interference;
            if (next - r).abs() < 1e-9 {
                response = Some(next);
                break;
            }
            if next > task.deadline {
                // Past the deadline: unschedulable, stop iterating.
                response = None;
                break;
            }
            r = next;
        }
        out.push(TaskResponse {
            name: task.name.clone(),
            response_time: response,
            deadline: task.deadline,
        });
    }
    Ok(SchedAnalysis {
        tasks: out,
        utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, period: f64, wcet: f64) -> TaskSpec {
        TaskSpec::implicit_deadline(name, period, wcet).unwrap()
    }

    #[test]
    fn textbook_schedulable_set() {
        // T1 (T=10, C=3): R = 3. T2 (T=20, C=6): fixed point of
        // R = 6 + ⌈R/10⌉·3 → 6 → 9 → 9 (one T1 release inside [0, 9]).
        let tasks = vec![task("t1", 10.0, 3.0), task("t2", 20.0, 6.0)];
        let a = response_time_analysis(&tasks).unwrap();
        assert!(a.schedulable());
        assert_eq!(a.tasks[0].response_time, Some(3.0));
        assert_eq!(a.tasks[1].response_time, Some(9.0));
        assert!((a.utilization - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overloaded_set_unschedulable() {
        let tasks = vec![task("t1", 10.0, 6.0), task("t2", 20.0, 10.0)];
        let a = response_time_analysis(&tasks).unwrap();
        assert!(!a.schedulable());
        assert!(a.tasks[1].response_time.is_none());
        assert!(a.utilization > 1.0);
    }

    #[test]
    fn highest_priority_task_response_is_its_wcet() {
        let tasks = vec![task("hp", 100.0, 42.0), task("lp", 1000.0, 10.0)];
        let a = response_time_analysis(&tasks).unwrap();
        assert_eq!(a.tasks[0].response_time, Some(42.0));
    }

    #[test]
    fn rate_monotonic_sorts_by_period() {
        let mut tasks = vec![task("slow", 100.0, 1.0), task("fast", 10.0, 1.0)];
        rate_monotonic_order(&mut tasks);
        assert_eq!(tasks[0].name, "fast");
    }

    #[test]
    fn tvca_like_set_with_pwcet_budgets() {
        // Three tasks shaped like the TVCA: sensor every frame, actuators
        // every other frame, budgets at a pWCET-like inflation.
        let mut tasks = vec![
            task("actuator-x", 200_000.0, 45_000.0),
            task("sensor", 100_000.0, 30_000.0),
            task("actuator-y", 200_000.0, 45_000.0),
        ];
        rate_monotonic_order(&mut tasks);
        let a = response_time_analysis(&tasks).unwrap();
        assert!(a.schedulable(), "{a:?}");
        // Sensor (highest prio) responds in its own WCET.
        assert_eq!(a.tasks[0].response_time, Some(30_000.0));
        // actuator-y sees sensor + actuator-x interference.
        let ry = a.tasks[2].response_time.unwrap();
        assert!(ry > 120_000.0 && ry <= 200_000.0, "ry={ry}");
    }

    #[test]
    fn invalid_tasks_rejected() {
        assert!(TaskSpec::implicit_deadline("x", 10.0, 0.0).is_err());
        assert!(TaskSpec::implicit_deadline("x", 0.0, 1.0).is_err());
        assert!(TaskSpec::implicit_deadline("x", 10.0, 11.0).is_err());
        assert!(response_time_analysis(&[]).is_err());
    }

    #[test]
    fn constrained_deadline_respected() {
        let t = TaskSpec {
            name: "tight".into(),
            period: 100.0,
            deadline: 10.0,
            wcet: 12.0,
        };
        assert!(t.validate().is_err(), "wcet beyond deadline-period bound");
        let t2 = TaskSpec {
            name: "ok".into(),
            period: 100.0,
            deadline: 50.0,
            wcet: 40.0,
        };
        let a = response_time_analysis(&[t2]).unwrap();
        assert!(a.schedulable());
    }
}
