//! EVT fitting stage: block maxima → Gumbel, with diagnostics.

use proxima_stats::descriptive::quantile;
use proxima_stats::dist::{Gev, Gpd, Gumbel};
use proxima_stats::evt::{
    block_maxima, fit_gev, fit_gpd, fit_gumbel, goodness_of_fit, select_block_size, GofReport,
};

use crate::config::BlockSpec;
use crate::MbptaError;

/// The fitted tail with its diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct EvtFit {
    /// The production Gumbel fit on block maxima.
    pub gumbel: Gumbel,
    /// Block size used.
    pub block_size: usize,
    /// Number of block maxima the fit used.
    pub n_maxima: usize,
    /// Goodness-of-fit of the Gumbel on the maxima.
    pub gof: GofReport,
    /// Diagnostic GEV fit (its shape should be ≈ 0 for a sound campaign;
    /// a clearly positive shape flags unbounded-looking jitter).
    pub gev_diagnostic: Option<Gev>,
    /// POT cross-check: GPD fitted to exceedances of the 90th percentile.
    pub pot_cross_check: Option<Gpd>,
}

impl EvtFit {
    /// `true` if the GEV diagnostic shape is consistent with the Gumbel
    /// (light-tail) hypothesis: `ξ ≤ tol`.
    pub fn shape_consistent(&self, tol: f64) -> bool {
        self.gev_diagnostic.is_none_or(|g| g.xi() <= tol)
    }
}

/// Fit the EVT tail to a campaign's execution times.
///
/// Steps: resolve the block size (fixed or Anderson-Darling-best over the
/// candidates), extract block maxima, fit the Gumbel (PWM + MLE), attach
/// the KS/AD goodness-of-fit, and attach the GEV and POT diagnostics when
/// the sample supports them.
///
/// # Errors
///
/// Returns [`MbptaError::Stats`] if the campaign is too small for the
/// requested block size or the maxima are degenerate.
///
/// # Examples
///
/// ```
/// use proxima_mbpta::evt_fit::fit_tail;
/// use proxima_mbpta::BlockSpec;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let times: Vec<f64> = (0..2000).map(|_| 1e5 + 300.0 * rng.gen::<f64>()).collect();
/// let fit = fit_tail(&times, &BlockSpec::Fixed(50))?;
/// assert_eq!(fit.block_size, 50);
/// assert_eq!(fit.n_maxima, 40);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
pub fn fit_tail(times: &[f64], block: &BlockSpec) -> Result<EvtFit, MbptaError> {
    let block_size = match block {
        BlockSpec::Fixed(b) => *b,
        BlockSpec::Auto(candidates) => match select_block_size(times, candidates) {
            Ok(choice) => choice.block_size,
            // Fall back to the largest candidate that still yields enough
            // maxima (≥ 10) for a stable fit, or n/10 as a last resort.
            Err(_) => candidates
                .iter()
                .copied()
                .filter(|&b| b > 0 && times.len() / b >= 10)
                .max()
                .unwrap_or_else(|| (times.len() / 10).max(1)),
        },
    };
    let maxima = block_maxima(times, block_size)?;
    let gumbel = fit_gumbel(&maxima)?;
    let gof = goodness_of_fit(&maxima, &gumbel)?;
    let gev_diagnostic = fit_gev(&maxima).ok();
    let pot_cross_check = quantile(times, 0.90)
        .ok()
        .and_then(|u| fit_gpd(times, u).ok());
    Ok(EvtFit {
        gumbel,
        block_size,
        n_maxima: maxima.len(),
        gof,
        gev_diagnostic,
        pot_cross_check,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn campaign(n: usize, seed: u64) -> Vec<f64> {
        // Bounded, light-tailed synthetic execution times: base + sum of
        // a few uniform contributions (cache events).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let misses = (0..8).map(|_| rng.gen::<f64>()).sum::<f64>();
                50_000.0 + 120.0 * misses
            })
            .collect()
    }

    #[test]
    fn fixed_block_fit_sane() {
        let times = campaign(3000, 1);
        let fit = fit_tail(&times, &BlockSpec::Fixed(50)).unwrap();
        assert_eq!(fit.block_size, 50);
        assert_eq!(fit.n_maxima, 60);
        assert!(fit.gumbel.beta() > 0.0);
        // Location of the maxima distribution sits above the sample median.
        let med = proxima_stats::descriptive::median(&times).unwrap();
        assert!(fit.gumbel.mu() > med);
    }

    #[test]
    fn auto_block_picks_candidate() {
        let times = campaign(3000, 2);
        let fit = fit_tail(&times, &BlockSpec::Auto(vec![20, 25, 50])).unwrap();
        assert!([20, 25, 50].contains(&fit.block_size));
    }

    #[test]
    fn auto_block_falls_back_on_small_campaign() {
        // 250 runs: the 30-maxima requirement is unmet for all candidates,
        // so the fallback picks the largest size leaving ≥ 10 maxima (25
        // blocks of 10 maxima each → 25), or n/10 if no candidate fits.
        let times = campaign(250, 3);
        let fit = fit_tail(&times, &BlockSpec::Auto(vec![20, 25, 50, 100])).unwrap();
        assert_eq!(fit.block_size, 25);
        // And for a campaign where no candidate fits at all:
        let tiny = campaign(150, 9);
        let fit2 = fit_tail(&tiny, &BlockSpec::Auto(vec![50, 100])).unwrap();
        assert_eq!(fit2.block_size, 15);
    }

    #[test]
    fn gev_diagnostic_near_zero_shape() {
        let times = campaign(4000, 4);
        let fit = fit_tail(&times, &BlockSpec::Fixed(50)).unwrap();
        let gev = fit.gev_diagnostic.expect("80 maxima support a GEV fit");
        assert!(gev.xi().abs() < 0.4, "xi={}", gev.xi());
        assert!(fit.shape_consistent(0.4));
    }

    #[test]
    fn gof_acceptable_on_clean_data() {
        let times = campaign(3000, 5);
        let fit = fit_tail(&times, &BlockSpec::Fixed(50)).unwrap();
        assert!(fit.gof.ks.passes(0.05), "ks p={}", fit.gof.ks.p_value);
    }

    #[test]
    fn pot_cross_check_agrees_on_tail_direction() {
        let times = campaign(3000, 6);
        let fit = fit_tail(&times, &BlockSpec::Fixed(50)).unwrap();
        let gpd = fit.pot_cross_check.expect("10% of 3000 runs exceed q90");
        // A bounded parent gives a non-heavy POT shape.
        assert!(gpd.xi() < 0.3, "xi={}", gpd.xi());
    }

    #[test]
    fn extrapolation_exceeds_high_watermark_region() {
        let times = campaign(3000, 7);
        let hwm = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let fit = fit_tail(&times, &BlockSpec::Fixed(50)).unwrap();
        let q = fit.gumbel.exceedance_quantile(1e-9).unwrap();
        assert!(q > hwm * 0.99, "q={q} hwm={hwm}");
    }

    #[test]
    fn too_small_campaign_errors() {
        let times = campaign(30, 8);
        assert!(fit_tail(&times, &BlockSpec::Fixed(50)).is_err());
    }
}
