//! Property-based tests for the PRNG crate.

use proptest::prelude::*;
use proxima_prng::{Mwc64, PrngKind, RandomSource, SplitMix64, XorShift64};

proptest! {
    /// `below(bound)` is always strictly below its bound, for any seed and
    /// any generator kind.
    #[test]
    fn below_respects_bound(seed in any::<u64>(), bound in 1u64..=u64::MAX, kind in 0usize..4) {
        let kinds = [PrngKind::Mwc, PrngKind::XorShift, PrngKind::SplitMix, PrngKind::WeakLcg];
        let mut rng = kinds[kind].build(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Same seed ⇒ identical stream; this is what makes simulation runs
    /// replayable.
    #[test]
    fn streams_are_seed_deterministic(seed in any::<u64>()) {
        let mut a = Mwc64::new(seed);
        let mut b = Mwc64::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `next_f64` stays in [0, 1) for every seed and every generator.
    #[test]
    fn unit_interval_everywhere(seed in any::<u64>()) {
        let mut gens: Vec<Box<dyn RandomSource>> = vec![
            Box::new(Mwc64::new(seed)),
            Box::new(XorShift64::new(seed)),
            Box::new(SplitMix64::new(seed)),
        ];
        for g in &mut gens {
            for _ in 0..64 {
                let x = g.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    /// SplitMix children are decorrelated from their parent stream.
    #[test]
    fn split_children_differ(seed in any::<u64>()) {
        let mut parent = SplitMix64::new(seed);
        let mut child = parent.split();
        let collisions = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(collisions <= 1);
    }

    /// Bounded draws cover the full range eventually (no dead residues) for
    /// small bounds.
    #[test]
    fn below_covers_small_ranges(seed in any::<u64>(), bound in 2u64..16) {
        let mut rng = Mwc64::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            seen[rng.below(bound) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "bound {bound} not covered");
    }
}
