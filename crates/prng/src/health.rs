//! Online health tests for PRNG output, in the spirit of the continuous
//! self-checks required of safety-certified hardware generators.
//!
//! A SIL3-certified PRNG (Agirre et al., DSD 2015) must demonstrate, and
//! keep demonstrating in the field, that its output is statistically sound.
//! This module implements a small battery of classical tests over a window
//! of generator output:
//!
//! * **monobit** — the fraction of one-bits is near 1/2;
//! * **runs** — the number of bit-runs matches the expectation for
//!   independent bits (Wald–Wolfowitz);
//! * **chi-square uniformity** — byte values are uniform over 0..256;
//! * **serial correlation** — adjacent words are uncorrelated.
//!
//! Each test produces a [`TestOutcome`] with its statistic and a pass flag at
//! a fixed significance level chosen so that a healthy generator passes the
//! battery with overwhelming probability on the window sizes used here.

use crate::RandomSource;

/// Outcome of a single health test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Human-readable test name.
    pub name: &'static str,
    /// The value of the test statistic.
    pub statistic: f64,
    /// Threshold against which the statistic was compared.
    pub threshold: f64,
    /// Whether the generator passed this test.
    pub passed: bool,
}

/// Report produced by [`run_battery`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Individual test outcomes.
    pub outcomes: Vec<TestOutcome>,
}

impl HealthReport {
    /// `true` if every test in the battery passed.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_prng::{health, Mwc64};
    ///
    /// let mut rng = Mwc64::new(1);
    /// assert!(health::run_battery(&mut rng, 2048).all_passed());
    /// ```
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed)
    }

    /// Names of the tests that failed.
    pub fn failures(&self) -> Vec<&'static str> {
        self.outcomes
            .iter()
            .filter(|o| !o.passed)
            .map(|o| o.name)
            .collect()
    }
}

/// Run the full health battery over `words` freshly drawn 64-bit words.
///
/// # Panics
///
/// Panics if `words < 64` — the tests are meaningless on tiny windows.
pub fn run_battery<R: RandomSource + ?Sized>(rng: &mut R, words: usize) -> HealthReport {
    assert!(words >= 64, "health battery needs at least 64 words");
    let sample: Vec<u64> = (0..words).map(|_| rng.next_u64()).collect();
    HealthReport {
        outcomes: vec![
            monobit(&sample),
            runs(&sample),
            byte_uniformity(&sample),
            serial_correlation(&sample),
        ],
    }
}

/// Monobit test: |#ones − n/2| scaled by √n should be small.
fn monobit(sample: &[u64]) -> TestOutcome {
    let n_bits = (sample.len() * 64) as f64;
    let ones: u64 = sample.iter().map(|w| w.count_ones() as u64).sum();
    // z-score of the one-bit count under Binomial(n, 1/2).
    let z = ((ones as f64) - n_bits / 2.0) / (0.5 * n_bits.sqrt());
    let threshold = 4.0; // |z| < 4 ⇒ p ≈ 6e-5 two-sided false-alarm rate
    TestOutcome {
        name: "monobit",
        statistic: z.abs(),
        threshold,
        passed: z.abs() < threshold,
    }
}

/// Wald–Wolfowitz runs test over the bit stream.
fn runs(sample: &[u64]) -> TestOutcome {
    let mut runs = 1u64;
    let mut ones = 0u64;
    let mut prev = sample[0] & 1;
    ones += prev;
    let mut first = true;
    for &w in sample {
        let start = if first { 1 } else { 0 };
        first = false;
        for i in start..64 {
            let bit = (w >> i) & 1;
            ones += bit;
            if bit != prev {
                runs += 1;
                prev = bit;
            }
        }
    }
    let n = (sample.len() * 64) as f64;
    let pi = ones as f64 / n;
    // Under independence, runs ~ Normal(2nπ(1−π)+1, …); NIST SP800-22 form.
    let expected = 2.0 * n * pi * (1.0 - pi);
    let sd = (2.0 * n).sqrt() * 2.0 * pi * (1.0 - pi);
    let z = if sd > 0.0 {
        (runs as f64 - expected) / sd
    } else {
        f64::INFINITY
    };
    let threshold = 4.0;
    TestOutcome {
        name: "runs",
        statistic: z.abs(),
        threshold,
        passed: z.abs() < threshold,
    }
}

/// Chi-square uniformity over the 256 byte values.
fn byte_uniformity(sample: &[u64]) -> TestOutcome {
    let mut counts = [0u64; 256];
    for &w in sample {
        for byte in w.to_le_bytes() {
            counts[byte as usize] += 1;
        }
    }
    let n = (sample.len() * 8) as f64;
    let expected = n / 256.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // χ²(255): mean 255, sd ≈ 22.6; 255 + 5σ ≈ 368 keeps the false-alarm
    // probability far below 1e-5.
    let threshold = 368.0;
    TestOutcome {
        name: "byte-uniformity",
        statistic: chi2,
        threshold,
        passed: chi2 < threshold,
    }
}

/// Lag-1 serial correlation between successive words (mapped to [0,1)).
fn serial_correlation(sample: &[u64]) -> TestOutcome {
    let xs: Vec<f64> = sample
        .iter()
        .map(|&w| (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
        .collect();
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let cov = xs
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / (n - 1.0);
    let rho = if var > 0.0 { cov / var } else { 1.0 };
    // Under independence, ρ̂ ~ Normal(0, 1/n) approximately.
    let z = rho * n.sqrt();
    let threshold = 4.0;
    TestOutcome {
        name: "serial-correlation",
        statistic: z.abs(),
        threshold,
        passed: z.abs() < threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mwc64, SplitMix64, WeakLcg, XorShift64};

    #[test]
    fn good_generators_pass_every_test() {
        let mut mwc = Mwc64::new(123);
        let mut xs = XorShift64::new(123);
        let mut sm = SplitMix64::new(123);
        for report in [
            run_battery(&mut mwc, 2048),
            run_battery(&mut xs, 2048),
            run_battery(&mut sm, 2048),
        ] {
            assert!(report.all_passed(), "failures: {:?}", report.failures());
        }
    }

    #[test]
    fn weak_lcg_fails_uniformity() {
        let mut weak = WeakLcg::new(1);
        let report = run_battery(&mut weak, 2048);
        assert!(
            report.failures().contains(&"byte-uniformity"),
            "expected uniformity failure, got {:?}",
            report
        );
    }

    #[test]
    fn constant_stream_fails_monobit_and_runs() {
        struct Stuck;
        impl RandomSource for Stuck {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let report = run_battery(&mut Stuck, 64);
        let failures = report.failures();
        assert!(failures.contains(&"monobit"));
    }

    #[test]
    fn alternating_bits_fail_runs() {
        struct Alternating;
        impl RandomSource for Alternating {
            fn next_u64(&mut self) -> u64 {
                0xAAAA_AAAA_AAAA_AAAA
            }
        }
        let report = run_battery(&mut Alternating, 64);
        assert!(report.failures().contains(&"runs"), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "at least 64 words")]
    fn tiny_window_panics() {
        let mut rng = Mwc64::new(1);
        let _ = run_battery(&mut rng, 8);
    }

    #[test]
    fn report_failures_empty_when_passing() {
        let mut rng = Mwc64::new(55);
        let report = run_battery(&mut rng, 1024);
        assert!(report.failures().is_empty());
    }
}
