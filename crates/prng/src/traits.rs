//! The [`RandomSource`] trait.

/// A deterministic, seedable source of randomness for modelled hardware.
///
/// Every randomized structure in the platform model (random-replacement
/// caches and TLBs, random-modulo placement hashes) draws through this trait,
/// which keeps a whole simulation run a pure function of the per-run seed —
/// the property that lets the measurement protocol of the paper ("set a new
/// seed for each experiment") be reproduced exactly.
///
/// The trait is object-safe so that platform configuration can select the
/// generator at run time (see `PrngKind::build`).
pub trait RandomSource: Send {
    /// Return the next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 raw pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Return a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire (2019): unbiased bounded integers via 128-bit multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Return a uniformly distributed `f64` in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl RandomSource for Box<dyn RandomSource> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mwc64;

    #[test]
    fn below_is_in_range() {
        let mut rng = Mwc64::new(1);
        for bound in [1u64, 2, 3, 7, 16, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        let mut rng = Mwc64::new(1);
        let _ = rng.below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Mwc64::new(2);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = Mwc64::new(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues of 8 should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Mwc64::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn boxed_source_delegates() {
        let mut direct = Mwc64::new(9);
        let mut boxed: Box<dyn RandomSource> = Box::new(Mwc64::new(9));
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), boxed.next_u64());
        }
    }
}
