//! Xorshift generator, an ablation alternative to MWC.

use crate::{RandomSource, SplitMix64};

/// A 64-bit xorshift* generator (Marsaglia 2003; Vigna's `xorshift64*`
/// multiplier finish).
///
/// Hardware xorshift implementations were evaluated alongside MWC for
/// MBPTA-compliant processors; this one exists so experiments can show that
/// MBPTA results are insensitive to the choice between two good generators
/// (while being sensitive to a bad one, see [`crate::WeakLcg`]).
///
/// # Examples
///
/// ```
/// use proxima_prng::{XorShift64, RandomSource};
///
/// let mut rng = XorShift64::new(5);
/// assert_ne!(rng.next_u64(), rng.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed; a zero state (the xorshift fixed
    /// point) is avoided by conditioning through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut s = SplitMix64::new(seed);
        let mut state = s.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift64 { state }
    }
}

impl RandomSource for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health;

    #[test]
    fn never_zero_state() {
        let mut rng = XorShift64::new(0);
        for _ in 0..10_000 {
            rng.next_u64();
            assert_ne!(rng.state, 0);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn passes_health_battery() {
        let mut rng = XorShift64::new(11);
        let report = health::run_battery(&mut rng, 4096);
        assert!(report.all_passed(), "{report:?}");
    }
}
