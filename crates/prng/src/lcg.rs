//! A deliberately weak generator for the PRNG-quality ablation.

use crate::RandomSource;

/// A deliberately weak 16-bit-state linear congruential generator.
///
/// Experiment **A6** of the reproduction studies what happens to MBPTA when
/// the hardware randomization is *poor*: random placement driven by a
/// short-period, low-entropy generator leaves layout effects partially
/// unrandomized, which shows up as i.i.d. test failures and optimistic tails.
/// `WeakLcg` has a period of at most 2^16 and emits its state bits directly
/// (including the notoriously regular low bits), which is exactly the kind of
/// generator IEC-61508-style certification exists to reject.
///
/// Do **not** use this generator for anything except demonstrating failure.
///
/// # Examples
///
/// ```
/// use proxima_prng::{WeakLcg, RandomSource};
///
/// let mut rng = WeakLcg::new(1);
/// let _ = rng.next_u64(); // low-quality bits, short period
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeakLcg {
    state: u16,
}

impl WeakLcg {
    /// Create the weak generator from a seed (only the low 16 bits are used).
    pub fn new(seed: u64) -> Self {
        WeakLcg {
            state: (seed as u16) | 1,
        }
    }
}

impl RandomSource for WeakLcg {
    fn next_u64(&mut self) -> u64 {
        // Numerical-Recipes-style constants truncated to 16 bits: full of
        // lattice structure, tiny period.
        self.state = self.state.wrapping_mul(25173).wrapping_add(13849);
        let s = self.state as u64;
        // Replicate the 16-bit state across the word so that consumers of
        // high bits see the same weakness as consumers of low bits.
        s | (s << 16) | (s << 32) | (s << 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health;

    #[test]
    fn short_period() {
        let mut rng = WeakLcg::new(3);
        let first = rng.next_u64();
        let mut period = 1u32;
        while rng.next_u64() != first {
            period += 1;
            assert!(period <= 1 << 16, "period should be at most 2^16");
        }
        assert!(period <= 1 << 16);
    }

    #[test]
    fn fails_health_battery() {
        // The whole point of WeakLcg: a health battery a real SIL3 generator
        // must pass rejects it.
        let mut rng = WeakLcg::new(5);
        let report = health::run_battery(&mut rng, 4096);
        assert!(
            !report.all_passed(),
            "WeakLcg unexpectedly passed: {report:?}"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = WeakLcg::new(9);
        let mut b = WeakLcg::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
