//! SplitMix64: seed expansion and stream splitting.

use crate::RandomSource;

/// The SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Used here primarily as a *seeder*: it turns small, structured seeds
/// (0, 1, 2, …) into well-mixed 64-bit states for the main generators, and
/// derives independent per-resource streams (IL1 placement, DL1 replacement,
/// …) from a single per-run seed via [`SplitMix64::split`].
///
/// # Examples
///
/// ```
/// use proxima_prng::{SplitMix64, RandomSource};
///
/// let mut seeder = SplitMix64::new(3);
/// let il1_stream = seeder.split();
/// let dl1_stream = seeder.split();
/// assert_ne!(il1_stream.clone().next_u64(), dl1_stream.clone().next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a raw seed (no further conditioning needed —
    /// SplitMix is itself the conditioner).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child generator, advancing this one.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health;

    #[test]
    fn known_vector() {
        // Reference value for seed 0 from the published SplitMix64 algorithm.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn split_streams_differ() {
        let mut parent = SplitMix64::new(10);
        let mut a = parent.split();
        let mut b = parent.split();
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn passes_health_battery() {
        let mut rng = SplitMix64::new(77);
        let report = health::run_battery(&mut rng, 4096);
        assert!(report.all_passed(), "{report:?}");
    }

    #[test]
    fn sequential_seeds_decorrelated() {
        let x = SplitMix64::new(100).next_u64();
        let y = SplitMix64::new(101).next_u64();
        let differing = (x ^ y).count_ones();
        assert!(differing >= 16, "only {differing} differing bits");
    }
}
