//! SplitMix64: seed expansion and stream splitting.

use crate::RandomSource;

/// The SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Used here primarily as a *seeder*: it turns small, structured seeds
/// (0, 1, 2, …) into well-mixed 64-bit states for the main generators, and
/// derives independent per-resource streams (IL1 placement, DL1 replacement,
/// …) from a single per-run seed via [`SplitMix64::split`].
///
/// # Examples
///
/// ```
/// use proxima_prng::{SplitMix64, RandomSource};
///
/// let mut seeder = SplitMix64::new(3);
/// let il1_stream = seeder.split();
/// let dl1_stream = seeder.split();
/// assert_ne!(il1_stream.clone().next_u64(), dl1_stream.clone().next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a raw seed (no further conditioning needed —
    /// SplitMix is itself the conditioner).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent child generator, advancing this one.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// O(1) random access into the stream of `SplitMix64::new(master)`:
    /// `stream_seed(master, i)` equals the `i`-th call to `next_u64()` on
    /// that generator, without generating the previous `i` values.
    ///
    /// This is what makes sharded measurement campaigns deterministic: any
    /// shard can jump straight to its slice of the per-run seed stream, so
    /// the merged seeds are independent of how the runs were partitioned.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_prng::{RandomSource, SplitMix64};
    ///
    /// let mut serial = SplitMix64::new(42);
    /// for i in 0..10 {
    ///     assert_eq!(serial.next_u64(), SplitMix64::stream_seed(42, i));
    /// }
    /// ```
    pub fn stream_seed(master: u64, index: u64) -> u64 {
        // State after k calls is master + k·γ; jump there directly.
        SplitMix64::new(master.wrapping_add(index.wrapping_mul(GAMMA))).next_u64()
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health;

    #[test]
    fn known_vector() {
        // Reference value for seed 0 from the published SplitMix64 algorithm.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn split_streams_differ() {
        let mut parent = SplitMix64::new(10);
        let mut a = parent.split();
        let mut b = parent.split();
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn passes_health_battery() {
        let mut rng = SplitMix64::new(77);
        let report = health::run_battery(&mut rng, 4096);
        assert!(report.all_passed(), "{report:?}");
    }

    #[test]
    fn stream_seed_matches_serial_generation() {
        let mut serial = SplitMix64::new(0xDEAD_BEEF);
        let serial_run: Vec<u64> = (0..100).map(|_| serial.next_u64()).collect();
        // Visit the indices in a scrambled order, as parallel shards would.
        for i in (0..100).rev() {
            assert_eq!(
                SplitMix64::stream_seed(0xDEAD_BEEF, i),
                serial_run[i as usize]
            );
        }
    }

    #[test]
    fn sequential_seeds_decorrelated() {
        let x = SplitMix64::new(100).next_u64();
        let y = SplitMix64::new(101).next_u64();
        let differing = (x ^ y).count_ones();
        assert!(differing >= 16, "only {differing} differing bits");
    }
}
