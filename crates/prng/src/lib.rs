//! Pseudo-random number generators for probabilistic timing analysis.
//!
//! MBPTA-compliant hardware (Fernandez et al., DATE 2017) randomizes the
//! timing behaviour of jittery resources — cache placement, cache and TLB
//! replacement — using a pseudo-random number generator that is good enough
//! for the probabilistic argument to hold. The platform modelled by this
//! workspace follows the PRNG design direction of Agirre et al. (DSD 2015),
//! which certified a **multiply-with-carry** generator family against
//! IEC-61508 SIL3 requirements.
//!
//! This crate provides:
//!
//! * [`RandomSource`] — the trait through which every modelled hardware
//!   structure draws randomness, so a simulation run is a pure function of
//!   its seed;
//! * [`Mwc64`] — the default multiply-with-carry generator (SIL3-style);
//! * [`SplitMix64`] — a seeder/stream-splitter used to derive independent
//!   per-resource streams from one per-run seed;
//! * [`XorShift64`] — an alternative generator used in ablation studies;
//! * [`WeakLcg`] — a deliberately poor generator used by experiment A6 to
//!   demonstrate the impact of randomization quality on MBPTA;
//! * [`health`] — online health tests (monobit, runs, chi-square uniformity,
//!   serial correlation) in the spirit of the continuous self-checks that a
//!   safety-certified hardware PRNG must run.
//!
//! # Examples
//!
//! ```
//! use proxima_prng::{Mwc64, RandomSource};
//!
//! let mut rng = Mwc64::new(0xC0FFEE);
//! let way = rng.below(4); // pick a victim way in a 4-way cache
//! assert!(way < 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lcg;
mod mwc;
mod splitmix;
mod traits;
mod xorshift;

pub mod health;

pub use lcg::WeakLcg;
pub use mwc::Mwc64;
pub use splitmix::SplitMix64;
pub use traits::RandomSource;
pub use xorshift::XorShift64;

/// Kind of generator, used by experiment configuration to select the PRNG
/// backing the randomized hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrngKind {
    /// Multiply-with-carry, the SIL3-style default.
    #[default]
    Mwc,
    /// Xorshift, an alternative of comparable quality.
    XorShift,
    /// SplitMix, used mostly for seeding.
    SplitMix,
    /// A deliberately weak linear congruential generator (ablation A6).
    WeakLcg,
}

impl PrngKind {
    /// Instantiate a boxed generator of this kind from `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_prng::{PrngKind, RandomSource};
    ///
    /// let mut rng = PrngKind::Mwc.build(42);
    /// let _bits = rng.next_u64();
    /// ```
    pub fn build(self, seed: u64) -> Box<dyn RandomSource> {
        match self {
            PrngKind::Mwc => Box::new(Mwc64::new(seed)),
            PrngKind::XorShift => Box::new(XorShift64::new(seed)),
            PrngKind::SplitMix => Box::new(SplitMix64::new(seed)),
            PrngKind::WeakLcg => Box::new(WeakLcg::new(seed)),
        }
    }
}

impl std::fmt::Display for PrngKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PrngKind::Mwc => "mwc",
            PrngKind::XorShift => "xorshift",
            PrngKind::SplitMix => "splitmix",
            PrngKind::WeakLcg => "weak-lcg",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_distinct_streams() {
        let kinds = [
            PrngKind::Mwc,
            PrngKind::XorShift,
            PrngKind::SplitMix,
            PrngKind::WeakLcg,
        ];
        let firsts: Vec<u64> = kinds.iter().map(|k| k.build(7).next_u64()).collect();
        for i in 0..firsts.len() {
            for j in (i + 1)..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "kinds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PrngKind::Mwc.to_string(), "mwc");
        assert_eq!(PrngKind::WeakLcg.to_string(), "weak-lcg");
    }

    #[test]
    fn default_kind_is_mwc() {
        assert_eq!(PrngKind::default(), PrngKind::Mwc);
    }
}
