//! Multiply-with-carry generator (SIL3-style default).

use crate::{RandomSource, SplitMix64};

/// A 64-bit multiply-with-carry (MWC) pseudo-random number generator.
///
/// Agirre et al. (DSD 2015) certified multiply-with-carry generators against
/// IEC-61508 SIL3 for use inside MBPTA-compliant hardware: MWC needs only an
/// integer multiplier and an adder, has a period long enough for any
/// measurement campaign, and passes the statistical batteries that the
/// probabilistic argument relies on. This implementation is the classic
/// `x_{n+1} = A * x_n + c` lag-1 MWC with a 64-bit state word and a 64-bit
/// carry, i.e. a 128-bit state, equivalent to the well-studied MWC128 family.
///
/// The multiplier `A = 0xFFEB_B71D_94FC_DAF9` makes `A * 2^64 - 1` a safe
/// prime, giving a period of about 2^127.
///
/// # Examples
///
/// ```
/// use proxima_prng::{Mwc64, RandomSource};
///
/// let mut a = Mwc64::new(1234);
/// let mut b = Mwc64::new(1234);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic per seed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mwc64 {
    x: u64,
    c: u64,
}

/// MWC multiplier: `A * 2^64 - 1` is a safe prime (period ≈ 2^127).
const MWC_A: u64 = 0xFFEB_B71D_94FC_DAF9;

impl Mwc64 {
    /// Create a generator from a seed.
    ///
    /// The raw seed is expanded through [`SplitMix64`] so that nearby seeds
    /// (0, 1, 2, …, as produced by a campaign loop) still yield well-separated
    /// states; the carry is kept inside the valid `1..A-1` range.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_prng::Mwc64;
    ///
    /// let _rng = Mwc64::new(0);
    /// ```
    pub fn new(seed: u64) -> Self {
        let mut seeder = SplitMix64::new(seed);
        let x = seeder.next_u64();
        // Carry must satisfy 0 < c < A - 1 for full period.
        let c = 1 + seeder.next_u64() % (MWC_A - 2);
        Mwc64 { x, c }
    }

    /// The raw `(state, carry)` pair, exposed for health monitoring.
    pub fn state(&self) -> (u64, u64) {
        (self.x, self.c)
    }
}

impl RandomSource for Mwc64 {
    fn next_u64(&mut self) -> u64 {
        let t = (self.x as u128) * (MWC_A as u128) + (self.c as u128);
        self.x = t as u64;
        self.c = (t >> 64) as u64;
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Mwc64::new(99);
        let mut b = Mwc64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mwc64::new(1);
        let mut b = Mwc64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn nearby_seeds_are_decorrelated() {
        // Campaign loops seed runs with 0, 1, 2, ...; the SplitMix expansion
        // must keep those streams unrelated.
        let mut a = Mwc64::new(0);
        let mut b = Mwc64::new(1);
        let xor_popcount: u32 = (0..32)
            .map(|_| (a.next_u64() ^ b.next_u64()).count_ones())
            .sum();
        // Expected ~32*32 = 1024 differing bits; allow a wide band.
        assert!(
            (700..1350).contains(&xor_popcount),
            "popcount {xor_popcount}"
        );
    }

    #[test]
    fn carry_stays_in_valid_range() {
        let mut rng = Mwc64::new(7);
        for _ in 0..10_000 {
            rng.next_u64();
            let (_, c) = rng.state();
            assert!(c < MWC_A);
        }
    }

    #[test]
    fn passes_health_battery() {
        let mut rng = Mwc64::new(2024);
        let report = health::run_battery(&mut rng, 4096);
        assert!(report.all_passed(), "{report:?}");
    }

    #[test]
    fn no_short_cycle() {
        let mut rng = Mwc64::new(5);
        let first = rng.next_u64();
        assert!(
            (0..100_000).all(|_| rng.next_u64() != first || rng.state().1 != 0),
            "state should not revisit the first output with zero carry"
        );
    }
}
