//! Floating-point unit latency model.

/// Timing-relevant class of the operand values of an FDIV/FSQRT.
///
/// On the real LEON3 FPU the iteration count of divide and square root
/// depends on the operand values. The trace generator tags each such
/// instruction with the class its operands fall into; the FPU model maps
/// the class to a latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ValueClass {
    /// Early-exit operands (e.g. exact powers of two): best case.
    Fast,
    /// Typical operands.
    #[default]
    Typical,
    /// Full-iteration operands: worst case.
    Worst,
}

/// Whether FDIV/FSQRT run with their natural value-dependent latency or are
/// forced to worst-case latency.
///
/// The paper's platform change: *"for MBPTA we changed the FPU so that
/// during the analysis phase, both operations exhibit a fixed latency that
/// matches their highest latency"* — making the FPU jitterless at analysis
/// so its analysis-time impact upper-bounds operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FpuLatencyMode {
    /// Value-dependent latency (the DET/operation behaviour).
    Variable,
    /// Fixed worst-case latency (the MBPTA analysis-mode behaviour).
    #[default]
    ForcedWorst,
}

/// The FPU latency model.
///
/// Latencies are representative of LEON3-class FPUs (GRFPU): FADD/FMUL are
/// pipelined short-latency ops; FDIV takes ~15–25 cycles and FSQRT ~22–35
/// depending on operands.
///
/// # Examples
///
/// ```
/// use proxima_sim::{FpuLatencyMode, FpuModel, ValueClass};
///
/// let analysis = FpuModel::new(FpuLatencyMode::ForcedWorst);
/// let operation = FpuModel::new(FpuLatencyMode::Variable);
/// // Analysis-mode latency upper-bounds every operation-mode latency.
/// assert!(analysis.div_latency(ValueClass::Fast) >= operation.div_latency(ValueClass::Worst));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpuModel {
    mode: FpuLatencyMode,
}

/// FDIV latency by value class (cycles).
const DIV_LATENCY: [u64; 3] = [15, 18, 25];
/// FSQRT latency by value class (cycles).
const SQRT_LATENCY: [u64; 3] = [22, 26, 35];
/// FADD/FSUB latency (cycles, fixed).
const ADD_LATENCY: u64 = 4;
/// FMUL latency (cycles, fixed).
const MUL_LATENCY: u64 = 4;

impl FpuModel {
    /// Create the FPU model in the given latency mode.
    pub fn new(mode: FpuLatencyMode) -> Self {
        FpuModel { mode }
    }

    /// The configured latency mode.
    pub fn mode(&self) -> FpuLatencyMode {
        self.mode
    }

    /// Latency of an FADD/FSUB (always fixed — jitterless resource).
    pub fn add_latency(&self) -> u64 {
        ADD_LATENCY
    }

    /// Latency of an FMUL (always fixed — jitterless resource).
    pub fn mul_latency(&self) -> u64 {
        MUL_LATENCY
    }

    /// Latency of an FDIV with operands of the given class.
    pub fn div_latency(&self, class: ValueClass) -> u64 {
        match self.mode {
            FpuLatencyMode::ForcedWorst => DIV_LATENCY[2],
            FpuLatencyMode::Variable => DIV_LATENCY[class as usize],
        }
    }

    /// Latency of an FSQRT with operands of the given class.
    pub fn sqrt_latency(&self, class: ValueClass) -> u64 {
        match self.mode {
            FpuLatencyMode::ForcedWorst => SQRT_LATENCY[2],
            FpuLatencyMode::Variable => SQRT_LATENCY[class as usize],
        }
    }
}

impl Default for FpuModel {
    fn default() -> Self {
        FpuModel::new(FpuLatencyMode::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_worst_is_constant() {
        let fpu = FpuModel::new(FpuLatencyMode::ForcedWorst);
        let classes = [ValueClass::Fast, ValueClass::Typical, ValueClass::Worst];
        for c in classes {
            assert_eq!(fpu.div_latency(c), DIV_LATENCY[2]);
            assert_eq!(fpu.sqrt_latency(c), SQRT_LATENCY[2]);
        }
    }

    #[test]
    fn variable_latency_orders_by_class() {
        let fpu = FpuModel::new(FpuLatencyMode::Variable);
        assert!(fpu.div_latency(ValueClass::Fast) < fpu.div_latency(ValueClass::Typical));
        assert!(fpu.div_latency(ValueClass::Typical) < fpu.div_latency(ValueClass::Worst));
        assert!(fpu.sqrt_latency(ValueClass::Fast) < fpu.sqrt_latency(ValueClass::Worst));
    }

    #[test]
    fn forced_worst_upper_bounds_variable() {
        let analysis = FpuModel::new(FpuLatencyMode::ForcedWorst);
        let operation = FpuModel::new(FpuLatencyMode::Variable);
        for c in [ValueClass::Fast, ValueClass::Typical, ValueClass::Worst] {
            assert!(analysis.div_latency(c) >= operation.div_latency(c));
            assert!(analysis.sqrt_latency(c) >= operation.sqrt_latency(c));
        }
    }

    #[test]
    fn pipelined_ops_fixed() {
        let fpu = FpuModel::default();
        assert_eq!(fpu.add_latency(), 4);
        assert_eq!(fpu.mul_latency(), 4);
    }

    #[test]
    fn sqrt_slower_than_div() {
        let fpu = FpuModel::new(FpuLatencyMode::Variable);
        for c in [ValueClass::Fast, ValueClass::Typical, ValueClass::Worst] {
            assert!(fpu.sqrt_latency(c) > fpu.div_latency(c));
        }
    }
}
