//! Cache replacement (victim selection) policies.

use proxima_prng::RandomSource;

/// How a victim way is chosen on a miss in a full set.
///
/// * [`ReplacementPolicy::Lru`] — least-recently-used: deterministic and
///   history-sensitive; the worst-case access pattern is pathological and
///   hard to force in a measurement protocol.
/// * [`ReplacementPolicy::Random`] — the MBPTA-compliant choice (DATE
///   2013): each eviction picks a uniformly random way from the platform
///   PRNG, so miss behaviour has a distribution that measurements sample.
/// * [`ReplacementPolicy::RoundRobin`] — FIFO-like pointer per set, the
///   LEON3's native default; deterministic, kept for baseline studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least recently used (deterministic).
    Lru,
    /// Uniform random victim (MBPTA-compliant).
    #[default]
    Random,
    /// Per-set round-robin pointer (deterministic).
    RoundRobin,
}

impl ReplacementPolicy {
    /// `true` if victim selection is randomized.
    pub fn is_randomized(self) -> bool {
        matches!(self, ReplacementPolicy::Random)
    }

    /// Choose a victim way among `ways` given the per-way LRU stamps, the
    /// set's round-robin pointer and the platform RNG.
    pub(crate) fn victim<R: RandomSource + ?Sized>(
        self,
        stamps: &[u64],
        rr_ptr: &mut usize,
        rng: &mut R,
    ) -> usize {
        let ways = stamps.len();
        debug_assert!(ways > 0);
        match self {
            ReplacementPolicy::Lru => stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| s)
                .map(|(i, _)| i)
                .expect("at least one way"),
            ReplacementPolicy::Random => rng.below(ways as u64) as usize,
            ReplacementPolicy::RoundRobin => {
                let v = *rr_ptr % ways;
                *rr_ptr = (v + 1) % ways;
                v
            }
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Random => "random",
            ReplacementPolicy::RoundRobin => "round-robin",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_prng::Mwc64;

    #[test]
    fn lru_picks_oldest_stamp() {
        let mut rng = Mwc64::new(1);
        let mut ptr = 0;
        let stamps = vec![10, 3, 7, 9];
        let v = ReplacementPolicy::Lru.victim(&stamps, &mut ptr, &mut rng);
        assert_eq!(v, 1);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = Mwc64::new(1);
        let mut ptr = 0;
        let stamps = vec![0; 4];
        let seq: Vec<usize> = (0..8)
            .map(|_| ReplacementPolicy::RoundRobin.victim(&stamps, &mut ptr, &mut rng))
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn random_covers_all_ways() {
        let mut rng = Mwc64::new(2);
        let mut ptr = 0;
        let stamps = vec![0; 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = ReplacementPolicy::Random.victim(&stamps, &mut ptr, &mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let stamps = vec![0; 8];
        let run = |seed| {
            let mut rng = Mwc64::new(seed);
            let mut ptr = 0;
            (0..32)
                .map(|_| ReplacementPolicy::Random.victim(&stamps, &mut ptr, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn randomization_flags() {
        assert!(ReplacementPolicy::Random.is_randomized());
        assert!(!ReplacementPolicy::Lru.is_randomized());
        assert!(!ReplacementPolicy::RoundRobin.is_randomized());
    }
}
