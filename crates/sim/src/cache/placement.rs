//! Cache placement (index-generation) policies.

use proxima_prng::{RandomSource, SplitMix64};

/// How a line address is mapped to a cache set.
///
/// * [`PlacementPolicy::Modulo`] — the conventional layout-sensitive
///   mapping: set = line mod n_sets. The memory position of code/data
///   determines which objects conflict, and the worst layout is practically
///   impossible for a measurement protocol to guarantee it has observed.
/// * [`PlacementPolicy::RandomModulo`] — the DAC 2016 design used by the
///   paper: the set index is the modulo index *rotated by a random amount
///   that depends on the upper address bits and the per-run seed*.
///   Consecutive lines within one alignment window still map to distinct
///   sets (spatial locality is preserved and intra-window conflicts remain
///   impossible), but whether two different windows collide is a fresh
///   random event each run — the property MBPTA needs.
/// * [`PlacementPolicy::HashRandom`] — fully hashed random placement
///   (ablation A1): every line gets an independent random set, destroying
///   the sequential-line guarantee. MBPTA-compliant but with worse average
///   behaviour for sequential code; included to reproduce the design
///   argument for random modulo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Conventional modulo placement (deterministic, layout-sensitive).
    Modulo,
    /// Random modulo placement (DAC 2016) — the paper's choice.
    #[default]
    RandomModulo,
    /// Parametric hash-based random placement (ablation).
    HashRandom,
}

impl PlacementPolicy {
    /// `true` if the policy randomizes placement across runs (and hence is
    /// MBPTA-compliant for the placement jitter source).
    pub fn is_randomized(self) -> bool {
        !matches!(self, PlacementPolicy::Modulo)
    }

    /// Map `line` (a cache-line index) to a set in `0..n_sets`, given the
    /// per-run placement `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_sets` is not a power of two (hardware index bits).
    pub fn set_index(self, line: u64, n_sets: u64, seed: u64) -> u64 {
        assert!(n_sets.is_power_of_two(), "n_sets must be a power of two");
        let idx = line & (n_sets - 1);
        let window = line / n_sets; // upper address bits
        match self {
            PlacementPolicy::Modulo => idx,
            PlacementPolicy::RandomModulo => {
                // Rotate the window's lines by a window-specific random
                // offset: lines within a window keep distinct sets.
                let rot = hash64(seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & (n_sets - 1);
                (idx + rot) & (n_sets - 1)
            }
            PlacementPolicy::HashRandom => {
                // Independent random set per line.
                hash64(seed ^ line.wrapping_mul(0xD6E8_FEB8_6659_FD93)) & (n_sets - 1)
            }
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlacementPolicy::Modulo => "modulo",
            PlacementPolicy::RandomModulo => "random-modulo",
            PlacementPolicy::HashRandom => "hash-random",
        })
    }
}

/// One round of SplitMix64 output as a stateless 64-bit mixer.
fn hash64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N_SETS: u64 = 128;

    #[test]
    fn modulo_matches_low_bits() {
        for line in [0u64, 1, 127, 128, 129, 100_000] {
            assert_eq!(
                PlacementPolicy::Modulo.set_index(line, N_SETS, 99),
                line % N_SETS
            );
        }
    }

    #[test]
    fn modulo_ignores_seed() {
        for seed in 0..10 {
            assert_eq!(
                PlacementPolicy::Modulo.set_index(1234, N_SETS, seed),
                1234 % N_SETS
            );
        }
    }

    #[test]
    fn random_modulo_preserves_intra_window_distinctness() {
        // All lines in one window must map to distinct sets, any seed.
        for seed in [0u64, 1, 7, 0xDEAD] {
            for window in [0u64, 3, 17] {
                let mut seen = vec![false; N_SETS as usize];
                for i in 0..N_SETS {
                    let line = window * N_SETS + i;
                    let s = PlacementPolicy::RandomModulo.set_index(line, N_SETS, seed) as usize;
                    assert!(!seen[s], "collision within window {window} at seed {seed}");
                    seen[s] = true;
                }
            }
        }
    }

    #[test]
    fn random_modulo_sequential_lines_stay_adjacent() {
        // Consecutive lines within a window map to consecutive (mod n) sets:
        // spatial locality in the index is preserved.
        let seed = 42;
        for i in 0..N_SETS - 1 {
            let a = PlacementPolicy::RandomModulo.set_index(i, N_SETS, seed);
            let b = PlacementPolicy::RandomModulo.set_index(i + 1, N_SETS, seed);
            assert_eq!((a + 1) & (N_SETS - 1), b);
        }
    }

    #[test]
    fn random_modulo_varies_with_seed() {
        let line = 5 * N_SETS + 3;
        let sets: std::collections::HashSet<u64> = (0..64)
            .map(|seed| PlacementPolicy::RandomModulo.set_index(line, N_SETS, seed))
            .collect();
        assert!(
            sets.len() > 16,
            "placement should vary across seeds, got {}",
            sets.len()
        );
    }

    #[test]
    fn random_modulo_windows_decorrelated() {
        // Two windows that conflict under modulo placement should conflict
        // only sometimes under random modulo.
        let line_a = 3; // window 0
        let line_b = N_SETS + 3; // window 1, same modulo index
        let mut collisions = 0;
        let trials = 1000;
        for seed in 0..trials {
            let sa = PlacementPolicy::RandomModulo.set_index(line_a, N_SETS, seed);
            let sb = PlacementPolicy::RandomModulo.set_index(line_b, N_SETS, seed);
            if sa == sb {
                collisions += 1;
            }
        }
        // Expected collision rate 1/n_sets ≈ 0.8%; allow generous band.
        assert!(collisions < trials / 20, "collisions={collisions}");
        assert!(collisions >= 1, "windows should collide occasionally");
    }

    #[test]
    fn hash_random_spreads_uniformly() {
        let mut counts = vec![0u32; N_SETS as usize];
        for line in 0..50_000u64 {
            let s = PlacementPolicy::HashRandom.set_index(line, N_SETS, 7);
            counts[s as usize] += 1;
        }
        let expected = 50_000.0 / N_SETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // χ²(127): mean 127, sd ≈ 16; anything below 250 is comfortably uniform.
        assert!(chi2 < 250.0, "chi2={chi2}");
    }

    #[test]
    fn hash_random_breaks_sequential_guarantee() {
        // Unlike random modulo, hashed placement lets two lines of the same
        // window collide for some seed.
        let mut found = false;
        'outer: for seed in 0..200u64 {
            for i in 0..N_SETS {
                for j in (i + 1)..N_SETS {
                    if PlacementPolicy::HashRandom.set_index(i, N_SETS, seed)
                        == PlacementPolicy::HashRandom.set_index(j, N_SETS, seed)
                    {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            found,
            "hash placement should produce intra-window collisions"
        );
    }

    #[test]
    fn randomization_flags() {
        assert!(!PlacementPolicy::Modulo.is_randomized());
        assert!(PlacementPolicy::RandomModulo.is_randomized());
        assert!(PlacementPolicy::HashRandom.is_randomized());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        PlacementPolicy::Modulo.set_index(0, 100, 0);
    }
}
