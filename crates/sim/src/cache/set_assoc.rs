//! The set-associative cache structure.

use super::{PlacementPolicy, ReplacementPolicy};
use crate::addr::Addr;
use proxima_prng::RandomSource;

/// Geometry and policies of one cache.
///
/// The paper's IL1 and DL1 are 16 KB, 4-way, and this crate defaults to
/// 32-byte lines (the LEON3 line size), giving 128 sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u64,
    /// Line size in bytes.
    pub line_size: u64,
    /// Index-generation policy.
    pub placement: PlacementPolicy,
    /// Victim-selection policy.
    pub replacement: ReplacementPolicy,
    /// Whether a store miss allocates the line (`false` for the LEON3 DL1,
    /// which is write-through **no-write-allocate**).
    pub allocate_on_write: bool,
}

impl CacheConfig {
    /// The paper's 16 KB 4-way L1 geometry with the given policies.
    pub fn leon3_l1(placement: PlacementPolicy, replacement: ReplacementPolicy) -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_size: 32,
            placement,
            replacement,
            allocate_on_write: false,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (not power-of-two sets).
    pub fn n_sets(&self) -> u64 {
        let sets = self.size_bytes / (self.ways * self.line_size);
        assert!(
            sets.is_power_of_two() && sets > 0,
            "cache geometry must give a power-of-two set count, got {sets}"
        );
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::leon3_l1(PlacementPolicy::default(), ReplacementPolicy::default())
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `allocated` says whether it was brought in.
    Miss {
        /// Whether the line was allocated into the cache.
        allocated: bool,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 if there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with pluggable placement and replacement.
///
/// # Examples
///
/// ```
/// use proxima_sim::{Addr, CacheConfig, PlacementPolicy, ReplacementPolicy, SetAssocCache};
/// use proxima_prng::Mwc64;
///
/// let cfg = CacheConfig::leon3_l1(PlacementPolicy::Modulo, ReplacementPolicy::Lru);
/// let mut cache = SetAssocCache::new(cfg);
/// let mut rng = Mwc64::new(0);
/// cache.reseed(0);
/// assert!(!cache.access(Addr::new(0x1000), false, &mut rng).is_hit()); // cold miss
/// assert!(cache.access(Addr::new(0x1000), false, &mut rng).is_hit());  // now present
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    n_sets: u64,
    /// `tags[set * ways + way]`: Some(line) if valid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    /// Per-set round-robin pointers.
    rr_ptrs: Vec<usize>,
    /// Monotonic access counter for LRU stamping.
    tick: u64,
    /// Per-run placement seed (set by [`SetAssocCache::reseed`]).
    placement_seed: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.n_sets();
        let slots = (n_sets * config.ways) as usize;
        SetAssocCache {
            config,
            n_sets,
            tags: vec![None; slots],
            stamps: vec![0; slots],
            rr_ptrs: vec![0; n_sets as usize],
            tick: 0,
            placement_seed: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit/miss counters accumulated since the last [`SetAssocCache::flush`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidate every line and reset statistics (the per-run cache flush
    /// of the measurement protocol).
    pub fn flush(&mut self) {
        self.tags.fill(None);
        self.stamps.fill(0);
        self.rr_ptrs.fill(0);
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Install the per-run placement seed (a fresh seed per run is the
    /// "set a new seed for each experiment" step of the paper's protocol).
    pub fn reseed(&mut self, placement_seed: u64) {
        self.placement_seed = placement_seed;
    }

    /// Access the line containing `addr`.
    ///
    /// `is_write` selects store semantics: with
    /// [`CacheConfig::allocate_on_write`] false (write-through
    /// no-write-allocate), a store miss does not install the line.
    /// `rng` supplies victim-way randomness for random replacement.
    pub fn access<R: RandomSource + ?Sized>(
        &mut self,
        addr: Addr,
        is_write: bool,
        rng: &mut R,
    ) -> AccessOutcome {
        let line = addr.line(self.config.line_size);
        self.access_line(line, is_write, rng)
    }

    /// Access by pre-computed line index (used by the pipeline fast path).
    pub fn access_line<R: RandomSource + ?Sized>(
        &mut self,
        line: u64,
        is_write: bool,
        rng: &mut R,
    ) -> AccessOutcome {
        let set = self
            .config
            .placement
            .set_index(line, self.n_sets, self.placement_seed);
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        self.tick += 1;

        // Lookup.
        for way in 0..ways {
            if self.tags[base + way] == Some(line) {
                self.stamps[base + way] = self.tick;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        self.stats.misses += 1;

        let allocate = !is_write || self.config.allocate_on_write;
        if allocate {
            // Prefer an invalid way; otherwise consult the policy.
            let victim = (0..ways)
                .find(|&w| self.tags[base + w].is_none())
                .unwrap_or_else(|| {
                    self.config.replacement.victim(
                        &self.stamps[base..base + ways],
                        &mut self.rr_ptrs[set as usize],
                        rng,
                    )
                });
            self.tags[base + victim] = Some(line);
            self.stamps[base + victim] = self.tick;
        }
        AccessOutcome::Miss {
            allocated: allocate,
        }
    }

    /// `true` if the line containing `addr` is currently cached (no state
    /// change, no statistics impact).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = addr.line(self.config.line_size);
        let set = self
            .config
            .placement
            .set_index(line, self.n_sets, self.placement_seed);
        let base = (set * self.config.ways) as usize;
        (0..self.config.ways as usize).any(|w| self.tags[base + w] == Some(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_prng::Mwc64;

    fn det_cache() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::leon3_l1(
            PlacementPolicy::Modulo,
            ReplacementPolicy::Lru,
        ))
    }

    #[test]
    fn geometry_of_leon3_l1() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.n_sets(), 128);
        assert_eq!(cfg.size_bytes, 16 * 1024);
        assert_eq!(cfg.ways, 4);
        assert!(!cfg.allocate_on_write);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        let a = Addr::new(0x4000);
        assert!(!c.access(a, false, &mut rng).is_hit());
        assert!(c.access(a, false, &mut rng).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        c.access(Addr::new(0x4000), false, &mut rng);
        assert!(c.access(Addr::new(0x401F), false, &mut rng).is_hit());
        assert!(!c.access(Addr::new(0x4020), false, &mut rng).is_hit());
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        let a = Addr::new(0x8000);
        let out = c.access(a, true, &mut rng);
        assert_eq!(out, AccessOutcome::Miss { allocated: false });
        assert!(!c.probe(a), "no-write-allocate must leave the line out");
        // A subsequent load still misses.
        assert!(!c.access(a, false, &mut rng).is_hit());
    }

    #[test]
    fn write_hit_keeps_line() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        let a = Addr::new(0x8000);
        c.access(a, false, &mut rng); // allocate via load
        assert!(c.access(a, true, &mut rng).is_hit());
        assert!(c.probe(a));
    }

    #[test]
    fn lru_evicts_least_recent_of_full_set() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        // 5 lines mapping to the same set (stride = n_sets * line = 4096).
        let lines: Vec<Addr> = (0..5).map(|i| Addr::new(0x1000 + i * 4096)).collect();
        for a in &lines[..4] {
            c.access(*a, false, &mut rng);
        }
        // Touch 0..3 again so line 0 is oldest → fills stamps.
        for a in &lines[..4] {
            assert!(c.access(*a, false, &mut rng).is_hit());
        }
        c.access(lines[4], false, &mut rng); // evicts lines[0]
        assert!(!c.probe(lines[0]));
        assert!(c.probe(lines[1]));
        assert!(c.probe(lines[4]));
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        for i in 0..32 {
            c.access(Addr::new(i * 32), false, &mut rng);
        }
        c.flush();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.probe(Addr::new(0)));
        assert!(!c.access(Addr::new(0), false, &mut rng).is_hit());
    }

    #[test]
    fn working_set_within_capacity_has_no_conflict_misses() {
        // 512 distinct lines = exactly 16KB / 32B: with modulo placement
        // and LRU, a second sweep hits on every line.
        let mut c = det_cache();
        let mut rng = Mwc64::new(0);
        for i in 0..512u64 {
            c.access(Addr::new(i * 32), false, &mut rng);
        }
        for i in 0..512u64 {
            assert!(
                c.access(Addr::new(i * 32), false, &mut rng).is_hit(),
                "line {i} should hit on the second sweep"
            );
        }
    }

    #[test]
    fn random_replacement_varies_across_seeds() {
        // Thrash one set with 8 lines; the surviving tags depend on the RNG.
        let cfg = CacheConfig::leon3_l1(PlacementPolicy::Modulo, ReplacementPolicy::Random);
        let survivors = |seed: u64| {
            let mut c = SetAssocCache::new(cfg);
            let mut rng = Mwc64::new(seed);
            for i in 0..8u64 {
                c.access(Addr::new(0x100 + i * 4096), false, &mut rng);
            }
            (0..8u64)
                .filter(|i| c.probe(Addr::new(0x100 + i * 4096)))
                .collect::<Vec<_>>()
        };
        let all_same = (1..20).all(|s| survivors(s) == survivors(0));
        assert!(!all_same, "random replacement should differ across seeds");
    }

    #[test]
    fn random_modulo_defuses_pathological_aliasing() {
        // 8 lines aliasing to one modulo set thrash a 4-way LRU set under
        // modulo placement but scatter across sets under random modulo.
        let run = |placement: PlacementPolicy, seed: u64| {
            let cfg = CacheConfig::leon3_l1(placement, ReplacementPolicy::Lru);
            let mut c = SetAssocCache::new(cfg);
            c.reseed(seed);
            let mut rng = Mwc64::new(seed);
            for _round in 0..20 {
                for i in 0..8u64 {
                    c.access(Addr::new(0x100 + i * 4096), false, &mut rng);
                }
            }
            c.stats().misses
        };
        let det = run(PlacementPolicy::Modulo, 0);
        assert_eq!(det, 160, "8 lines round-robin in a 4-way LRU set: all miss");
        for seed in 0..16 {
            assert!(
                run(PlacementPolicy::RandomModulo, seed) < det,
                "random modulo must break the alias pathology (seed {seed})"
            );
        }
    }

    #[test]
    fn random_modulo_miss_count_varies_across_seeds() {
        // Exceed capacity (600 windows > 512 lines of space): how badly the
        // working set collides is a per-seed random variable.
        let cfg = CacheConfig::leon3_l1(PlacementPolicy::RandomModulo, ReplacementPolicy::Lru);
        let misses = |seed: u64| {
            let mut c = SetAssocCache::new(cfg);
            c.reseed(seed);
            let mut rng = Mwc64::new(seed);
            for _round in 0..3 {
                for i in 0..600u64 {
                    // One line per alignment window: placement fully random.
                    c.access(Addr::new(i * 4096), false, &mut rng);
                }
            }
            c.stats().misses
        };
        let counts: std::collections::HashSet<u64> = (0..16).map(misses).collect();
        assert!(
            counts.len() > 1,
            "miss counts should vary across placement seeds"
        );
    }

    #[test]
    fn stats_miss_ratio() {
        let s = CacheStats {
            hits: 30,
            misses: 10,
        };
        assert_eq!(s.accesses(), 40);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-15);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
