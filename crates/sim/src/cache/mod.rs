//! Set-associative cache model with pluggable placement and replacement.
//!
//! The paper's hardware changes live here: **random modulo** placement
//! (Hernandez et al., DAC 2016) and **random replacement** (Kosmidis et
//! al., DATE 2013) turn the layout-dependent conflict behaviour of a
//! conventional cache into a per-run random variable that MBPTA can sample.

mod placement;
mod replacement;
mod set_assoc;

pub use placement::PlacementPolicy;
pub use replacement::ReplacementPolicy;
pub use set_assoc::{AccessOutcome, CacheConfig, CacheStats, SetAssocCache};
