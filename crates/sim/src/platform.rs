//! The assembled platform: caches + TLBs + FPU + bus + DRAM + pipeline,
//! with the DET and RAND personalities and the per-run measurement
//! protocol.

use proxima_prng::{PrngKind, RandomSource, SplitMix64};

use crate::bus::BusModel;
use crate::cache::{CacheConfig, PlacementPolicy, ReplacementPolicy, SetAssocCache};
use crate::fpu::{FpuLatencyMode, FpuModel};
use crate::inst::{Inst, InstKind};
use crate::mem::DramModel;
use crate::pipeline::PipelineTiming;
use crate::tlb::{Tlb, TlbConfig};

/// Complete configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Instruction L1 cache.
    pub il1: CacheConfig,
    /// Data L1 cache.
    pub dl1: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// FPU latency mode.
    pub fpu_mode: FpuLatencyMode,
    /// Shared bus model.
    pub bus: BusModel,
    /// DRAM controller model.
    pub dram: DramModel,
    /// Pipeline fixed timing.
    pub timing: PipelineTiming,
    /// Which PRNG drives the randomized resources.
    pub prng: PrngKind,
}

impl PlatformConfig {
    /// The **RAND** platform of the paper: random-modulo placement and
    /// random replacement on IL1/DL1, random replacement on both TLBs, FPU
    /// forced to worst-case latency, SIL3-style MWC PRNG.
    pub fn mbpta_compliant() -> Self {
        PlatformConfig {
            il1: CacheConfig::leon3_l1(PlacementPolicy::RandomModulo, ReplacementPolicy::Random),
            dl1: CacheConfig::leon3_l1(PlacementPolicy::RandomModulo, ReplacementPolicy::Random),
            itlb: TlbConfig::leon3(ReplacementPolicy::Random),
            dtlb: TlbConfig::leon3(ReplacementPolicy::Random),
            fpu_mode: FpuLatencyMode::ForcedWorst,
            bus: BusModel::leon3(0),
            dram: DramModel::leon3(),
            timing: PipelineTiming::leon3(),
            prng: PrngKind::Mwc,
        }
    }

    /// The RAND hardware as deployed at **operation**: caches and TLBs
    /// randomized (they always are — the randomization is the hardware),
    /// but the FPU in its natural value-dependent mode. The forced-worst
    /// FPU of [`PlatformConfig::mbpta_compliant`] is an analysis-phase
    /// configuration bit; average-performance comparisons against DET
    /// (experiment E4) must use this personality.
    pub fn mbpta_operation() -> Self {
        PlatformConfig {
            fpu_mode: FpuLatencyMode::Variable,
            ..PlatformConfig::mbpta_compliant()
        }
    }

    /// The **DET** baseline: conventional modulo placement, LRU caches and
    /// TLBs, value-dependent FPU latency.
    pub fn deterministic() -> Self {
        PlatformConfig {
            il1: CacheConfig::leon3_l1(PlacementPolicy::Modulo, ReplacementPolicy::Lru),
            dl1: CacheConfig::leon3_l1(PlacementPolicy::Modulo, ReplacementPolicy::Lru),
            itlb: TlbConfig::leon3(ReplacementPolicy::Lru),
            dtlb: TlbConfig::leon3(ReplacementPolicy::Lru),
            fpu_mode: FpuLatencyMode::Variable,
            bus: BusModel::leon3(0),
            dram: DramModel::leon3(),
            timing: PipelineTiming::leon3(),
            prng: PrngKind::Mwc,
        }
    }

    /// `true` if every jitter source is MBPTA-compliant (randomized or
    /// forced to worst case).
    pub fn is_mbpta_compliant(&self) -> bool {
        self.il1.placement.is_randomized()
            && self.il1.replacement.is_randomized()
            && self.dl1.placement.is_randomized()
            && self.dl1.replacement.is_randomized()
            && self.itlb.replacement.is_randomized()
            && self.dtlb.replacement.is_randomized()
            && self.fpu_mode == FpuLatencyMode::ForcedWorst
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::mbpta_compliant()
    }
}

/// Per-run event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: u64,
    /// IL1 hits / misses.
    pub il1: (u64, u64),
    /// DL1 hits / misses (loads and stores).
    pub dl1: (u64, u64),
    /// ITLB hits / misses.
    pub itlb: (u64, u64),
    /// DTLB hits / misses.
    pub dtlb: (u64, u64),
    /// Cycles stalled on the FPU.
    pub fpu_stall_cycles: u64,
    /// Cycles spent in bus + DRAM for L1 misses.
    pub memory_cycles: u64,
}

/// The outcome of one measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// End-to-end execution time in cycles.
    pub cycles: u64,
    /// Event counters.
    pub stats: RunStats,
}

/// One observation of a measurement campaign: the seed used and the
/// measured execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignObservation {
    /// The per-run seed (the protocol sets a fresh seed per run).
    pub seed: u64,
    /// Execution time in cycles.
    pub cycles: u64,
}

/// The assembled platform.
///
/// # Examples
///
/// Run the same program twice with the same seed — identical timing — and
/// with different seeds — (typically) different timing on RAND:
///
/// ```
/// use proxima_sim::{Inst, Platform, PlatformConfig};
///
/// let prog: Vec<Inst> = (0..100).map(|i| Inst::load(0x100 + 4 * i, 0x9000 + 32 * i)).collect();
/// let mut p = Platform::new(PlatformConfig::mbpta_compliant());
/// assert_eq!(p.run(&prog, 7).cycles, p.run(&prog, 7).cycles);
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    il1: SetAssocCache,
    dl1: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    fpu: FpuModel,
}

impl Platform {
    /// Assemble a platform from its configuration.
    pub fn new(config: PlatformConfig) -> Self {
        Platform {
            il1: SetAssocCache::new(config.il1),
            dl1: SetAssocCache::new(config.dl1),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            fpu: FpuModel::new(config.fpu_mode),
            config,
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Execute `trace` once under the paper's measurement protocol:
    /// caches and TLBs are flushed, the PRNG is reseeded from `seed`
    /// (independent per-resource streams are derived from it), and the
    /// program runs to completion.
    pub fn run(&mut self, trace: &[Inst], seed: u64) -> RunResult {
        // Protocol: "We flush caches, reset the FPGA and reload the
        // executable across executions … We also set a new seed for each
        // experiment."
        self.il1.flush();
        self.dl1.flush();
        self.itlb.flush();
        self.dtlb.flush();

        let mut seeder = SplitMix64::new(seed);
        self.il1.reseed(seeder.next_u64());
        self.dl1.reseed(seeder.next_u64());
        let mut rng = self.config.prng.build(seeder.next_u64());

        let t = self.config.timing;
        let mem_latency_base = self.config.dram.access_latency();
        let line_size = self.config.il1.line_size;

        let mut cycles: u64 = 0;
        let mut stats = RunStats::default();
        let mut fetch_line_hot: Option<u64> = None;

        for inst in trace {
            cycles += t.base_cpi;
            stats.instructions += 1;

            // --- Fetch: ITLB, then IL1 (once per line for sequential code).
            if !self.itlb.access(inst.pc, &mut rng) {
                cycles += t.tlb_walk_cycles;
            }
            let fetch_line = inst.pc.line(line_size);
            if fetch_line_hot != Some(fetch_line) {
                fetch_line_hot = Some(fetch_line);
                if !self.il1.access_line(fetch_line, false, &mut rng).is_hit() {
                    let mem = self.config.bus.transaction_cycles(&mut rng) + mem_latency_base;
                    cycles += mem;
                    stats.memory_cycles += mem;
                }
            }

            // --- Execute / memory.
            match inst.kind {
                InstKind::IntAlu | InstKind::Nop => {}
                InstKind::IntMul => cycles += t.int_mul_extra,
                InstKind::IntDiv => cycles += t.int_div_extra,
                InstKind::Branch { taken } => {
                    if taken {
                        cycles += t.taken_branch_extra;
                    }
                    // A taken branch redirects the fetch stream.
                    if taken {
                        fetch_line_hot = None;
                    }
                }
                InstKind::FpAdd => {
                    let s = self.fpu.add_latency() - 1;
                    cycles += s;
                    stats.fpu_stall_cycles += s;
                }
                InstKind::FpMul => {
                    let s = self.fpu.mul_latency() - 1;
                    cycles += s;
                    stats.fpu_stall_cycles += s;
                }
                InstKind::FpDiv(class) => {
                    let s = self.fpu.div_latency(class) - 1;
                    cycles += s;
                    stats.fpu_stall_cycles += s;
                }
                InstKind::FpSqrt(class) => {
                    let s = self.fpu.sqrt_latency(class) - 1;
                    cycles += s;
                    stats.fpu_stall_cycles += s;
                }
                InstKind::Load(addr) => {
                    if !self.dtlb.access(addr, &mut rng) {
                        cycles += t.tlb_walk_cycles;
                    }
                    if !self.dl1.access(addr, false, &mut rng).is_hit() {
                        let mem = self.config.bus.transaction_cycles(&mut rng) + mem_latency_base;
                        cycles += mem;
                        stats.memory_cycles += mem;
                    }
                }
                InstKind::Store(addr) => {
                    if !self.dtlb.access(addr, &mut rng) {
                        cycles += t.tlb_walk_cycles;
                    }
                    // Write-through, no-write-allocate: the store posts to
                    // the write buffer; the cache is updated only on hit.
                    let _ = self.dl1.access(addr, true, &mut rng);
                    cycles += t.store_extra;
                }
            }
        }

        stats.il1 = {
            let s = self.il1.stats();
            (s.hits, s.misses)
        };
        stats.dl1 = {
            let s = self.dl1.stats();
            (s.hits, s.misses)
        };
        stats.itlb = self.itlb.stats();
        stats.dtlb = self.dtlb.stats();

        RunResult { cycles, stats }
    }

    /// Run a full measurement campaign: `runs` executions of `trace`, with
    /// per-run seeds `base_seed, base_seed+1, …` (each expanded through the
    /// platform seeder), returning one observation per run.
    pub fn campaign(
        &mut self,
        trace: &[Inst],
        runs: usize,
        base_seed: u64,
    ) -> Vec<CampaignObservation> {
        (0..runs as u64)
            .map(|i| {
                let seed = base_seed.wrapping_add(i);
                CampaignObservation {
                    seed,
                    cycles: self.run(trace, seed).cycles,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpu::ValueClass;

    fn loads(n: u64, stride: u64) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst::load(0x100 + 4 * i, 0x10_0000 + stride * i))
            .collect()
    }

    #[test]
    fn same_seed_same_cycles() {
        let prog = loads(500, 32);
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let a = p.run(&prog, 42);
        let b = p.run(&prog, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn rand_platform_cycles_vary_with_seed() {
        // A working set above DL1 capacity (600 lines > 512): how the lines
        // collide, and hence the execution time, is seed-dependent.
        let prog: Vec<Inst> = (0..3000)
            .map(|i| Inst::load(0x100 + 4 * (i % 64), 0x10_0000 + 4096 * (i % 600)))
            .collect();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let times: std::collections::HashSet<u64> =
            (0..20).map(|s| p.run(&prog, s).cycles).collect();
        assert!(times.len() > 1, "randomized platform should show jitter");
    }

    #[test]
    fn det_platform_is_seed_insensitive() {
        let prog = loads(2000, 64);
        let mut p = Platform::new(PlatformConfig::deterministic());
        let t0 = p.run(&prog, 0).cycles;
        for s in 1..10 {
            assert_eq!(
                p.run(&prog, s).cycles,
                t0,
                "DET must not depend on the seed"
            );
        }
    }

    #[test]
    fn compliance_flags() {
        assert!(PlatformConfig::mbpta_compliant().is_mbpta_compliant());
        assert!(!PlatformConfig::deterministic().is_mbpta_compliant());
        let mut half = PlatformConfig::mbpta_compliant();
        half.fpu_mode = FpuLatencyMode::Variable;
        assert!(!half.is_mbpta_compliant());
    }

    #[test]
    fn operation_mode_keeps_randomized_caches_but_variable_fpu() {
        let op = PlatformConfig::mbpta_operation();
        assert!(op.il1.placement.is_randomized());
        assert!(op.dl1.replacement.is_randomized());
        assert_eq!(op.fpu_mode, FpuLatencyMode::Variable);
        // Not analysis-compliant (the FPU bit is off) by design.
        assert!(!op.is_mbpta_compliant());
    }

    #[test]
    fn fpu_worst_mode_dominates_variable_mode() {
        let prog: Vec<Inst> = (0..200)
            .map(|i| Inst::new(0x100 + 4 * i, InstKind::FpDiv(ValueClass::Fast)))
            .collect();
        let mut worst = Platform::new(PlatformConfig::mbpta_compliant());
        let mut var_cfg = PlatformConfig::mbpta_compliant();
        var_cfg.fpu_mode = FpuLatencyMode::Variable;
        let mut variable = Platform::new(var_cfg);
        assert!(
            worst.run(&prog, 1).cycles > variable.run(&prog, 1).cycles,
            "forced-worst FPU must cost more on fast operands"
        );
    }

    #[test]
    fn cache_misses_cost_cycles() {
        // Same instruction count; one program fits a line, the other
        // strides across pages.
        let hot = loads(1000, 0);
        let cold = loads(1000, 4096);
        let mut p = Platform::new(PlatformConfig::deterministic());
        let t_hot = p.run(&hot, 0).cycles;
        let t_cold = p.run(&cold, 0).cycles;
        assert!(t_cold > t_hot * 2, "hot={t_hot} cold={t_cold}");
    }

    #[test]
    fn stats_are_populated() {
        let prog = loads(100, 64);
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let r = p.run(&prog, 3);
        assert_eq!(r.stats.instructions, 100);
        assert!(r.stats.dl1.0 + r.stats.dl1.1 == 100);
        assert!(r.stats.memory_cycles > 0);
    }

    #[test]
    fn campaign_produces_one_observation_per_run() {
        let prog = loads(50, 32);
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let obs = p.campaign(&prog, 25, 100);
        assert_eq!(obs.len(), 25);
        assert_eq!(obs[0].seed, 100);
        assert_eq!(obs[24].seed, 124);
        assert!(obs.iter().all(|o| o.cycles > 0));
    }

    #[test]
    fn taken_branch_costs_more_than_not_taken() {
        let taken: Vec<Inst> = (0..100)
            .map(|i| Inst::branch(0x100 + 4 * i, true))
            .collect();
        let not_taken: Vec<Inst> = (0..100)
            .map(|i| Inst::branch(0x100 + 4 * i, false))
            .collect();
        let mut p = Platform::new(PlatformConfig::deterministic());
        assert!(p.run(&taken, 0).cycles > p.run(&not_taken, 0).cycles);
    }

    #[test]
    fn store_miss_does_not_pollute_cache() {
        // Stores to a cold region must not evict: program of stores then
        // loads to a *different* region should cost the same as loads alone.
        let mut prog: Vec<Inst> = (0..128)
            .map(|i| Inst::store(0x100, 0x50_0000 + 32 * i))
            .collect();
        let loads_only: Vec<Inst> = (0..128)
            .map(|i| Inst::load(0x100, 0x20_0000 + 32 * i))
            .collect();
        prog.extend(loads_only.iter().copied());
        let mut p = Platform::new(PlatformConfig::deterministic());
        let full = p.run(&prog, 0);
        // The loads in the combined program missed exactly as often as alone.
        let alone = p.run(&loads_only, 0);
        assert_eq!(full.stats.dl1.1, alone.stats.dl1.1 + 128); // 128 store misses
    }
}
