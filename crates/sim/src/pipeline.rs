//! In-order pipeline timing model.

/// Fixed per-stage timing parameters of the 7-stage LEON3 integer
/// pipeline.
///
/// All latencies here are *jitterless*: they are either constant by
/// construction (ALU, branch penalty) or upper bounds adopted by the
/// platform (integer divide). The jittery resources — caches, TLBs, bus,
/// FPU — are modelled separately and their stalls added on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineTiming {
    /// Base cycles per issued instruction (CPI of the hit/ALU fast path).
    pub base_cpi: u64,
    /// Extra cycles for an integer multiply.
    pub int_mul_extra: u64,
    /// Extra cycles for an integer divide (fixed worst case).
    pub int_div_extra: u64,
    /// Extra cycles for a taken branch (no branch prediction on LEON3;
    /// the penalty is fixed).
    pub taken_branch_extra: u64,
    /// Extra cycles for a store (write-through buffer drain slot —
    /// jitterless because the buffer is sized for the worst case).
    pub store_extra: u64,
    /// Cycles for a TLB miss page-table walk (fixed-latency walk).
    pub tlb_walk_cycles: u64,
}

impl PipelineTiming {
    /// Representative LEON3 timing.
    pub fn leon3() -> Self {
        PipelineTiming {
            base_cpi: 1,
            int_mul_extra: 2,
            int_div_extra: 34,
            taken_branch_extra: 2,
            store_extra: 1,
            tlb_walk_cycles: 24,
        }
    }
}

impl Default for PipelineTiming {
    fn default() -> Self {
        PipelineTiming::leon3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leon3_values_sane() {
        let t = PipelineTiming::leon3();
        assert_eq!(t.base_cpi, 1);
        assert!(t.int_div_extra > t.int_mul_extra);
        assert!(t.tlb_walk_cycles > 0);
    }

    #[test]
    fn default_is_leon3() {
        assert_eq!(PipelineTiming::default(), PipelineTiming::leon3());
    }
}
