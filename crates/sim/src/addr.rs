//! Byte addresses and line/page arithmetic.

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// A newtype keeps byte addresses, cache-line indices and page numbers from
/// being mixed up in the cache and TLB models.
///
/// # Examples
///
/// ```
/// use proxima_sim::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(32), 0x1234 / 32);
/// assert_eq!(a.page(4096), 0x1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wrap a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Cache-line index for the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn line(self, line_size: u64) -> u64 {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 / line_size
    }

    /// Page number for the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn page(self, page_size: u64) -> u64 {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        self.0 / page_size
    }

    /// Offset the address by `delta` bytes.
    pub fn offset(self, delta: u64) -> Addr {
        Addr(self.0.wrapping_add(delta))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_arithmetic() {
        let a = Addr::new(0x2345);
        assert_eq!(a.line(32), 0x2345 / 32);
        assert_eq!(a.line(64), 0x2345 / 64);
        assert_eq!(a.page(4096), 2);
    }

    #[test]
    fn adjacent_bytes_share_a_line() {
        let a = Addr::new(0x100);
        let b = Addr::new(0x11F);
        let c = Addr::new(0x120);
        assert_eq!(a.line(32), b.line(32));
        assert_ne!(a.line(32), c.line(32));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_panics() {
        Addr::new(0).line(48);
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 0xDEAD_BEEF.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xDEAD_BEEF);
        assert_eq!(format!("{a}"), "0xdeadbeef");
        assert_eq!(format!("{a:x}"), "deadbeef");
    }

    #[test]
    fn offset_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.offset(1).raw(), 0);
    }
}
