//! Cycle-approximate timing model of a LEON3-class processor with
//! MBPTA-compliant hardware randomization.
//!
//! This crate is the *platform substrate* of the DATE 2017 reproduction
//! (Fernandez et al.): a trace-driven timing simulator of the paper's
//! reference architecture — a LEON3 [Figure 1] with
//!
//! * 7-stage in-order pipelined cores,
//! * 16 KB 4-way set-associative first-level instruction (IL1) and data
//!   (DL1) caches, the DL1 write-through / no-write-allocate,
//! * 64-entry instruction and data TLBs,
//! * a shared bus propagating misses to a DRAM memory controller,
//! * an FPU whose FDIV/FSQRT latency depends on operand values.
//!
//! Two platform personalities are provided:
//!
//! * [`PlatformConfig::deterministic`] — the **DET** baseline: modulo
//!   placement, LRU replacement, value-dependent FPU latency. Execution
//!   time depends on the memory layout of the program, which is exactly the
//!   hard-to-cover jitter source industrial MBTA struggles with.
//! * [`PlatformConfig::mbpta_compliant`] — the **RAND** platform of the
//!   paper: random-modulo placement and random replacement for IL1/DL1,
//!   random replacement for both TLBs, and FDIV/FSQRT forced to their
//!   worst-case latency during analysis, all driven by a SIL3-style PRNG
//!   ([`proxima_prng`]) reseeded per run.
//!
//! Execution is trace-driven: programs are sequences of [`Inst`] records
//! (instruction kind + addresses), and the pipeline model charges per-stage
//! latencies plus cache/TLB/bus/DRAM stall cycles. Absolute cycle counts are
//! not those of the FPGA board; the *distributions* that MBPTA consumes are
//! faithfully shaped (see `DESIGN.md` §2 for the substitution argument).
//!
//! # Examples
//!
//! ```
//! use proxima_sim::{Inst, PlatformConfig, Platform};
//!
//! // A tiny straight-line program: loads sweeping one cache line.
//! let prog: Vec<Inst> = (0..64)
//!     .map(|i| Inst::load(0x1000 + 4 * i, 0x8000))
//!     .collect();
//! let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
//! let run = platform.run(&prog, 1234);
//! assert!(run.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bus;
pub mod cache;
pub mod fpu;
pub mod mem;
pub mod pipeline;
pub mod platform;
pub mod tlb;

mod inst;

pub use addr::Addr;
pub use cache::{CacheConfig, PlacementPolicy, ReplacementPolicy, SetAssocCache};
pub use fpu::{FpuLatencyMode, FpuModel, ValueClass};
pub use inst::{Inst, InstKind};
pub use platform::{CampaignObservation, Platform, PlatformConfig, RunResult, RunStats};
pub use tlb::{Tlb, TlbConfig};
