//! Shared bus and arbitration model.

use proxima_prng::RandomSource;

/// The shared bus connecting the four cores' L1 misses to the memory
/// controller.
///
/// Arbitration is round-robin across cores. For the analysed core this
/// appears as a bounded, *randomized* extra delay per bus transaction: the
/// position of the round-robin token relative to the core's request is a
/// random variable in `0..cores`, and each interfering core that holds the
/// bus adds one transfer slot. Randomizing the token at each arbitration
/// (equivalent to the analysed task observing an arbitrary arbitration
/// phase) makes the bus MBPTA-compliant: the measured delays sample the
/// full delay distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusModel {
    /// Number of cores that can contend (the LEON3 board has 4).
    pub cores: u64,
    /// Number of *active* interfering cores (0 = the analysed core runs
    /// alone, the paper's TVCA configuration).
    pub interfering: u64,
    /// Cycles for one bus transfer slot.
    pub slot_cycles: u64,
}

impl BusModel {
    /// A 4-core LEON3 bus with the given number of interfering cores.
    ///
    /// # Panics
    ///
    /// Panics if `interfering >= 4`.
    pub fn leon3(interfering: u64) -> Self {
        assert!(interfering < 4, "a 4-core bus has at most 3 interferers");
        BusModel {
            cores: 4,
            interfering,
            slot_cycles: 8,
        }
    }

    /// Delay (cycles) for one bus transaction of the analysed core,
    /// including the transfer itself plus randomized arbitration among the
    /// interfering cores.
    pub fn transaction_cycles<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        let wait_slots = if self.interfering == 0 {
            0
        } else {
            // Token position uniform over 0..=interfering: each interferer
            // ahead of us in the round costs one slot.
            rng.below(self.interfering + 1)
        };
        self.slot_cycles * (1 + wait_slots)
    }

    /// Worst-case delay for one transaction (all interferers ahead).
    pub fn worst_transaction_cycles(&self) -> u64 {
        self.slot_cycles * (1 + self.interfering)
    }
}

impl Default for BusModel {
    fn default() -> Self {
        BusModel::leon3(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_prng::Mwc64;

    #[test]
    fn no_interference_is_deterministic() {
        let bus = BusModel::leon3(0);
        let mut rng = Mwc64::new(1);
        for _ in 0..100 {
            assert_eq!(bus.transaction_cycles(&mut rng), 8);
        }
        assert_eq!(bus.worst_transaction_cycles(), 8);
    }

    #[test]
    fn interference_bounded_by_worst_case() {
        let bus = BusModel::leon3(3);
        let mut rng = Mwc64::new(2);
        for _ in 0..1000 {
            let c = bus.transaction_cycles(&mut rng);
            assert!(c >= bus.slot_cycles);
            assert!(c <= bus.worst_transaction_cycles());
        }
        assert_eq!(bus.worst_transaction_cycles(), 32);
    }

    #[test]
    fn interference_covers_full_range() {
        let bus = BusModel::leon3(3);
        let mut rng = Mwc64::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(bus.transaction_cycles(&mut rng));
        }
        assert_eq!(seen.len(), 4, "should see 8, 16, 24, 32: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn too_many_interferers_panics() {
        BusModel::leon3(4);
    }
}
