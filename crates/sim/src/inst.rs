//! The trace-level instruction representation.

use crate::addr::Addr;
use crate::fpu::ValueClass;

/// What an instruction does, at the granularity the timing model needs.
///
/// The simulator is trace-driven: it does not interpret operand values,
/// only their timing-relevant attributes (memory addresses, FPU operand
/// value classes, branch direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation (add, logic, shift, compare) —
    /// jitterless by construction on the LEON3.
    IntAlu,
    /// Integer multiply (fixed latency).
    IntMul,
    /// Integer divide (fixed worst-case latency on this platform).
    IntDiv,
    /// Memory load from the given data address.
    Load(Addr),
    /// Memory store to the given data address (write-through, no-allocate).
    Store(Addr),
    /// Control transfer; `taken` selects the (fixed) taken-branch penalty.
    Branch {
        /// Whether the branch is taken in this trace.
        taken: bool,
    },
    /// Floating-point add/sub (fixed latency).
    FpAdd,
    /// Floating-point multiply (fixed latency).
    FpMul,
    /// Floating-point divide; latency depends on the operand value class
    /// unless the FPU is in forced-worst-latency (analysis) mode.
    FpDiv(ValueClass),
    /// Floating-point square root; value-dependent like [`InstKind::FpDiv`].
    FpSqrt(ValueClass),
    /// No-op (consumes a pipeline slot only).
    Nop,
}

/// One executed instruction in a trace: its fetch address plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Program counter (instruction fetch address) — drives IL1 and ITLB.
    pub pc: Addr,
    /// Operation kind with its timing-relevant attributes.
    pub kind: InstKind,
}

impl Inst {
    /// Construct an instruction record.
    pub fn new(pc: impl Into<Addr>, kind: InstKind) -> Self {
        Inst {
            pc: pc.into(),
            kind,
        }
    }

    /// Convenience: an integer ALU instruction at `pc`.
    pub fn alu(pc: u64) -> Self {
        Inst::new(pc, InstKind::IntAlu)
    }

    /// Convenience: a load at `pc` from `addr`.
    pub fn load(pc: u64, addr: u64) -> Self {
        Inst::new(pc, InstKind::Load(Addr::new(addr)))
    }

    /// Convenience: a store at `pc` to `addr`.
    pub fn store(pc: u64, addr: u64) -> Self {
        Inst::new(pc, InstKind::Store(Addr::new(addr)))
    }

    /// Convenience: a branch at `pc`.
    pub fn branch(pc: u64, taken: bool) -> Self {
        Inst::new(pc, InstKind::Branch { taken })
    }

    /// The data address touched by this instruction, if it is a memory op.
    pub fn data_addr(&self) -> Option<Addr> {
        match self.kind {
            InstKind::Load(a) | InstKind::Store(a) => Some(a),
            _ => None,
        }
    }

    /// `true` if this instruction uses the floating-point unit.
    pub fn is_fp(&self) -> bool {
        matches!(
            self.kind,
            InstKind::FpAdd | InstKind::FpMul | InstKind::FpDiv(_) | InstKind::FpSqrt(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let l = Inst::load(0x100, 0x8000);
        assert_eq!(l.pc, Addr::new(0x100));
        assert_eq!(l.data_addr(), Some(Addr::new(0x8000)));
        assert!(!l.is_fp());

        let s = Inst::store(0x104, 0x8004);
        assert_eq!(s.data_addr(), Some(Addr::new(0x8004)));

        let d = Inst::new(0x108, InstKind::FpDiv(ValueClass::Worst));
        assert!(d.is_fp());
        assert_eq!(d.data_addr(), None);

        let b = Inst::branch(0x10c, true);
        assert!(matches!(b.kind, InstKind::Branch { taken: true }));
    }
}
