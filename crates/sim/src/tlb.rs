//! Translation lookaside buffer model.

use proxima_prng::RandomSource;

use crate::addr::Addr;
use crate::cache::ReplacementPolicy;

/// TLB geometry and policy.
///
/// The paper's platform has 64-entry instruction and data TLBs with random
/// replacement (one of the listed hardware modifications). LEON3 TLBs are
/// fully associative, which is how this model treats them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_size: u64,
    /// Victim-selection policy on a miss.
    pub replacement: ReplacementPolicy,
}

impl TlbConfig {
    /// The paper's 64-entry TLB with 4 KB pages and the given policy.
    pub fn leon3(replacement: ReplacementPolicy) -> Self {
        TlbConfig {
            entries: 64,
            page_size: 4096,
            replacement,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::leon3(ReplacementPolicy::Random)
    }
}

/// Fully associative TLB.
///
/// # Examples
///
/// ```
/// use proxima_sim::{Addr, Tlb, TlbConfig};
/// use proxima_prng::Mwc64;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let mut rng = Mwc64::new(0);
/// assert!(!tlb.access(Addr::new(0x1000), &mut rng)); // cold miss
/// assert!(tlb.access(Addr::new(0x1FFF), &mut rng));  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    pages: Vec<Option<u64>>,
    stamps: Vec<u64>,
    rr_ptr: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            pages: vec![None; config.entries],
            stamps: vec![0; config.entries],
            rr_ptr: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// The TLB configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// `(hits, misses)` since the last flush.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Invalidate all entries and reset statistics.
    pub fn flush(&mut self) {
        self.pages.fill(None);
        self.stamps.fill(0);
        self.rr_ptr = 0;
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Translate `addr`; returns `true` on a TLB hit. On a miss the page is
    /// installed, evicting a victim chosen by the replacement policy.
    pub fn access<R: RandomSource + ?Sized>(&mut self, addr: Addr, rng: &mut R) -> bool {
        let page = addr.page(self.config.page_size);
        self.tick += 1;
        for i in 0..self.pages.len() {
            if self.pages[i] == Some(page) {
                self.stamps[i] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        let victim = (0..self.pages.len())
            .find(|&i| self.pages[i].is_none())
            .unwrap_or_else(|| {
                self.config
                    .replacement
                    .victim(&self.stamps, &mut self.rr_ptr, rng)
            });
        self.pages[victim] = Some(page);
        self.stamps[victim] = self.tick;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_prng::Mwc64;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let mut rng = Mwc64::new(0);
        assert!(!tlb.access(Addr::new(0x1000), &mut rng));
        assert!(tlb.access(Addr::new(0x1ABC), &mut rng));
        assert!(!tlb.access(Addr::new(0x2000), &mut rng));
        assert_eq!(tlb.stats(), (1, 2));
    }

    #[test]
    fn capacity_is_respected() {
        // Touch 64 distinct pages, then all should hit.
        let mut tlb = Tlb::new(TlbConfig::leon3(ReplacementPolicy::Lru));
        let mut rng = Mwc64::new(0);
        for p in 0..64u64 {
            tlb.access(Addr::new(p * 4096), &mut rng);
        }
        for p in 0..64u64 {
            assert!(tlb.access(Addr::new(p * 4096), &mut rng), "page {p}");
        }
    }

    #[test]
    fn lru_eviction_on_65th_page() {
        let mut tlb = Tlb::new(TlbConfig::leon3(ReplacementPolicy::Lru));
        let mut rng = Mwc64::new(0);
        for p in 0..65u64 {
            tlb.access(Addr::new(p * 4096), &mut rng);
        }
        // Page 0 was LRU: must have been evicted.
        assert!(!tlb.access(Addr::new(0), &mut rng));
    }

    #[test]
    fn random_replacement_survivors_vary() {
        let survivors = |seed: u64| {
            let mut tlb = Tlb::new(TlbConfig::leon3(ReplacementPolicy::Random));
            let mut rng = Mwc64::new(seed);
            for p in 0..80u64 {
                tlb.access(Addr::new(p * 4096), &mut rng);
            }
            (0..80u64)
                .filter(|&p| {
                    // Probe without disturbing: check via a fresh read of
                    // internal state is not exposed; use stats delta trick.
                    let (h0, _) = tlb.stats();
                    let hit = {
                        // Cloning keeps the probe side-effect free.
                        let mut probe = tlb.clone();
                        let mut r2 = Mwc64::new(0);
                        probe.access(Addr::new(p * 4096), &mut r2)
                    };
                    let _ = h0;
                    hit
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(survivors(1), survivors(2));
    }

    #[test]
    fn flush_resets() {
        let mut tlb = Tlb::new(TlbConfig::default());
        let mut rng = Mwc64::new(0);
        tlb.access(Addr::new(0x5000), &mut rng);
        tlb.flush();
        assert_eq!(tlb.stats(), (0, 0));
        assert!(!tlb.access(Addr::new(0x5000), &mut rng));
    }
}
