//! Program memory layout: where code and data objects sit in the address
//! space.
//!
//! On the deterministic platform the layout *is* the jitter source: which
//! cache sets two objects share depends on their addresses, so linking the
//! same program at a different base address changes its execution time.
//! Experiment **E3** sweeps layouts on the DET platform to expose exactly
//! this sensitivity, which random-modulo placement removes.

use crate::addr::Addr;

/// What a segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Executable code (fetched through IL1).
    Code,
    /// Read-only data (tables, coefficients).
    Rodata,
    /// Read-write data (state vectors, buffers).
    Data,
    /// Stack.
    Stack,
}

/// A contiguous region of the address space assigned to one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Human-readable name (e.g. `"task_x_code"`).
    pub name: String,
    /// What the segment holds.
    pub kind: SegmentKind,
    /// First byte address.
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl Segment {
    /// Byte address at `offset` into the segment.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= size`.
    pub fn at(&self, offset: u64) -> Addr {
        assert!(
            offset < self.size,
            "offset {offset} out of segment {}",
            self.name
        );
        self.base.offset(offset)
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.base.offset(self.size)
    }
}

/// A full program layout: an ordered collection of segments.
///
/// # Examples
///
/// ```
/// use proxima_sim::mem::{MemoryLayout, SegmentKind};
///
/// let mut layout = MemoryLayout::new(0x4000_0000);
/// let code = layout.add("main_code", SegmentKind::Code, 4096);
/// let data = layout.add("state", SegmentKind::Data, 1024);
/// assert!(layout.segment(code).end().raw() <= layout.segment(data).base.raw());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    segments: Vec<Segment>,
    cursor: u64,
    align: u64,
}

/// Handle to a segment inside a [`MemoryLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentId(usize);

impl MemoryLayout {
    /// Start an empty layout at `base` with 32-byte (cache-line) alignment.
    pub fn new(base: u64) -> Self {
        MemoryLayout {
            segments: Vec::new(),
            cursor: base,
            align: 32,
        }
    }

    /// Start an empty layout with a custom allocation alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn with_alignment(base: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        MemoryLayout {
            segments: Vec::new(),
            cursor: base,
            align,
        }
    }

    /// Append a segment of `size` bytes, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, kind: SegmentKind, size: u64) -> SegmentId {
        let base = self.cursor.next_multiple_of(self.align);
        self.segments.push(Segment {
            name: name.into(),
            kind,
            base: Addr::new(base),
            size,
        });
        self.cursor = base + size;
        SegmentId(self.segments.len() - 1)
    }

    /// Insert padding (a link-time gap) before the next segment — the knob
    /// the DET layout sweep turns.
    pub fn pad(&mut self, bytes: u64) {
        self.cursor += bytes;
    }

    /// Look up a segment by handle.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0]
    }

    /// Iterate over all segments in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter()
    }

    /// Total footprint from the first segment base to the last segment end,
    /// or 0 for an empty layout.
    pub fn footprint(&self) -> u64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(first), Some(last)) => last.end().raw() - first.base.raw(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_are_disjoint_and_ordered() {
        let mut l = MemoryLayout::new(0x1000);
        let a = l.add("a", SegmentKind::Code, 100);
        let b = l.add("b", SegmentKind::Data, 64);
        let sa = l.segment(a);
        let sb = l.segment(b);
        assert!(sa.end().raw() <= sb.base.raw());
        assert_eq!(sa.base.raw() % 32, 0);
        assert_eq!(sb.base.raw() % 32, 0);
    }

    #[test]
    fn padding_shifts_following_segments() {
        let mut plain = MemoryLayout::new(0);
        plain.add("x", SegmentKind::Code, 32);
        let x0 = plain.add("y", SegmentKind::Data, 32);

        let mut padded = MemoryLayout::new(0);
        padded.add("x", SegmentKind::Code, 32);
        padded.pad(4096);
        let x1 = padded.add("y", SegmentKind::Data, 32);

        assert_eq!(
            padded.segment(x1).base.raw(),
            plain.segment(x0).base.raw() + 4096
        );
    }

    #[test]
    fn at_checks_bounds() {
        let mut l = MemoryLayout::new(0);
        let a = l.add("a", SegmentKind::Stack, 64);
        assert_eq!(l.segment(a).at(63).raw(), 63);
        let result = std::panic::catch_unwind(|| l.segment(a).at(64));
        assert!(result.is_err());
    }

    #[test]
    fn footprint_spans_all_segments() {
        let mut l = MemoryLayout::new(0x100);
        l.add("a", SegmentKind::Code, 10);
        l.pad(100);
        l.add("b", SegmentKind::Data, 10);
        assert!(l.footprint() >= 120);
        assert_eq!(MemoryLayout::new(0).footprint(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        MemoryLayout::with_alignment(0, 48);
    }
}
