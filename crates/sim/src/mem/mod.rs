//! Memory hierarchy beyond the caches: the DRAM controller model and the
//! program memory layout.

mod dram;
mod layout;

pub use dram::DramModel;
pub use layout::{MemoryLayout, Segment, SegmentKind};
