//! DRAM memory-controller timing model.

/// Fixed-latency DRAM controller.
///
/// The paper's platform treats the memory controller as an
/// upper-bounded-latency resource: requests are served within a fixed
/// worst-case window, making it jitterless from the analysis perspective
/// (the same "force worst latency" compliance technique applied to the
/// FPU). A refresh penalty can be folded into the fixed latency; we expose
/// it separately so ablations can study its weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramModel {
    /// Cycles from request acceptance to critical-word delivery.
    pub access_cycles: u64,
    /// Amortized refresh overhead folded into each access.
    pub refresh_overhead: u64,
}

impl DramModel {
    /// A representative SDRAM controller timing for a LEON3-class SoC.
    pub fn leon3() -> Self {
        DramModel {
            access_cycles: 26,
            refresh_overhead: 2,
        }
    }

    /// Total cycles charged per memory access.
    pub fn access_latency(&self) -> u64 {
        self.access_cycles + self.refresh_overhead
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::leon3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_sum_of_parts() {
        let d = DramModel::leon3();
        assert_eq!(d.access_latency(), 28);
        let custom = DramModel {
            access_cycles: 40,
            refresh_overhead: 5,
        };
        assert_eq!(custom.access_latency(), 45);
    }

    #[test]
    fn default_is_leon3() {
        assert_eq!(DramModel::default(), DramModel::leon3());
    }
}
