//! Exact-cycle regression tests of the pipeline timing model.
//!
//! Each test builds a tiny trace whose cost is computable by hand from the
//! documented timing parameters and asserts the simulator charges exactly
//! that. These tests pin the timing model: any change to latencies or
//! stall accounting must update them consciously.

use proxima_sim::{Inst, InstKind, Platform, PlatformConfig, ValueClass};

/// DET platform: no randomness, every cost deterministic.
fn det() -> Platform {
    Platform::new(PlatformConfig::deterministic())
}

/// Cost model constants (mirrors `PipelineTiming::leon3` and the memory
/// models; update alongside them).
const BASE: u64 = 1;
const TLB_WALK: u64 = 24;
const MEM: u64 = 8 + 28; // bus slot + DRAM access+refresh
const STORE_EXTRA: u64 = 1;
const TAKEN_BRANCH: u64 = 2;
const INT_MUL: u64 = 2;
const INT_DIV: u64 = 34;

#[test]
fn single_alu_costs_fetch_plus_base() {
    // 1 instruction: base + ITLB walk (cold) + IL1 miss (cold).
    let trace = vec![Inst::alu(0x1000)];
    let r = det().run(&trace, 0);
    assert_eq!(r.cycles, BASE + TLB_WALK + MEM);
}

#[test]
fn sequential_alus_share_fetch_line() {
    // 8 ALU ops in one 32-byte line: one ITLB walk, one IL1 miss, 8 base.
    let trace: Vec<Inst> = (0..8).map(|i| Inst::alu(0x1000 + 4 * i)).collect();
    let r = det().run(&trace, 0);
    assert_eq!(r.cycles, 8 * BASE + TLB_WALK + MEM);
}

#[test]
fn crossing_a_line_boundary_costs_another_fill() {
    // 9 sequential ALUs: second line fetch at instruction 9.
    let trace: Vec<Inst> = (0..9).map(|i| Inst::alu(0x1000 + 4 * i)).collect();
    let r = det().run(&trace, 0);
    assert_eq!(r.cycles, 9 * BASE + TLB_WALK + 2 * MEM);
}

#[test]
fn load_hit_vs_miss_difference_is_memory_latency() {
    // Two loads to the same line (same page as code to skip a second TLB walk
    // is not possible — data uses DTLB): cold miss then hit.
    let t1 = vec![Inst::load(0x1000, 0x8000)];
    let t2 = vec![Inst::load(0x1000, 0x8000), Inst::load(0x1004, 0x8004)];
    let r1 = det().run(&t1, 0);
    let r2 = det().run(&t2, 0);
    // Second load: base only (same fetch line, DTLB hit, DL1 hit).
    assert_eq!(r2.cycles - r1.cycles, BASE);
    // First load: base + ITLB + IL1 + DTLB + DL1 memory.
    assert_eq!(r1.cycles, BASE + TLB_WALK + MEM + TLB_WALK + MEM);
}

#[test]
fn store_costs_fixed_extra_and_never_fills() {
    let t = vec![
        Inst::store(0x1000, 0x8000),
        Inst::store(0x1004, 0x8004), // same line, still write-through
    ];
    let r = det().run(&t, 0);
    // inst1: base + ITLB + IL1 + DTLB + store_extra (no DL1 fill).
    // inst2: base + store_extra (fetch line hot, DTLB hit).
    assert_eq!(
        r.cycles,
        (BASE + TLB_WALK + MEM + TLB_WALK + STORE_EXTRA) + (BASE + STORE_EXTRA)
    );
    assert_eq!(r.stats.dl1.1, 2, "both stores miss (no-write-allocate)");
}

#[test]
fn branch_costs() {
    let taken = vec![Inst::alu(0x1000), Inst::branch(0x1004, true)];
    let not = vec![Inst::alu(0x1000), Inst::branch(0x1004, false)];
    let rt = det().run(&taken, 0);
    let rn = det().run(&not, 0);
    assert_eq!(rt.cycles - rn.cycles, TAKEN_BRANCH);
}

#[test]
fn integer_arithmetic_latencies() {
    let base = det().run(&[Inst::alu(0x1000)], 0).cycles;
    let mul = det().run(&[Inst::new(0x1000, InstKind::IntMul)], 0).cycles;
    let div = det().run(&[Inst::new(0x1000, InstKind::IntDiv)], 0).cycles;
    assert_eq!(mul - base, INT_MUL);
    assert_eq!(div - base, INT_DIV);
}

#[test]
fn fpu_latency_modes_and_classes() {
    let run_div = |cfg: PlatformConfig, class| {
        let t = vec![Inst::new(0x1000, InstKind::FpDiv(class))];
        Platform::new(cfg).run(&t, 0).cycles
    };
    let det_cfg = PlatformConfig::deterministic;
    // Variable mode orders by class: 15 / 18 / 25 cycles (−1 overlap).
    let fast = run_div(det_cfg(), ValueClass::Fast);
    let typical = run_div(det_cfg(), ValueClass::Typical);
    let worst = run_div(det_cfg(), ValueClass::Worst);
    assert_eq!(typical - fast, 3);
    assert_eq!(worst - typical, 7);
    // Forced-worst mode: class-independent, equal to the worst class.
    let rand_cfg = PlatformConfig::mbpta_compliant();
    let forced_fast = run_div(rand_cfg.clone(), ValueClass::Fast);
    let forced_worst = run_div(rand_cfg, ValueClass::Worst);
    assert_eq!(forced_fast, forced_worst);
}

#[test]
fn taken_branch_redirects_fetch_stream() {
    // After a taken branch, the next instruction re-fetches its line even
    // if it is the same line address pattern.
    let same_line_no_branch = vec![Inst::alu(0x1000), Inst::alu(0x1004)];
    let same_line_branch = vec![Inst::branch(0x1000, true), Inst::alu(0x1004)];
    let r_no = det().run(&same_line_no_branch, 0);
    let r_br = det().run(&same_line_branch, 0);
    // Branch path: extra taken penalty + an IL1 (hit) lookup that costs 0,
    // so the difference is exactly the taken penalty.
    assert_eq!(r_br.cycles - r_no.cycles, TAKEN_BRANCH);
    // But the IL1 saw one more access in the branch version.
    assert_eq!(
        r_br.stats.il1.0 + r_br.stats.il1.1,
        r_no.stats.il1.0 + r_no.stats.il1.1 + 1
    );
}

#[test]
fn dtlb_walk_charged_once_per_page() {
    // Loads to 2 pages: 2 walks; third load to first page: no walk.
    let t = vec![
        Inst::load(0x1000, 0x10_0000),
        Inst::load(0x1004, 0x10_2000), // second page
        Inst::load(0x1008, 0x10_0040), // first page again, new line
    ];
    let r = det().run(&t, 0);
    assert_eq!(r.stats.dtlb, (1, 2));
    let expected = 3 * BASE + TLB_WALK + MEM // fetch: 1 walk + 1 line
        + (TLB_WALK + MEM) // load 1
        + (TLB_WALK + MEM) // load 2
        + MEM; // load 3: DTLB hit, new DL1 line
    assert_eq!(r.cycles, expected);
}
