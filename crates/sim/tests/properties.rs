//! Property-based tests for the platform model.

use proptest::prelude::*;
use proxima_prng::Mwc64;
use proxima_sim::{
    Addr, CacheConfig, Inst, PlacementPolicy, Platform, PlatformConfig, ReplacementPolicy,
    SetAssocCache, Tlb, TlbConfig,
};

proptest! {
    /// Random modulo never maps two lines of the same alignment window to
    /// the same set — for any window, any seed, any power-of-two geometry.
    #[test]
    fn random_modulo_intra_window_injective(
        window in 0u64..1_000_000,
        seed in any::<u64>(),
        log_sets in 4u32..10,
    ) {
        let n_sets = 1u64 << log_sets;
        let mut seen = vec![false; n_sets as usize];
        for i in 0..n_sets {
            let line = window * n_sets + i;
            let s = PlacementPolicy::RandomModulo.set_index(line, n_sets, seed) as usize;
            prop_assert!(!seen[s], "collision in window {window}");
            seen[s] = true;
        }
    }

    /// Every placement policy stays within the set range.
    #[test]
    fn placement_in_range(line in any::<u64>(), seed in any::<u64>(), log_sets in 1u32..12) {
        let n_sets = 1u64 << log_sets;
        for policy in [PlacementPolicy::Modulo, PlacementPolicy::RandomModulo, PlacementPolicy::HashRandom] {
            prop_assert!(policy.set_index(line, n_sets, seed) < n_sets);
        }
    }

    /// A line just loaded is always resident (probe sees it), regardless of
    /// policies and prior traffic.
    #[test]
    fn loaded_line_is_resident(
        traffic in prop::collection::vec(0u64..(1 << 22), 0..200),
        target in 0u64..(1 << 22),
        seed in any::<u64>(),
    ) {
        let cfg = CacheConfig::leon3_l1(PlacementPolicy::RandomModulo, ReplacementPolicy::Random);
        let mut cache = SetAssocCache::new(cfg);
        cache.reseed(seed);
        let mut rng = Mwc64::new(seed);
        for a in traffic {
            cache.access(Addr::new(a * 32), false, &mut rng);
        }
        cache.access(Addr::new(target * 32), false, &mut rng);
        prop_assert!(cache.probe(Addr::new(target * 32)));
    }

    /// Cache statistics are consistent: hits + misses equals accesses.
    #[test]
    fn cache_stats_consistent(
        accesses in prop::collection::vec((0u64..(1 << 20), any::<bool>()), 1..300),
        seed in any::<u64>(),
    ) {
        let mut cache = SetAssocCache::new(CacheConfig::default());
        cache.reseed(seed);
        let mut rng = Mwc64::new(seed);
        for (a, is_write) in &accesses {
            cache.access(Addr::new(*a), *is_write, &mut rng);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses() as usize, accesses.len());
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    /// TLB capacity invariant: after touching k ≤ entries distinct pages,
    /// all of them hit on a second pass (LRU).
    #[test]
    fn tlb_no_spurious_evictions(pages in prop::collection::hash_set(0u64..10_000, 1..64)) {
        let mut tlb = Tlb::new(TlbConfig::leon3(ReplacementPolicy::Lru));
        let mut rng = Mwc64::new(0);
        let pages: Vec<u64> = pages.into_iter().collect();
        for &p in &pages {
            tlb.access(Addr::new(p * 4096), &mut rng);
        }
        for &p in &pages {
            prop_assert!(tlb.access(Addr::new(p * 4096), &mut rng), "page {p} evicted early");
        }
    }

    /// Platform timing is deterministic per seed and strictly positive,
    /// and instruction counts are preserved, for arbitrary load traces.
    #[test]
    fn run_deterministic_and_counted(
        addrs in prop::collection::vec(0u64..(1 << 26), 1..150),
        seed in any::<u64>(),
    ) {
        let trace: Vec<Inst> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| Inst::load(0x1000 + 4 * i as u64, a))
            .collect();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let r1 = p.run(&trace, seed);
        let r2 = p.run(&trace, seed);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(r1.stats.instructions as usize, trace.len());
        prop_assert!(r1.cycles >= trace.len() as u64);
    }

    /// DET timing is seed-independent for arbitrary traces.
    #[test]
    fn det_seed_independent(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..100),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let trace: Vec<Inst> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| Inst::load(0x1000 + 4 * i as u64, a))
            .collect();
        let mut p = Platform::new(PlatformConfig::deterministic());
        prop_assert_eq!(p.run(&trace, s1).cycles, p.run(&trace, s2).cycles);
    }
}
