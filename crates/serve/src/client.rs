//! A blocking client for the analysis service.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks the framed
//! request/response protocol from [`crate::frame`]. Requests are
//! strictly sequential per connection (send one frame, read one frame);
//! open several clients for concurrency — the server multiplexes them.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{
    read_frame, write_frame, FrameError, Request, Response, ServerStats, WireSnapshot,
};

/// A blocking connection to an `mbpta serve` instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Why a call failed: transport/protocol trouble, a server-reported
/// error, or a response of the wrong shape.
#[derive(Debug)]
pub enum ClientError {
    /// The frame layer failed (transport, checksum, truncation, …).
    Frame(FrameError),
    /// The server answered [`Response::Error`].
    Server(String),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The server refused the connection at admission: it is at its
    /// concurrent-connection bound. Reconnect later — no state was
    /// touched.
    Busy {
        /// Connections being served when this one was refused.
        active: u64,
        /// The server's `max_conns` bound.
        limit: u64,
    },
    /// The server answered with an unexpected response variant.
    /// Boxed to keep the error variant small next to `Ok` payloads.
    Unexpected(Box<Response>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Busy { active, limit } => {
                write!(f, "server busy: {active}/{limit} connections — retry later")
            }
            ClientError::Unexpected(resp) => write!(f, "unexpected response: {resp:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

impl ServeClient {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from `TcpStream::connect`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and read its response.
    ///
    /// [`Response::Error`] is returned as a normal response here; the
    /// typed convenience wrappers below turn it into
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] on transport/protocol failure,
    /// [`ClientError::Disconnected`] if the server hung up.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.encode()).map_err(FrameError::Io)?;
        self.writer.flush().map_err(FrameError::Io)?;
        match read_frame(&mut self.reader)? {
            None => Err(ClientError::Disconnected),
            Some(payload) => Ok(Response::decode(&payload)?),
        }
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { message } => Err(ClientError::Server(message)),
            Response::Busy { active, limit } => Err(ClientError::Busy { active, limit }),
            response => Ok(response),
        }
    }

    /// Append `values` to `channel`. Returns the channel's accepted
    /// count, the session total, and any estimates the scheduler
    /// emitted while absorbing the batch.
    ///
    /// # Errors
    ///
    /// See [`Self::call`]; plus [`ClientError::Server`] when the server
    /// rejects the batch.
    pub fn ingest(
        &mut self,
        channel: &str,
        values: &[f64],
    ) -> Result<(u64, u64, Vec<WireSnapshot>), ClientError> {
        let request = Request::Ingest {
            channel: channel.to_string(),
            values: values.to_vec(),
        };
        match self.exchange(&request)? {
            Response::Ingested {
                channel_len,
                total,
                snapshots,
            } => Ok((channel_len, total, snapshots)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// The latest scheduler-emitted estimate for `channel`, if any.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn snapshot(&mut self, channel: &str) -> Result<Option<WireSnapshot>, ClientError> {
        match self.exchange(&Request::Snapshot {
            channel: channel.to_string(),
        })? {
            Response::Snapshot { latest } => Ok(latest),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Finalized per-channel verdicts plus the envelope at `p`
    /// (restricted to one channel when `channel` is `Some`). Returns
    /// the full [`Response::Verdicts`] for callers that want every
    /// field.
    ///
    /// # Errors
    ///
    /// See [`Self::call`]; plus [`ClientError::Server`] for an unknown
    /// channel.
    pub fn verdict(&mut self, p: f64, channel: Option<&str>) -> Result<Response, ClientError> {
        let request = Request::Verdict {
            p,
            channel: channel.map(str::to_string),
        };
        match self.exchange(&request)? {
            response @ Response::Verdicts { .. } => Ok(response),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Adopt a sealed federated shard blob as the new channel
    /// `channel`. Returns `(channel_len, total)`.
    ///
    /// # Errors
    ///
    /// See [`Self::call`]; plus [`ClientError::Server`] when the blob
    /// is corrupt, its configuration mismatches, or the channel exists.
    pub fn merge(&mut self, channel: &str, blob: &[u8]) -> Result<(u64, u64), ClientError> {
        let request = Request::Merge {
            channel: channel.to_string(),
            blob: blob.to_vec(),
        };
        match self.exchange(&request)? {
            Response::Merged { channel_len, total } => Ok((channel_len, total)),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Force a checkpoint now. Returns the blob size in bytes.
    ///
    /// # Errors
    ///
    /// See [`Self::call`]; plus [`ClientError::Server`] when no
    /// checkpoint path is configured or the write fails.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.exchange(&Request::Checkpoint)? {
            Response::Checkpointed { bytes } => Ok(bytes),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// The server's deterministic counters.
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }

    /// Ask the server to shut down (writing a final checkpoint when
    /// one is configured).
    ///
    /// # Errors
    ///
    /// See [`Self::call`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(Box::new(other))),
        }
    }
}
