//! The `mbpta serve` wire protocol: framed requests and responses over a
//! byte stream.
//!
//! Every message travels in one **frame** carrying the same envelope
//! discipline as the on-disk checkpoint codec
//! ([`proxima_mbpta::persist`]):
//!
//! ```text
//! magic "PXNF" (4) ‖ version (1) ‖ payload_len u64 LE (8)
//!                  ‖ payload (payload_len) ‖ fnv1a(payload) u64 LE (8)
//! ```
//!
//! The payload is a [`Request`] or [`Response`] encoded with the same
//! [`Writer`]/[`Reader`] primitives as checkpoints, so the service
//! reuses the battle-tested codecs for [`Verdict`], [`EngineEstimate`]
//! and federated state blobs instead of inventing a second
//! serialization.
//!
//! Decoding is defensive end to end: the length is bounds-checked
//! **before** any allocation, the checksum is verified before the
//! payload is interpreted, and every malformed input maps to a typed
//! [`FrameError`] — never a panic. A decode error poisons only the
//! connection it arrived on; see `docs/PROTOCOL.md` for the full
//! contract.

use std::fmt;
use std::io::{self, Read, Write};

use proxima_mbpta::persist::{self, Decode, Encode, Reader, Writer};
use proxima_mbpta::{EngineEstimate, Verdict};

/// Frame magic: `PXNF` ("proxima network frame").
pub const MAGIC_FRAME: [u8; 4] = *b"PXNF";

/// Hard upper bound on a frame payload (64 MiB).
///
/// Checked before the payload buffer is allocated, so a hostile or
/// corrupt length prefix cannot drive an allocation-of-doom.
pub const MAX_FRAME: u64 = 1 << 26;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The frame did not start with [`MAGIC_FRAME`].
    BadMagic([u8; 4]),
    /// The frame carried an unknown protocol version.
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_FRAME`].
    Oversized(u64),
    /// The stream ended inside a frame.
    Truncated,
    /// The payload checksum did not match.
    BadChecksum,
    /// The payload passed the checksum but did not decode as a valid
    /// message.
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "frame payload of {n} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::BadChecksum => write!(f, "frame payload checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Write one frame wrapping `payload`.
///
/// The caller owns buffering and flushing; wrap the stream in a
/// `BufWriter` and flush after each request/response exchange.
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&MAGIC_FRAME)?;
    w.write_all(&[persist::FORMAT_VERSION])?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&persist::fnv1a(payload).to_le_bytes())?;
    Ok(())
}

/// Read one frame, returning its verified payload.
///
/// Returns `Ok(None)` on a clean end-of-stream **at a frame boundary**
/// (the peer closed after the last complete frame); end-of-stream
/// anywhere inside a frame is [`FrameError::Truncated`].
///
/// # Errors
///
/// Every way a frame can be bad maps to its own [`FrameError`] variant;
/// after any error the stream position is unreliable and the connection
/// should be closed.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut magic = [0u8; 4];
    // A clean EOF before the first magic byte is the peer hanging up
    // between frames — not an error.
    let mut got = 0;
    while got < 1 {
        match r.read(&mut magic[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    r.read_exact(&mut magic[1..])?;
    if magic != MAGIC_FRAME {
        return Err(FrameError::BadMagic(magic));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != persist::FORMAT_VERSION {
        return Err(FrameError::BadVersion(version[0]));
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    if u64::from_le_bytes(checksum) != persist::fnv1a(&payload) {
        return Err(FrameError::BadChecksum);
    }
    Ok(Some(payload))
}

fn malformed(e: impl fmt::Display) -> FrameError {
    FrameError::Malformed(e.to_string())
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Append a batch of measurements to `channel`'s feed.
    Ingest {
        /// The timing channel the values belong to.
        channel: String,
        /// The measurements, in feed order.
        values: Vec<f64>,
    },
    /// Ask for the latest scheduler-emitted estimate for `channel`.
    Snapshot {
        /// The timing channel to query.
        channel: String,
    },
    /// Finalize (on a clone — the live session keeps streaming) and
    /// return per-channel verdicts plus the envelope budget at `p`.
    Verdict {
        /// Exceedance probability for the envelope budget.
        p: f64,
        /// Restrict to one channel, or `None` for every channel.
        channel: Option<String>,
    },
    /// Adopt a sealed federated shard blob (`save_federated` bytes) as
    /// a brand-new channel. Shards ship **state**, never raw data.
    Merge {
        /// The channel name the folded shard state lands under.
        channel: String,
        /// The sealed `PXFA` blob.
        blob: Vec<u8>,
    },
    /// Force a checkpoint to the server's configured path now.
    Checkpoint,
    /// Ask for the server's deterministic counters.
    Stats,
    /// Stop accepting connections and shut the server down (writing a
    /// final checkpoint first when one is configured).
    Shutdown,
}

const REQ_INGEST: u8 = 1;
const REQ_SNAPSHOT: u8 = 2;
const REQ_VERDICT: u8 = 3;
const REQ_MERGE: u8 = 4;
const REQ_CHECKPOINT: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ingest { channel, values } => {
                w.u8(REQ_INGEST);
                w.str(channel);
                values.encode(&mut w);
            }
            Request::Snapshot { channel } => {
                w.u8(REQ_SNAPSHOT);
                w.str(channel);
            }
            Request::Verdict { p, channel } => {
                w.u8(REQ_VERDICT);
                w.f64(*p);
                match channel {
                    None => w.bool(false),
                    Some(name) => {
                        w.bool(true);
                        w.str(name);
                    }
                }
            }
            Request::Merge { channel, blob } => {
                w.u8(REQ_MERGE);
                w.str(channel);
                w.bytes(blob);
            }
            Request::Checkpoint => w.u8(REQ_CHECKPOINT),
            Request::Stats => w.u8(REQ_STATS),
            Request::Shutdown => w.u8(REQ_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode from a checksum-verified frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] when the payload is not a valid
    /// request (unknown tag, bad string, trailing bytes, …).
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(malformed)?;
        let req = match tag {
            REQ_INGEST => Request::Ingest {
                channel: r.str().map_err(malformed)?.to_string(),
                values: Vec::<f64>::decode(&mut r).map_err(malformed)?,
            },
            REQ_SNAPSHOT => Request::Snapshot {
                channel: r.str().map_err(malformed)?.to_string(),
            },
            REQ_VERDICT => Request::Verdict {
                p: r.f64().map_err(malformed)?,
                channel: if r.bool().map_err(malformed)? {
                    Some(r.str().map_err(malformed)?.to_string())
                } else {
                    None
                },
            },
            REQ_MERGE => Request::Merge {
                channel: r.str().map_err(malformed)?.to_string(),
                blob: r.bytes().map_err(malformed)?.to_vec(),
            },
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown request tag {other}"
                )))
            }
        };
        r.finish().map_err(malformed)?;
        Ok(req)
    }
}

/// A snapshot as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSnapshot {
    /// The channel the estimate belongs to.
    pub channel: String,
    /// Measurements the channel had accepted when the estimate was
    /// emitted. Channel-local by design (format v2): a channel's
    /// snapshot cadence must not depend on which worker owns it or on
    /// how other channels interleave.
    pub total: u64,
    /// The channel engine's estimate.
    pub estimate: EngineEstimate,
}

impl WireSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.channel);
        w.u64(self.total);
        self.estimate.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        Ok(WireSnapshot {
            channel: r.str().map_err(malformed)?.to_string(),
            total: r.u64().map_err(malformed)?,
            estimate: EngineEstimate::decode(r).map_err(malformed)?,
        })
    }
}

/// Deterministic per-worker counters (format v2).
///
/// One entry per shard in worker order. `channels`/`total` describe the
/// worker's slice of the session; the `cache_*` counters describe its
/// private [`VerdictCache`](crate::VerdictCache). Summing a field over
/// all shards yields the matching global field in [`ServerStats`]
/// (except `cache_len`, which the global report also sums — each shard
/// bounds its own cache independently).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Channels owned by this worker.
    pub channels: u64,
    /// Measurements held by this worker's session.
    pub total: u64,
    /// Query-cache hits on this worker's cache.
    pub cache_hits: u64,
    /// Query-cache misses on this worker's cache.
    pub cache_misses: u64,
    /// Query-cache insertions on this worker's cache.
    pub cache_insertions: u64,
    /// Query-cache LRU evictions on this worker's cache.
    pub cache_evictions: u64,
    /// Query-cache TTL expirations on this worker's cache.
    pub cache_expirations: u64,
    /// Entries currently resident in this worker's cache.
    pub cache_len: u64,
}

impl ShardStats {
    fn encode(&self, w: &mut Writer) {
        for v in self.fields() {
            w.u64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, FrameError> {
        let mut s = ShardStats::default();
        for f in s.fields_mut() {
            *f = r.u64().map_err(malformed)?;
        }
        Ok(s)
    }

    fn fields(&self) -> [u64; 8] {
        [
            self.channels,
            self.total,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_expirations,
            self.cache_len,
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 8] {
        [
            &mut self.channels,
            &mut self.total,
            &mut self.cache_hits,
            &mut self.cache_misses,
            &mut self.cache_insertions,
            &mut self.cache_evictions,
            &mut self.cache_expirations,
            &mut self.cache_len,
        ]
    }
}

/// Deterministic server counters, for observability and for soak tests
/// that must assert bounded behaviour without wall clocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Measurements in the live session (ingested + adopted).
    pub total: u64,
    /// Channels in the live session.
    pub channels: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// `Ingest` frames handled.
    pub frames_ingest: u64,
    /// `Snapshot` frames handled.
    pub frames_snapshot: u64,
    /// `Verdict` frames handled.
    pub frames_verdict: u64,
    /// `Merge` frames handled.
    pub frames_merge: u64,
    /// `Checkpoint`/`Stats`/`Shutdown` frames handled.
    pub frames_admin: u64,
    /// Frames (or payloads) rejected as malformed; each one closed only
    /// its own connection.
    pub protocol_errors: u64,
    /// Query-cache hits (response served without recompute).
    pub cache_hits: u64,
    /// Query-cache misses.
    pub cache_misses: u64,
    /// Query-cache insertions.
    pub cache_insertions: u64,
    /// Query-cache FIFO evictions.
    pub cache_evictions: u64,
    /// Entries currently cached (≤ `cache_capacity`, always).
    pub cache_len: u64,
    /// Configured cache capacity.
    pub cache_capacity: u64,
    /// Checkpoints written (auto + forced + shutdown).
    pub checkpoints_written: u64,
    /// Size of the last checkpoint (manifest + shard blobs), bytes.
    pub last_checkpoint_bytes: u64,
    /// Measurements ingested since the last checkpoint mark.
    pub since_checkpoint: u64,
    /// Query-cache TTL expirations (summed over workers).
    pub cache_expirations: u64,
    /// Connections refused by admission control with a `Busy` frame.
    pub busy_rejections: u64,
    /// Analysis worker threads the session is partitioned across.
    pub workers: u64,
    /// Per-worker counters, in worker order (format v2).
    pub shards: Vec<ShardStats>,
}

impl ServerStats {
    fn encode(&self, w: &mut Writer) {
        for v in self.fields() {
            w.u64(v);
        }
        w.usize(self.shards.len());
        for shard in &self.shards {
            shard.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>, payload_len: usize) -> Result<Self, FrameError> {
        let mut s = ServerStats::default();
        for f in s.fields_mut() {
            *f = r.u64().map_err(malformed)?;
        }
        let n = r.usize().map_err(malformed)?;
        if n > payload_len {
            return Err(FrameError::Malformed(format!(
                "shard count {n} exceeds the payload size"
            )));
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardStats::decode(r)?);
        }
        s.shards = shards;
        Ok(s)
    }

    fn fields(&self) -> [u64; 21] {
        [
            self.total,
            self.channels,
            self.connections,
            self.frames_ingest,
            self.frames_snapshot,
            self.frames_verdict,
            self.frames_merge,
            self.frames_admin,
            self.protocol_errors,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_len,
            self.cache_capacity,
            self.checkpoints_written,
            self.last_checkpoint_bytes,
            self.since_checkpoint,
            self.cache_expirations,
            self.busy_rejections,
            self.workers,
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 21] {
        [
            &mut self.total,
            &mut self.channels,
            &mut self.connections,
            &mut self.frames_ingest,
            &mut self.frames_snapshot,
            &mut self.frames_verdict,
            &mut self.frames_merge,
            &mut self.frames_admin,
            &mut self.protocol_errors,
            &mut self.cache_hits,
            &mut self.cache_misses,
            &mut self.cache_insertions,
            &mut self.cache_evictions,
            &mut self.cache_len,
            &mut self.cache_capacity,
            &mut self.checkpoints_written,
            &mut self.last_checkpoint_bytes,
            &mut self.since_checkpoint,
            &mut self.cache_expirations,
            &mut self.busy_rejections,
            &mut self.workers,
        ]
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of an [`Request::Ingest`].
    Ingested {
        /// Measurements routed to the channel so far.
        channel_len: u64,
        /// Session-wide measurement count.
        total: u64,
        /// Estimates the session scheduler emitted while absorbing the
        /// batch (may belong to other channels — round-robin cadence).
        snapshots: Vec<WireSnapshot>,
    },
    /// Outcome of a [`Request::Snapshot`].
    Snapshot {
        /// The latest scheduler-emitted estimate for the channel, if
        /// any has been produced yet.
        latest: Option<WireSnapshot>,
    },
    /// Outcome of a [`Request::Verdict`].
    Verdicts {
        /// The queried exceedance probability, echoed back.
        p: f64,
        /// Per-channel outcomes (verdict or scoped error rendering).
        channels: Vec<(String, Result<Verdict, String>)>,
        /// Envelope budget at `p` with the winning channel, when at
        /// least one channel analysed; `Err` carries the reason
        /// otherwise.
        envelope: Result<(String, f64), String>,
    },
    /// Outcome of a [`Request::Merge`].
    Merged {
        /// Measurements the adopted channel folded in.
        channel_len: u64,
        /// Session-wide measurement count after adoption.
        total: u64,
    },
    /// Outcome of a [`Request::Checkpoint`].
    Checkpointed {
        /// Size of the written blob, bytes.
        bytes: u64,
    },
    /// Outcome of a [`Request::Stats`].
    Stats(ServerStats),
    /// Acknowledges a [`Request::Shutdown`]; the server stops accepting
    /// connections after sending this.
    ShuttingDown,
    /// Admission control refused the connection: the server is at its
    /// connection limit. Sent as a farewell immediately after accept;
    /// the server closes the connection right after. Retry later —
    /// nothing was processed.
    Busy {
        /// Connections being served when this one was refused.
        active: u64,
        /// The configured `--max-conns` limit.
        limit: u64,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

const RESP_INGESTED: u8 = 1;
const RESP_SNAPSHOT: u8 = 2;
const RESP_VERDICTS: u8 = 3;
const RESP_MERGED: u8 = 4;
const RESP_CHECKPOINTED: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_SHUTTING_DOWN: u8 = 7;
const RESP_BUSY: u8 = 8;
const RESP_ERROR: u8 = 255;

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Ingested {
                channel_len,
                total,
                snapshots,
            } => {
                w.u8(RESP_INGESTED);
                w.u64(*channel_len);
                w.u64(*total);
                w.usize(snapshots.len());
                for s in snapshots {
                    s.encode(&mut w);
                }
            }
            Response::Snapshot { latest } => {
                w.u8(RESP_SNAPSHOT);
                match latest {
                    None => w.bool(false),
                    Some(s) => {
                        w.bool(true);
                        s.encode(&mut w);
                    }
                }
            }
            Response::Verdicts {
                p,
                channels,
                envelope,
            } => {
                w.u8(RESP_VERDICTS);
                w.f64(*p);
                w.usize(channels.len());
                for (channel, outcome) in channels {
                    w.str(channel);
                    match outcome {
                        Ok(v) => {
                            w.bool(true);
                            v.encode(&mut w);
                        }
                        Err(e) => {
                            w.bool(false);
                            w.str(e);
                        }
                    }
                }
                match envelope {
                    Ok((winner, budget)) => {
                        w.bool(true);
                        w.str(winner);
                        w.f64(*budget);
                    }
                    Err(e) => {
                        w.bool(false);
                        w.str(e);
                    }
                }
            }
            Response::Merged { channel_len, total } => {
                w.u8(RESP_MERGED);
                w.u64(*channel_len);
                w.u64(*total);
            }
            Response::Checkpointed { bytes } => {
                w.u8(RESP_CHECKPOINTED);
                w.u64(*bytes);
            }
            Response::Stats(stats) => {
                w.u8(RESP_STATS);
                stats.encode(&mut w);
            }
            Response::ShuttingDown => w.u8(RESP_SHUTTING_DOWN),
            Response::Busy { active, limit } => {
                w.u8(RESP_BUSY);
                w.u64(*active);
                w.u64(*limit);
            }
            Response::Error { message } => {
                w.u8(RESP_ERROR);
                w.str(message);
            }
        }
        w.into_bytes()
    }

    /// Decode from a checksum-verified frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] when the payload is not a valid
    /// response.
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(payload);
        let tag = r.u8().map_err(malformed)?;
        let resp = match tag {
            RESP_INGESTED => {
                let channel_len = r.u64().map_err(malformed)?;
                let total = r.u64().map_err(malformed)?;
                let n = r.usize().map_err(malformed)?;
                if n > payload.len() {
                    return Err(FrameError::Malformed(format!(
                        "snapshot count {n} exceeds the payload size"
                    )));
                }
                let mut snapshots = Vec::with_capacity(n);
                for _ in 0..n {
                    snapshots.push(WireSnapshot::decode(&mut r)?);
                }
                Response::Ingested {
                    channel_len,
                    total,
                    snapshots,
                }
            }
            RESP_SNAPSHOT => Response::Snapshot {
                latest: if r.bool().map_err(malformed)? {
                    Some(WireSnapshot::decode(&mut r)?)
                } else {
                    None
                },
            },
            RESP_VERDICTS => {
                let p = r.f64().map_err(malformed)?;
                let n = r.usize().map_err(malformed)?;
                if n > payload.len() {
                    return Err(FrameError::Malformed(format!(
                        "channel count {n} exceeds the payload size"
                    )));
                }
                let mut channels = Vec::with_capacity(n);
                for _ in 0..n {
                    let channel = r.str().map_err(malformed)?.to_string();
                    let outcome = if r.bool().map_err(malformed)? {
                        Ok(Verdict::decode(&mut r).map_err(malformed)?)
                    } else {
                        Err(r.str().map_err(malformed)?.to_string())
                    };
                    channels.push((channel, outcome));
                }
                let envelope = if r.bool().map_err(malformed)? {
                    let winner = r.str().map_err(malformed)?.to_string();
                    Ok((winner, r.f64().map_err(malformed)?))
                } else {
                    Err(r.str().map_err(malformed)?.to_string())
                };
                Response::Verdicts {
                    p,
                    channels,
                    envelope,
                }
            }
            RESP_MERGED => Response::Merged {
                channel_len: r.u64().map_err(malformed)?,
                total: r.u64().map_err(malformed)?,
            },
            RESP_CHECKPOINTED => Response::Checkpointed {
                bytes: r.u64().map_err(malformed)?,
            },
            RESP_STATS => Response::Stats(ServerStats::decode(&mut r, payload.len())?),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_BUSY => Response::Busy {
                active: r.u64().map_err(malformed)?,
                limit: r.u64().map_err(malformed)?,
            },
            RESP_ERROR => Response::Error {
                message: r.str().map_err(malformed)?.to_string(),
            },
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown response tag {other}"
                )))
            }
        };
        r.finish().map_err(malformed)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello mbpta".to_vec();
        let buf = framed(&payload);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload));
        // Clean EOF at the frame boundary.
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn back_to_back_frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"three").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"three");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut buf = framed(b"payload");
        buf[0] = b'Q';
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = framed(b"payload");
        buf[4] = 99;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::BadVersion(99)), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = framed(b"payload");
        buf[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(u64::MAX)), "{err}");
    }

    #[test]
    fn truncation_at_every_boundary_is_detected() {
        let buf = framed(b"some payload bytes");
        // Cutting anywhere after the first byte and before the end must
        // yield Truncated — never a panic, never a bogus frame.
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut={cut}: {err}");
        }
        // Cutting to zero bytes is a clean EOF.
        assert_eq!(read_frame(&mut &buf[..0]).unwrap(), None);
    }

    #[test]
    fn payload_bitflip_fails_checksum() {
        let mut buf = framed(b"some payload bytes");
        buf[13] ^= 0x40; // first payload byte
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum), "{err}");
    }

    #[test]
    fn checksum_bitflip_fails_checksum() {
        let mut buf = framed(b"some payload bytes");
        let last = buf.len() - 1;
        buf[last] ^= 1;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum), "{err}");
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ingest {
                channel: "nominal".into(),
                values: vec![1.5, 2.5, f64::MAX, 0.0],
            },
            Request::Snapshot {
                channel: "ch-0".into(),
            },
            Request::Verdict {
                p: 1e-12,
                channel: None,
            },
            Request::Verdict {
                p: 1e-9,
                channel: Some("ulp".into()),
            },
            Request::Merge {
                channel: "shard-3".into(),
                blob: vec![0xAB; 257],
            },
            Request::Checkpoint,
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let snapshot = WireSnapshot {
            channel: "nominal".into(),
            total: 4100,
            estimate: sample_estimate(),
        };
        let responses = [
            Response::Ingested {
                channel_len: 7,
                total: 4100,
                snapshots: vec![snapshot.clone()],
            },
            Response::Snapshot {
                latest: Some(snapshot.clone()),
            },
            Response::Snapshot { latest: None },
            Response::Merged {
                channel_len: 900,
                total: 5000,
            },
            Response::Checkpointed { bytes: 12345 },
            Response::Stats(ServerStats {
                total: 42,
                cache_hits: 7,
                cache_expirations: 3,
                busy_rejections: 2,
                workers: 2,
                shards: vec![
                    ShardStats {
                        channels: 1,
                        total: 30,
                        cache_hits: 7,
                        cache_expirations: 3,
                        ..Default::default()
                    },
                    ShardStats {
                        channels: 2,
                        total: 12,
                        ..Default::default()
                    },
                ],
                ..Default::default()
            }),
            Response::Stats(ServerStats::default()),
            Response::ShuttingDown,
            Response::Busy {
                active: 64,
                limit: 64,
            },
            Response::Error {
                message: "nope".into(),
            },
            Response::Verdicts {
                p: 1e-12,
                channels: vec![("bad".into(), Err("i.i.d. gate rejected".into()))],
                envelope: Err("session analysed no channel".into()),
            },
        ];
        for resp in responses {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn unknown_tags_are_malformed() {
        let mut w = Writer::new();
        w.u8(200);
        let payload = w.into_bytes();
        assert!(matches!(
            Request::decode(&payload),
            Err(FrameError::Malformed(_))
        ));
        let mut w = Writer::new();
        w.u8(0);
        let payload = w.into_bytes();
        assert!(matches!(
            Response::decode(&payload),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = Request::Stats.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(FrameError::Malformed(_))
        ));
    }

    fn sample_estimate() -> EngineEstimate {
        use proxima_mbpta::Pwcet;
        use proxima_stats::dist::Gumbel;
        EngineEstimate {
            n: 4100,
            blocks: Some(41),
            pwcet: 1234.5,
            distribution: Pwcet::new(Gumbel::new(1000.0, 25.0).unwrap(), 100),
            ci: None,
            convergence_delta: Some(0.004),
            iid: None,
            converged: false,
            high_watermark: 1100.0,
        }
    }

    proptest! {
        /// Any byte soup either reads as a frame whose payload round
        /// trips, or fails with a typed error — never a panic.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = read_frame(&mut &bytes[..]);
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        /// Payload round trip through the frame envelope.
        #[test]
        fn frame_payload_round_trips(payload in proptest::collection::vec(0u8..=255, 0..512)) {
            let buf = framed(&payload);
            prop_assert_eq!(read_frame(&mut &buf[..]).unwrap(), Some(payload));
        }

        /// A single corrupted byte anywhere in the frame is rejected
        /// (or, if it lands in the payload-length prefix, at worst reads
        /// as truncated) — it never yields a different payload.
        #[test]
        fn single_bitflip_never_yields_wrong_payload(
            payload in proptest::collection::vec(0u8..=255, 1..64),
            pos in 0usize..64,
            bit in 0u8..8,
        ) {
            let mut buf = framed(&payload);
            let pos = pos % buf.len();
            buf[pos] ^= 1 << bit;
            if let Ok(Some(read)) = read_frame(&mut &buf[..]) {
                prop_assert_eq!(read, payload);
            }
        }
    }
}
