//! Fingerprint-keyed query cache for snapshot/verdict responses.
//!
//! Finalizing a verdict clones the session and refits every channel —
//! cheap once, wasteful when a dashboard polls the same question
//! between ingests. The cache stores **encoded response payloads**
//! keyed by a fingerprint of everything the answer depends on:
//!
//! * the analysis-configuration fingerprint (stream config + cadences),
//! * the query kind and its parameters (channel, probability bits),
//! * the ingest progress the answer was computed at (per-channel
//!   count, or the session total for cross-channel queries).
//!
//! Folding the progress counters into the key makes invalidation
//! automatic: any ingest or merge moves the counters, so stale entries
//! simply stop being addressed and age out of the LRU. Repeat queries
//! between ingests are O(log n) — frame decode, one hash, one map
//! lookup, one recency refresh.
//!
//! Keys follow the FERN fingerprinting discipline (arXiv 2405.04435):
//! hash the *canonical encoding* of the inputs, never ad-hoc string
//! concatenation, so two queries collide only when their answers must
//! be bit-identical.
//!
//! Eviction is least-recently-*used* (a hit refreshes recency), not
//! FIFO: a dashboard that re-asks the same two questions between
//! ingests keeps them resident no matter how many one-off queries pass
//! through. Recency is a monotonic tick in a `BTreeMap`, so eviction
//! order is a pure function of the request sequence — the
//! `no-unordered-iter` lint rule can vouch for it, and so can a replay.
//!
//! An optional **opportunistic TTL** bounds how long an entry may stay
//! addressable, measured in the same logical ticks (never the wall
//! clock — expiry must replay deterministically). An entry older than
//! `ttl` ticks is dropped the next time it is touched: a `get` that
//! lands on it counts one expiry plus one miss, and every `insert`
//! sweeps expired entries from the cold end of the recency order
//! before applying the LRU bound. Nothing scans the whole cache —
//! expiry rides on operations that were happening anyway.

use std::collections::{BTreeMap, HashMap};

use proxima_mbpta::persist::{self, Encode, Writer};

/// One cached response with its bookkeeping ticks.
#[derive(Debug)]
struct Entry {
    payload: Vec<u8>,
    /// Recency tick of the last touch (mirrored in `recency`).
    touched: u64,
    /// Tick at which the payload was (re-)inserted; expiry measures
    /// from here, so refreshing recency does not extend a stale
    /// entry's life.
    inserted: u64,
}

/// LRU-bounded map from query fingerprint to encoded response payload.
#[derive(Debug)]
pub struct VerdictCache {
    capacity: usize,
    /// Entries older than this many ticks expire on touch (0 = never).
    ttl: u64,
    map: HashMap<u64, Entry>,
    /// Recency tick → key, oldest first. Mirrors `map` exactly: every
    /// entry holds the tick stored alongside its payload.
    recency: BTreeMap<u64, u64>,
    /// Monotonic logical clock; bumps on every get-hit and insert.
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    expirations: u64,
}

impl VerdictCache {
    /// Create a cache holding at most `capacity` responses, with no
    /// expiry.
    ///
    /// A capacity of 0 disables caching: every `get` misses and every
    /// `insert` is dropped.
    pub fn new(capacity: usize) -> Self {
        VerdictCache::with_ttl(capacity, 0)
    }

    /// Create a cache holding at most `capacity` responses whose
    /// entries expire once they are older than `ttl` logical ticks
    /// (one tick per get-hit or insert; `ttl` 0 disables expiry).
    ///
    /// "Older than" is strict: an entry inserted at tick `t` still
    /// answers a touch at tick `t + ttl` and is dropped by the first
    /// touch at `t + ttl + 1` — see [`Self::expired`] for why the
    /// boundary sits there.
    pub fn with_ttl(capacity: usize, ttl: u64) -> Self {
        VerdictCache {
            capacity,
            ttl,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            expirations: 0,
        }
    }

    /// `true` when `inserted` is more than `ttl` ticks behind `now`.
    ///
    /// The boundary is **inclusive-exclusive**: an entry inserted at
    /// tick `t` is still live when touched at tick `t + ttl` (age
    /// exactly `ttl` is a hit) and expires on the first touch at
    /// `t + ttl + 1` or later. The strict `>` is what makes an
    /// insert-then-query at the same logical instant safe for every
    /// positive ttl: a `get` issued right after an `insert` sees age 1,
    /// so even `ttl = 1` answers it from the cache. A `>=` here would
    /// silently turn `ttl = 1` into "never hits".
    fn expired(&self, inserted: u64, now: u64) -> bool {
        self.ttl > 0 && now.saturating_sub(inserted) > self.ttl
    }

    /// Look up the encoded response for `key`, counting a hit or miss.
    /// A hit refreshes the entry's recency; a lookup that lands on an
    /// expired entry drops it and counts one expiry plus one miss.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        let now = self.tick + 1;
        let stale = self
            .map
            .get(&key)
            .is_some_and(|entry| self.expired(entry.inserted, now));
        if stale {
            if let Some(entry) = self.map.remove(&key) {
                self.recency.remove(&entry.touched);
            }
            self.expirations += 1;
            self.misses += 1;
            return None;
        }
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                let bytes = entry.payload.clone();
                self.tick = now;
                self.recency.remove(&entry.touched);
                entry.touched = now;
                self.recency.insert(now, key);
                Some(bytes)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the encoded response for `key`, sweeping expired entries
    /// from the cold end and then evicting the least-recently-used
    /// entry once the cache is full. Re-inserting an existing key
    /// replaces its payload and refreshes both its recency and its
    /// expiry clock.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let entry = Entry {
            payload: value,
            touched: self.tick,
            inserted: self.tick,
        };
        match self.map.insert(key, entry) {
            Some(old) => {
                self.recency.remove(&old.touched);
            }
            None => {
                self.insertions += 1;
            }
        }
        self.recency.insert(self.tick, key);
        // Opportunistic sweep: the coldest entries are also the ones
        // most likely stale, so walk from the cold end while they are
        // expired. Stops at the first live entry — O(expired), not
        // O(cache).
        while let Some((&coldest_tick, &coldest_key)) = self.recency.first_key_value() {
            let stale = self
                .map
                .get(&coldest_key)
                .is_some_and(|e| self.expired(e.inserted, self.tick));
            if !stale {
                break;
            }
            self.recency.remove(&coldest_tick);
            self.map.remove(&coldest_key);
            self.expirations += 1;
        }
        while self.map.len() > self.capacity {
            // pop_first is the coldest tick; the mirror invariant
            // guarantees its key is present in the map.
            if let Some((_, coldest)) = self.recency.pop_first() {
                self.map.remove(&coldest);
                self.evictions += 1;
            }
        }
    }

    /// Entries currently held (always ≤ [`Self::capacity`]).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Responses stored.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries dropped to respect the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Entries dropped because they outlived the TTL.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }
}

/// Fingerprint an analysis configuration: FNV-1a over the canonical
/// encoding of anything that changes what a query would answer.
///
/// Use one fingerprint per server/session lifetime and fold it into
/// every [`query_key`].
pub fn config_fingerprint(parts: &[&dyn Encode]) -> u64 {
    let mut w = Writer::new();
    for part in parts {
        part.encode(&mut w);
    }
    persist::fnv1a(&w.into_bytes())
}

/// Build the cache key for one query.
///
/// `progress` is the ingest position the answer depends on: the
/// channel's accepted count for per-channel queries, the session total
/// for cross-channel ones. Any ingest moves it, which is what
/// invalidates stale entries. `p_bits` carries the probability as raw
/// bits (`f64::to_bits`) so distinct cutoffs never alias.
pub fn query_key(
    config_fingerprint: u64,
    kind: u8,
    channel: &str,
    progress: u64,
    p_bits: u64,
) -> u64 {
    let mut w = Writer::new();
    w.u64(config_fingerprint);
    w.u8(kind);
    w.str(channel);
    w.u64(progress);
    w.u64(p_bits);
    persist::fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = VerdictCache::new(4);
        let key = query_key(1, 2, "ch", 100, 0);
        assert_eq!(cache.get(key), None);
        cache.insert(key, vec![1, 2, 3]);
        assert_eq!(cache.get(key), Some(vec![1, 2, 3]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn progress_in_key_invalidates_on_ingest() {
        let mut cache = VerdictCache::new(4);
        let before = query_key(1, 2, "ch", 100, 0);
        cache.insert(before, vec![9]);
        // After more measurements arrive the progress counter moved, so
        // the same logical query addresses a different key.
        let after = query_key(1, 2, "ch", 150, 0);
        assert_ne!(before, after);
        assert_eq!(cache.get(after), None);
    }

    #[test]
    fn distinct_probabilities_never_alias() {
        let a = query_key(1, 3, "*", 100, 1e-12f64.to_bits());
        let b = query_key(1, 3, "*", 100, 1e-9f64.to_bits());
        assert_ne!(a, b);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut cache = VerdictCache::new(2);
        let keys: Vec<u64> = (0..4).map(|i| query_key(7, 1, "ch", i, 0)).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, vec![i as u8]);
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.evictions(), 2);
        // With no touches between inserts, LRU degenerates to FIFO:
        // oldest two gone, newest two present.
        assert_eq!(cache.get(keys[0]), None);
        assert_eq!(cache.get(keys[1]), None);
        assert_eq!(cache.get(keys[2]), Some(vec![2]));
        assert_eq!(cache.get(keys[3]), Some(vec![3]));
    }

    #[test]
    fn hit_refreshes_recency_and_redirects_eviction() {
        let mut cache = VerdictCache::new(2);
        let keys: Vec<u64> = (0..3).map(|i| query_key(7, 1, "ch", i, 0)).collect();
        cache.insert(keys[0], vec![0]);
        cache.insert(keys[1], vec![1]);
        // Touch the older entry: now keys[1] is the LRU victim.
        assert_eq!(cache.get(keys[0]), Some(vec![0]));
        cache.insert(keys[2], vec![2]);
        assert_eq!(cache.get(keys[1]), None, "untouched entry evicts first");
        assert_eq!(cache.get(keys[0]), Some(vec![0]), "touched entry survives");
        assert_eq!(cache.get(keys[2]), Some(vec![2]));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn repeat_hits_keep_working_set_resident_through_churn() {
        let mut cache = VerdictCache::new(2);
        let hot = query_key(7, 1, "hot", 1, 0);
        cache.insert(hot, vec![42]);
        for i in 0..50 {
            let one_off = query_key(7, 1, "cold", i, 0);
            cache.insert(one_off, vec![i as u8]);
            // The dashboard re-asks its question between one-offs.
            assert_eq!(cache.get(hot), Some(vec![42]), "iteration {i}");
        }
        assert_eq!(
            cache.evictions(),
            49,
            "every one-off evicted the prior one-off"
        );
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let mut cache = VerdictCache::new(2);
        let key = query_key(7, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        cache.insert(key, vec![2]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.get(key), Some(vec![2]));
    }

    #[test]
    fn recency_mirror_stays_consistent() {
        // Interleave inserts, hits, and re-inserts, then check the
        // map/recency mirror invariant the evictor relies on.
        let mut cache = VerdictCache::new(3);
        let keys: Vec<u64> = (0..6).map(|i| query_key(9, 1, "ch", i, 0)).collect();
        for round in 0..4 {
            for (i, &k) in keys.iter().enumerate() {
                if (i + round) % 2 == 0 {
                    cache.insert(k, vec![i as u8, round as u8]);
                } else {
                    let _ = cache.get(k);
                }
            }
        }
        assert!(cache.len() <= 3);
        assert_eq!(cache.map.len(), cache.recency.len());
        for (tick, key) in &cache.recency {
            assert_eq!(cache.map.get(key).map(|e| &e.touched), Some(tick));
        }
    }

    #[test]
    fn ttl_zero_never_expires() {
        let mut cache = VerdictCache::new(4);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        for i in 0..1000 {
            let churn = query_key(1, 1, "other", i, 0);
            cache.insert(churn, vec![0]);
            // Keep the entry LRU-hot so only expiry could drop it.
            assert_eq!(cache.get(key), Some(vec![1]), "tick {i}");
        }
        assert_eq!(cache.expirations(), 0);
    }

    #[test]
    fn expired_entry_counts_expiry_plus_miss_on_get() {
        // ttl = 2 ticks; insert (tick 1), then two churn inserts push
        // the clock to 3, so the lookup at tick 4 finds the entry
        // 3 ticks old — expired.
        let mut cache = VerdictCache::with_ttl(8, 2);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        cache.insert(query_key(1, 1, "a", 1, 0), vec![0]);
        cache.insert(query_key(1, 1, "b", 1, 0), vec![0]);
        assert_eq!(cache.get(key), None);
        assert_eq!(cache.expirations(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 2, "expired entry left the map");
    }

    #[test]
    fn fresh_entry_still_hits_within_ttl() {
        let mut cache = VerdictCache::with_ttl(8, 3);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        cache.insert(query_key(1, 1, "a", 1, 0), vec![0]);
        // Lookup at tick 3: the entry is 2 ticks old, within ttl 3.
        assert_eq!(cache.get(key), Some(vec![1]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.expirations(), 0);
    }

    #[test]
    fn recency_refresh_does_not_extend_ttl() {
        // Hits refresh recency but not the insertion tick: an entry
        // re-read forever still expires ttl ticks after its insert.
        let mut cache = VerdictCache::with_ttl(8, 3);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]); // tick 1
        assert_eq!(cache.get(key), Some(vec![1])); // tick 2, age 1
        assert_eq!(cache.get(key), Some(vec![1])); // tick 3, age 2
        assert_eq!(cache.get(key), Some(vec![1])); // tick 4, age 3
        assert_eq!(cache.get(key), None, "age 4 > ttl 3"); // tick would be 5
        assert_eq!(cache.expirations(), 1);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn entry_survives_a_touch_at_exactly_ttl_ticks() {
        // The expiry boundary is inclusive on the near side: age == ttl
        // is still a hit. ttl = 3; insert at tick 1, two churn inserts
        // advance the clock to 3, and a get evaluates at now = tick + 1
        // = 4 — the entry is exactly ttl ticks old.
        let mut cache = VerdictCache::with_ttl(8, 3);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![7]); // tick 1
        cache.insert(query_key(1, 1, "a", 1, 0), vec![0]); // tick 2
        cache.insert(query_key(1, 1, "b", 1, 0), vec![0]); // tick 3
                                                           // Lookup evaluates at now = 4: age 3 == ttl 3 → still live.
        assert_eq!(cache.get(key), Some(vec![7]), "age == ttl must hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.expirations(), 0);
    }

    #[test]
    fn entry_expires_one_tick_past_ttl() {
        // ...and exclusive on the far side: age == ttl + 1 is the first
        // tick that misses. Same shape as above with one more churn
        // insert between.
        let mut cache = VerdictCache::with_ttl(8, 3);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![7]); // tick 1
        cache.insert(query_key(1, 1, "a", 1, 0), vec![0]); // tick 2
        cache.insert(query_key(1, 1, "b", 1, 0), vec![0]); // tick 3
        cache.insert(query_key(1, 1, "c", 1, 0), vec![0]); // tick 4
                                                           // Lookup evaluates at now = 5: age 4 == ttl + 1 → expired.
        assert_eq!(cache.get(key), None, "age == ttl + 1 must expire");
        assert_eq!(cache.expirations(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn same_instant_insert_then_query_never_expires() {
        // An insert immediately followed by its own lookup must hit for
        // every positive ttl — in particular the smallest one. With a
        // `>=` boundary, ttl = 1 would expire its own insert.
        let mut cache = VerdictCache::with_ttl(8, 1);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![7]);
        assert_eq!(
            cache.get(key),
            Some(vec![7]),
            "back-to-back insert+get must hit at ttl 1"
        );
        assert_eq!(cache.expirations(), 0);
        // One more hit advances the clock past the ttl; the next touch
        // is the first one strictly past the boundary and expires.
        assert_eq!(cache.get(key), None, "second touch is age 2 > ttl 1");
        assert_eq!(cache.expirations(), 1);
    }

    #[test]
    fn reinsert_restarts_the_expiry_clock() {
        let mut cache = VerdictCache::with_ttl(8, 2);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]); // tick 1
        cache.insert(query_key(1, 1, "a", 1, 0), vec![0]); // tick 2
        cache.insert(key, vec![2]); // tick 3: clock restarts
        cache.insert(query_key(1, 1, "b", 1, 0), vec![0]); // tick 4
        assert_eq!(cache.get(key), Some(vec![2]), "age 2 ≤ ttl 2");
        assert_eq!(cache.expirations(), 0);
    }

    #[test]
    fn insert_sweeps_expired_entries_from_the_cold_end() {
        let mut cache = VerdictCache::with_ttl(16, 2);
        let a = query_key(1, 1, "a", 1, 0);
        let b = query_key(1, 1, "b", 1, 0);
        cache.insert(a, vec![1]); // tick 1
        cache.insert(b, vec![2]); // tick 2
        cache.insert(query_key(1, 1, "c", 1, 0), vec![0]); // tick 3: none stale yet
        cache.insert(query_key(1, 1, "d", 1, 0), vec![0]); // tick 4: sweeps a (age 3)
        cache.insert(query_key(1, 1, "e", 1, 0), vec![0]); // tick 5: sweeps b (age 3)
        assert_eq!(cache.expirations(), 2, "a and b swept without any get");
        assert_eq!(cache.len(), 3, "c, d, e remain — sweep stopped at live c");
        assert_eq!(cache.misses(), 0, "sweep never counts misses");
    }

    #[test]
    fn expiry_is_a_pure_function_of_the_request_sequence() {
        // Replaying the same operation sequence twice must produce
        // identical counters and contents — tick-based expiry has no
        // hidden wall-clock input.
        let run = || {
            let mut cache = VerdictCache::with_ttl(4, 3);
            let mut trace = Vec::new();
            for i in 0..40u64 {
                let key = query_key(5, 1, "ch", i % 6, 0);
                if i % 3 == 0 {
                    cache.insert(key, vec![i as u8]);
                } else {
                    trace.push(cache.get(key));
                }
            }
            (
                trace,
                cache.hits(),
                cache.misses(),
                cache.expirations(),
                cache.evictions(),
                cache.len(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = VerdictCache::new(0);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(key), None);
    }

    #[test]
    fn config_fingerprint_separates_configs() {
        let a = config_fingerprint(&[&42u64, &true]);
        let b = config_fingerprint(&[&43u64, &true]);
        assert_ne!(a, b);
    }
}
