//! Fingerprint-keyed query cache for snapshot/verdict responses.
//!
//! Finalizing a verdict clones the session and refits every channel —
//! cheap once, wasteful when a dashboard polls the same question
//! between ingests. The cache stores **encoded response payloads**
//! keyed by a fingerprint of everything the answer depends on:
//!
//! * the analysis-configuration fingerprint (stream config + cadences),
//! * the query kind and its parameters (channel, probability bits),
//! * the ingest progress the answer was computed at (per-channel
//!   count, or the session total for cross-channel queries).
//!
//! Folding the progress counters into the key makes invalidation
//! automatic: any ingest or merge moves the counters, so stale entries
//! simply stop being addressed and age out of the LRU. Repeat queries
//! between ingests are O(log n) — frame decode, one hash, one map
//! lookup, one recency refresh.
//!
//! Keys follow the FERN fingerprinting discipline (arXiv 2405.04435):
//! hash the *canonical encoding* of the inputs, never ad-hoc string
//! concatenation, so two queries collide only when their answers must
//! be bit-identical.
//!
//! Eviction is least-recently-*used* (a hit refreshes recency), not
//! FIFO: a dashboard that re-asks the same two questions between
//! ingests keeps them resident no matter how many one-off queries pass
//! through. Recency is a monotonic tick in a `BTreeMap`, so eviction
//! order is a pure function of the request sequence — the
//! `no-unordered-iter` lint rule can vouch for it, and so can a replay.

use std::collections::{BTreeMap, HashMap};

use proxima_mbpta::persist::{self, Encode, Writer};

/// LRU-bounded map from query fingerprint to encoded response payload.
#[derive(Debug)]
pub struct VerdictCache {
    capacity: usize,
    /// Key → (payload, recency tick of its last touch).
    map: HashMap<u64, (Vec<u8>, u64)>,
    /// Recency tick → key, oldest first. Mirrors `map` exactly: every
    /// entry holds the tick stored alongside its payload.
    recency: BTreeMap<u64, u64>,
    /// Monotonic logical clock; bumps on every get-hit and insert.
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl VerdictCache {
    /// Create a cache holding at most `capacity` responses.
    ///
    /// A capacity of 0 disables caching: every `get` misses and every
    /// `insert` is dropped.
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Look up the encoded response for `key`, counting a hit or miss.
    /// A hit refreshes the entry's recency.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.map.get_mut(&key) {
            Some((bytes, touched)) => {
                self.hits += 1;
                let bytes = bytes.clone();
                self.tick += 1;
                self.recency.remove(touched);
                *touched = self.tick;
                self.recency.insert(self.tick, key);
                Some(bytes)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the encoded response for `key`, evicting the
    /// least-recently-used entry once the cache is full. Re-inserting
    /// an existing key replaces its payload and refreshes its recency.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        match self.map.insert(key, (value, self.tick)) {
            Some((_, old_tick)) => {
                self.recency.remove(&old_tick);
            }
            None => {
                self.insertions += 1;
            }
        }
        self.recency.insert(self.tick, key);
        while self.map.len() > self.capacity {
            // pop_first is the coldest tick; the mirror invariant
            // guarantees its key is present in the map.
            if let Some((_, coldest)) = self.recency.pop_first() {
                self.map.remove(&coldest);
                self.evictions += 1;
            }
        }
    }

    /// Entries currently held (always ≤ [`Self::capacity`]).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Responses stored.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries dropped to respect the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Fingerprint an analysis configuration: FNV-1a over the canonical
/// encoding of anything that changes what a query would answer.
///
/// Use one fingerprint per server/session lifetime and fold it into
/// every [`query_key`].
pub fn config_fingerprint(parts: &[&dyn Encode]) -> u64 {
    let mut w = Writer::new();
    for part in parts {
        part.encode(&mut w);
    }
    persist::fnv1a(&w.into_bytes())
}

/// Build the cache key for one query.
///
/// `progress` is the ingest position the answer depends on: the
/// channel's accepted count for per-channel queries, the session total
/// for cross-channel ones. Any ingest moves it, which is what
/// invalidates stale entries. `p_bits` carries the probability as raw
/// bits (`f64::to_bits`) so distinct cutoffs never alias.
pub fn query_key(
    config_fingerprint: u64,
    kind: u8,
    channel: &str,
    progress: u64,
    p_bits: u64,
) -> u64 {
    let mut w = Writer::new();
    w.u64(config_fingerprint);
    w.u8(kind);
    w.str(channel);
    w.u64(progress);
    w.u64(p_bits);
    persist::fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = VerdictCache::new(4);
        let key = query_key(1, 2, "ch", 100, 0);
        assert_eq!(cache.get(key), None);
        cache.insert(key, vec![1, 2, 3]);
        assert_eq!(cache.get(key), Some(vec![1, 2, 3]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn progress_in_key_invalidates_on_ingest() {
        let mut cache = VerdictCache::new(4);
        let before = query_key(1, 2, "ch", 100, 0);
        cache.insert(before, vec![9]);
        // After more measurements arrive the progress counter moved, so
        // the same logical query addresses a different key.
        let after = query_key(1, 2, "ch", 150, 0);
        assert_ne!(before, after);
        assert_eq!(cache.get(after), None);
    }

    #[test]
    fn distinct_probabilities_never_alias() {
        let a = query_key(1, 3, "*", 100, 1e-12f64.to_bits());
        let b = query_key(1, 3, "*", 100, 1e-9f64.to_bits());
        assert_ne!(a, b);
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut cache = VerdictCache::new(2);
        let keys: Vec<u64> = (0..4).map(|i| query_key(7, 1, "ch", i, 0)).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, vec![i as u8]);
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.evictions(), 2);
        // With no touches between inserts, LRU degenerates to FIFO:
        // oldest two gone, newest two present.
        assert_eq!(cache.get(keys[0]), None);
        assert_eq!(cache.get(keys[1]), None);
        assert_eq!(cache.get(keys[2]), Some(vec![2]));
        assert_eq!(cache.get(keys[3]), Some(vec![3]));
    }

    #[test]
    fn hit_refreshes_recency_and_redirects_eviction() {
        let mut cache = VerdictCache::new(2);
        let keys: Vec<u64> = (0..3).map(|i| query_key(7, 1, "ch", i, 0)).collect();
        cache.insert(keys[0], vec![0]);
        cache.insert(keys[1], vec![1]);
        // Touch the older entry: now keys[1] is the LRU victim.
        assert_eq!(cache.get(keys[0]), Some(vec![0]));
        cache.insert(keys[2], vec![2]);
        assert_eq!(cache.get(keys[1]), None, "untouched entry evicts first");
        assert_eq!(cache.get(keys[0]), Some(vec![0]), "touched entry survives");
        assert_eq!(cache.get(keys[2]), Some(vec![2]));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn repeat_hits_keep_working_set_resident_through_churn() {
        let mut cache = VerdictCache::new(2);
        let hot = query_key(7, 1, "hot", 1, 0);
        cache.insert(hot, vec![42]);
        for i in 0..50 {
            let one_off = query_key(7, 1, "cold", i, 0);
            cache.insert(one_off, vec![i as u8]);
            // The dashboard re-asks its question between one-offs.
            assert_eq!(cache.get(hot), Some(vec![42]), "iteration {i}");
        }
        assert_eq!(
            cache.evictions(),
            49,
            "every one-off evicted the prior one-off"
        );
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let mut cache = VerdictCache::new(2);
        let key = query_key(7, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        cache.insert(key, vec![2]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.get(key), Some(vec![2]));
    }

    #[test]
    fn recency_mirror_stays_consistent() {
        // Interleave inserts, hits, and re-inserts, then check the
        // map/recency mirror invariant the evictor relies on.
        let mut cache = VerdictCache::new(3);
        let keys: Vec<u64> = (0..6).map(|i| query_key(9, 1, "ch", i, 0)).collect();
        for round in 0..4 {
            for (i, &k) in keys.iter().enumerate() {
                if (i + round) % 2 == 0 {
                    cache.insert(k, vec![i as u8, round as u8]);
                } else {
                    let _ = cache.get(k);
                }
            }
        }
        assert!(cache.len() <= 3);
        assert_eq!(cache.map.len(), cache.recency.len());
        for (tick, key) in &cache.recency {
            assert_eq!(cache.map.get(key).map(|(_, t)| t), Some(tick));
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = VerdictCache::new(0);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(key), None);
    }

    #[test]
    fn config_fingerprint_separates_configs() {
        let a = config_fingerprint(&[&42u64, &true]);
        let b = config_fingerprint(&[&43u64, &true]);
        assert_ne!(a, b);
    }
}
