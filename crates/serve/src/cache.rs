//! Fingerprint-keyed query cache for snapshot/verdict responses.
//!
//! Finalizing a verdict clones the session and refits every channel —
//! cheap once, wasteful when a dashboard polls the same question
//! between ingests. The cache stores **encoded response payloads**
//! keyed by a fingerprint of everything the answer depends on:
//!
//! * the analysis-configuration fingerprint (stream config + cadences),
//! * the query kind and its parameters (channel, probability bits),
//! * the ingest progress the answer was computed at (per-channel
//!   count, or the session total for cross-channel queries).
//!
//! Folding the progress counters into the key makes invalidation
//! automatic: any ingest or merge moves the counters, so stale entries
//! simply stop being addressed and age out of the FIFO. Repeat queries
//! between ingests are O(1) — frame decode, one hash, one map lookup.
//!
//! Keys follow the FERN fingerprinting discipline (arXiv 2405.04435):
//! hash the *canonical encoding* of the inputs, never ad-hoc string
//! concatenation, so two queries collide only when their answers must
//! be bit-identical.

use std::collections::{HashMap, VecDeque};

use proxima_mbpta::persist::{self, Encode, Writer};

/// FIFO-bounded map from query fingerprint to encoded response payload.
#[derive(Debug)]
pub struct VerdictCache {
    capacity: usize,
    map: HashMap<u64, Vec<u8>>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl VerdictCache {
    /// Create a cache holding at most `capacity` responses.
    ///
    /// A capacity of 0 disables caching: every `get` misses and every
    /// `insert` is dropped.
    pub fn new(capacity: usize) -> Self {
        VerdictCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Look up the encoded response for `key`, counting a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        match self.map.get(&key) {
            Some(bytes) => {
                self.hits += 1;
                Some(bytes.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the encoded response for `key`, evicting the oldest entry
    /// once the cache is full.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            self.insertions += 1;
            while self.map.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                    self.evictions += 1;
                }
            }
        }
    }

    /// Entries currently held (always ≤ [`Self::capacity`]).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Responses stored.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Entries dropped to respect the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Fingerprint an analysis configuration: FNV-1a over the canonical
/// encoding of anything that changes what a query would answer.
///
/// Use one fingerprint per server/session lifetime and fold it into
/// every [`query_key`].
pub fn config_fingerprint(parts: &[&dyn Encode]) -> u64 {
    let mut w = Writer::new();
    for part in parts {
        part.encode(&mut w);
    }
    persist::fnv1a(&w.into_bytes())
}

/// Build the cache key for one query.
///
/// `progress` is the ingest position the answer depends on: the
/// channel's accepted count for per-channel queries, the session total
/// for cross-channel ones. Any ingest moves it, which is what
/// invalidates stale entries. `p_bits` carries the probability as raw
/// bits (`f64::to_bits`) so distinct cutoffs never alias.
pub fn query_key(
    config_fingerprint: u64,
    kind: u8,
    channel: &str,
    progress: u64,
    p_bits: u64,
) -> u64 {
    let mut w = Writer::new();
    w.u64(config_fingerprint);
    w.u8(kind);
    w.str(channel);
    w.u64(progress);
    w.u64(p_bits);
    persist::fnv1a(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = VerdictCache::new(4);
        let key = query_key(1, 2, "ch", 100, 0);
        assert_eq!(cache.get(key), None);
        cache.insert(key, vec![1, 2, 3]);
        assert_eq!(cache.get(key), Some(vec![1, 2, 3]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.insertions(), 1);
    }

    #[test]
    fn progress_in_key_invalidates_on_ingest() {
        let mut cache = VerdictCache::new(4);
        let before = query_key(1, 2, "ch", 100, 0);
        cache.insert(before, vec![9]);
        // After more measurements arrive the progress counter moved, so
        // the same logical query addresses a different key.
        let after = query_key(1, 2, "ch", 150, 0);
        assert_ne!(before, after);
        assert_eq!(cache.get(after), None);
    }

    #[test]
    fn distinct_probabilities_never_alias() {
        let a = query_key(1, 3, "*", 100, 1e-12f64.to_bits());
        let b = query_key(1, 3, "*", 100, 1e-9f64.to_bits());
        assert_ne!(a, b);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let mut cache = VerdictCache::new(2);
        let keys: Vec<u64> = (0..4).map(|i| query_key(7, 1, "ch", i, 0)).collect();
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(k, vec![i as u8]);
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.evictions(), 2);
        // Oldest two gone, newest two present.
        assert_eq!(cache.get(keys[0]), None);
        assert_eq!(cache.get(keys[1]), None);
        assert_eq!(cache.get(keys[2]), Some(vec![2]));
        assert_eq!(cache.get(keys[3]), Some(vec![3]));
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let mut cache = VerdictCache::new(2);
        let key = query_key(7, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        cache.insert(key, vec![2]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.insertions(), 1);
        assert_eq!(cache.get(key), Some(vec![2]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = VerdictCache::new(0);
        let key = query_key(1, 1, "ch", 1, 0);
        cache.insert(key, vec![1]);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(key), None);
    }

    #[test]
    fn config_fingerprint_separates_configs() {
        let a = config_fingerprint(&[&42u64, &true]);
        let b = config_fingerprint(&[&43u64, &true]);
        assert_ne!(a, b);
    }
}
