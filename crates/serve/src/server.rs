//! The analysis service: a framed-TCP front end over one live
//! [`AnalysisSession`].
//!
//! The server owns a multi-channel streaming session
//! (`AnalysisSession<StreamFactory>`) and multiplexes any number of
//! concurrent client connections into it — one OS thread per
//! connection, one mutex-guarded session behind them. Ingest frames
//! append to per-channel engines through the same `push_batch` hot
//! path the CLI feeder uses; query frames answer from the scheduler's
//! latest emitted estimates (SNAPSHOT) or by finalizing a **clone** of
//! the session (VERDICT) so the live campaign keeps streaming; MERGE
//! adopts sealed federated shard blobs, so remote shards ship folded
//! analyzer state — never raw measurements — into the coordinator.
//!
//! Durability reuses the library checkpoint machinery: with a
//! checkpoint path configured the server persists the session every
//! `checkpoint_every` accepted measurements (the cadence the session
//! itself tracks — [`AnalysisSession::checkpoint_due`]), atomically
//! (write + fsync + rename), and [`Server::resume`] restarts from the
//! last such file with verdicts bit-identical to an uninterrupted run
//! over the same feed order.
//!
//! Everything is hand-rolled on `std::net` — no async runtime, no
//! external dependencies, fully offline-safe.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use proxima_mbpta::engine::Engine;
use proxima_mbpta::persist::{self, Decode, Encode, Reader, Writer};
use proxima_mbpta::session::SessionSnapshot;
use proxima_mbpta::{AnalysisSession, BlockSpec, MbptaConfig};
use proxima_stream::{SessionStreamExt, StreamConfig, StreamEngine, StreamFactory};

use crate::cache::{config_fingerprint, query_key, VerdictCache};
use crate::frame::{read_frame, write_frame, Request, Response, ServerStats, WireSnapshot};

/// Magic for the server's own checkpoint files: `PXSV`
/// ("proxima server"). The payload wraps the serve parameters plus the
/// sealed session blob, so `--resume` needs nothing but the file.
pub const MAGIC_SERVE: [u8; 4] = *b"PXSV";

/// Everything the service needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Streaming-engine knobs shared by every channel (block size,
    /// target cutoff, refit cadence, …).
    pub stream: StreamConfig,
    /// Emit a scheduler snapshot every this many session measurements
    /// (`0` disables live estimates).
    pub snapshot_every: usize,
    /// Where checkpoints go; `None` disables durability.
    pub checkpoint_path: Option<PathBuf>,
    /// Auto-checkpoint every this many accepted measurements (`0`
    /// disables; must be paired with `checkpoint_path`).
    pub checkpoint_every: usize,
    /// Bound on cached query responses.
    pub cache_capacity: usize,
    /// Worker threads for snapshot/finalize fan-out inside the session
    /// (`0` = sequential; results are identical either way).
    pub jobs: usize,
    /// Abort the process once the session holds at least this many
    /// measurements — crash-injection for restart drills; never set it
    /// in production.
    pub crash_after: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            stream: StreamConfig::default(),
            snapshot_every: 500,
            checkpoint_path: None,
            checkpoint_every: 0,
            cache_capacity: 256,
            jobs: 0,
            crash_after: None,
        }
    }
}

/// Why the server could not start, serve a request, or persist.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid or inconsistent serve configuration.
    Config(String),
    /// Socket or checkpoint-file I/O failed.
    Io(String),
    /// The analysis core rejected a request, blob, or checkpoint.
    Analysis(String),
    /// A shared-state mutex was poisoned: a connection thread panicked
    /// while holding it, so the protected state cannot be trusted. The
    /// poisoned request is answered with an error frame and the server
    /// keeps accepting; it never unwraps the poison into a panic of its
    /// own.
    Poisoned(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) | ServeError::Io(m) | ServeError::Analysis(m) => f.write_str(m),
            ServeError::Poisoned(what) => {
                write!(f, "{what} poisoned by a panicked connection thread")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<proxima_mbpta::MbptaError> for ServeError {
    fn from(e: proxima_mbpta::MbptaError) -> Self {
        ServeError::Analysis(e.to_string())
    }
}

/// The mutable heart of the service, behind one mutex.
struct Core {
    session: AnalysisSession<StreamFactory>,
    /// Latest scheduler-emitted estimate per channel.
    latest: HashMap<String, WireSnapshot>,
    config: ServeConfig,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    core: Mutex<Core>,
    cache: Mutex<VerdictCache>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Analysis-configuration fingerprint folded into every cache key.
    fingerprint: u64,
    addr: SocketAddr,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames_ingest: AtomicU64,
    frames_snapshot: AtomicU64,
    frames_verdict: AtomicU64,
    frames_merge: AtomicU64,
    frames_admin: AtomicU64,
    protocol_errors: AtomicU64,
    checkpoints_written: AtomicU64,
    last_checkpoint_bytes: AtomicU64,
}

/// The analysis service.
///
/// Bind it, then either [`run`](Self::run) the accept loop on the
/// current thread or [`spawn`](Self::spawn) it. Clients speak the
/// framed protocol from [`crate::frame`]; the blocking
/// [`ServeClient`](crate::client::ServeClient) wraps it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Acquire a shared-state mutex, surfacing poison as a typed
/// [`ServeError::Poisoned`] instead of unwrapping it into a panic. A
/// handler that panicked mid-mutation may have left the guarded state
/// half-applied, so later requests get an honest error frame rather
/// than answers computed from state nobody can vouch for — and the
/// panic stays confined to the one connection that caused it.
fn lock<'a, T>(m: &'a Mutex<T>, what: &'static str) -> Result<MutexGuard<'a, T>, ServeError> {
    m.lock().map_err(|_| ServeError::Poisoned(what))
}

impl Server {
    /// Bind a fresh session on `addr` (use port 0 to let the OS pick;
    /// read the port back from [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Invalid configuration (bad streaming knobs, a checkpoint path
    /// without a cadence or vice versa) or a bind failure.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<Server, ServeError> {
        let session = MbptaConfig {
            block: BlockSpec::Fixed(config.stream.block_size),
            ..MbptaConfig::default()
        }
        .session()
        .snapshot_every(config.snapshot_every)
        .checkpoint_every(config.checkpoint_every)
        .target_p(config.stream.target_p)
        .jobs(config.jobs)
        .build_stream_with(config.stream.clone())?;
        Server::with_session(addr, config, session)
    }

    /// Restart from a checkpoint file previously written by a server
    /// with a checkpoint path configured. The serve parameters (stream
    /// config, cadences, cache bound) come from the file; only the
    /// bind address, thread bound and crash injection are the caller's.
    /// Checkpointing continues to the same file.
    ///
    /// # Errors
    ///
    /// An unreadable/corrupt/mismatched checkpoint file, or any
    /// [`Server::bind`] failure.
    pub fn resume(
        addr: &str,
        path: impl Into<PathBuf>,
        jobs: usize,
        crash_after: Option<usize>,
    ) -> Result<Server, ServeError> {
        let path = path.into();
        let bytes = std::fs::read(&path)
            .map_err(|e| ServeError::Io(format!("cannot open {}: {e}", path.display())))?;
        let payload = persist::unseal(&bytes, MAGIC_SERVE)?;
        let mut r = Reader::new(payload);
        let stream = StreamConfig::decode(&mut r)?;
        let snapshot_every = r.usize()?;
        let checkpoint_every = r.usize()?;
        let cache_capacity = r.usize()?;
        let blob = r.bytes()?.to_vec();
        r.finish()?;
        let factory = StreamFactory::new(stream.clone())?;
        let mut session = AnalysisSession::restore(factory, &blob, jobs)?;
        // Cadence is runtime policy (not part of the session blob);
        // re-arm it so checkpointing continues across the restart.
        session.set_checkpoint_every(checkpoint_every);
        let config = ServeConfig {
            stream,
            snapshot_every,
            checkpoint_path: Some(path),
            checkpoint_every,
            cache_capacity,
            jobs,
            crash_after,
        };
        Server::with_session(addr, config, session)
    }

    fn with_session(
        addr: &str,
        config: ServeConfig,
        session: AnalysisSession<StreamFactory>,
    ) -> Result<Server, ServeError> {
        if config.checkpoint_path.is_some() != (config.checkpoint_every > 0) {
            return Err(ServeError::Config(
                "checkpoint_path and checkpoint_every must be set together".to_string(),
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Io(format!("cannot bind {addr}: {e}")))?;
        let addr = listener.local_addr()?;
        // Anything that changes what a query would answer goes into the
        // fingerprint; progress counters go into each key instead.
        let fingerprint = config_fingerprint(&[&config.stream, &config.snapshot_every]);
        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                session,
                latest: HashMap::new(),
                config: config.clone(),
            }),
            cache: Mutex::new(VerdictCache::new(config.cache_capacity)),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            fingerprint,
            addr,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Run the accept loop until a client sends `Shutdown`. In-flight
    /// connections drain before this returns.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for fatal
    /// accept-loop failures.
    pub fn run(self) -> Result<(), ServeError> {
        let Server { listener, shared } = self;
        let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            shared.counters.connections.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&shared);
            handles.retain(|h| !h.is_finished());
            handles.push(thread::spawn(move || serve_connection(stream, &shared)));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Run the accept loop on a fresh thread (for in-process tests and
    /// embedding).
    pub fn spawn(self) -> thread::JoinHandle<Result<(), ServeError>> {
        thread::spawn(move || self.run())
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader) {
            // Peer hung up cleanly between frames.
            Ok(None) => break,
            Ok(Some(payload)) => {
                let (response, shutdown) = match Request::decode(&payload) {
                    Ok(request) => handle(shared, request),
                    Err(e) => {
                        // The frame envelope was intact (checksum
                        // passed), so the stream stays synchronized:
                        // report and keep serving this client.
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::SeqCst);
                        (
                            Response::Error {
                                message: e.to_string(),
                            }
                            .encode(),
                            false,
                        )
                    }
                };
                if write_frame(&mut writer, &response)
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                if shutdown {
                    // Unblock the accept loop so `run` observes the
                    // flag; the poke connection is never served.
                    let _ = TcpStream::connect(shared.addr);
                    break;
                }
            }
            Err(e) => {
                // Bad envelope: the byte stream is desynchronized, so
                // this connection is done — but only this connection.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::SeqCst);
                let farewell = Response::Error {
                    message: e.to_string(),
                }
                .encode();
                let _ = write_frame(&mut writer, &farewell).and_then(|()| writer.flush());
                break;
            }
        }
    }
}

/// Serve one decoded request. Returns the encoded response payload and
/// whether the server should shut down after sending it.
fn handle(shared: &Shared, request: Request) -> (Vec<u8>, bool) {
    let counters = &shared.counters;
    match request {
        Request::Ingest { channel, values } => {
            counters.frames_ingest.fetch_add(1, Ordering::SeqCst);
            (handle_ingest(shared, &channel, &values), false)
        }
        Request::Snapshot { channel } => {
            counters.frames_snapshot.fetch_add(1, Ordering::SeqCst);
            (handle_snapshot(shared, &channel), false)
        }
        Request::Verdict { p, channel } => {
            counters.frames_verdict.fetch_add(1, Ordering::SeqCst);
            (handle_verdict(shared, p, channel.as_deref()), false)
        }
        Request::Merge { channel, blob } => {
            counters.frames_merge.fetch_add(1, Ordering::SeqCst);
            (handle_merge(shared, &channel, &blob), false)
        }
        Request::Checkpoint => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            let mut core = match lock(&shared.core, "analysis core") {
                Ok(core) => core,
                Err(e) => return (error_response(e.to_string()), false),
            };
            if core.config.checkpoint_path.is_none() {
                return (error_response("no checkpoint path configured"), false);
            }
            match write_server_checkpoint(shared, &mut core) {
                Ok(bytes) => (Response::Checkpointed { bytes }.encode(), false),
                Err(e) => (error_response(format!("checkpoint failed: {e}")), false),
            }
        }
        Request::Stats => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            match build_stats(shared) {
                Ok(stats) => (Response::Stats(stats).encode(), false),
                Err(e) => (error_response(e.to_string()), false),
            }
        }
        Request::Shutdown => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            shared.shutdown.store(true, Ordering::SeqCst);
            // Persist the final state so a later `resume` continues
            // exactly where the campaign stopped.
            let mut core = match lock(&shared.core, "analysis core") {
                Ok(core) => core,
                // Still shut down; there is no trustworthy state left
                // to checkpoint anyway.
                Err(e) => return (error_response(e.to_string()), true),
            };
            if core.config.checkpoint_path.is_some() {
                if let Err(e) = write_server_checkpoint(shared, &mut core) {
                    return (
                        error_response(format!("shutdown checkpoint failed: {e}")),
                        true,
                    );
                }
            }
            (Response::ShuttingDown.encode(), true)
        }
    }
}

fn error_response(message: impl Into<String>) -> Vec<u8> {
    Response::Error {
        message: message.into(),
    }
    .encode()
}

fn wire_snapshot(snapshot: &SessionSnapshot) -> WireSnapshot {
    WireSnapshot {
        channel: snapshot.channel.as_str().to_string(),
        total: snapshot.total as u64,
        estimate: snapshot.estimate.clone(),
    }
}

/// The channel's accepted measurement count, `None` for a channel the
/// session has never seen. Progress counters like this one are what
/// key (and therefore invalidate) cached query responses.
fn channel_progress(core: &mut Core, channel: &str) -> Option<u64> {
    if core.session.channel_ids().any(|id| id.as_str() == channel) {
        core.session
            .channel(channel)
            .ok()
            .map(|handle| handle.len() as u64)
    } else {
        None
    }
}

fn handle_ingest(shared: &Shared, channel: &str, values: &[f64]) -> Vec<u8> {
    let mut core = match lock(&shared.core, "analysis core") {
        Ok(core) => core,
        Err(e) => return error_response(e.to_string()),
    };
    let snapshots = match core.session.push_batch(channel, values) {
        Ok(snapshots) => snapshots,
        Err(e) => return error_response(e.to_string()),
    };
    for snapshot in &snapshots {
        core.latest.insert(
            snapshot.channel.as_str().to_string(),
            wire_snapshot(snapshot),
        );
    }
    let channel_len = channel_progress(&mut core, channel).unwrap_or(0);
    let total = core.session.len() as u64;
    let snapshots = snapshots.iter().map(wire_snapshot).collect();
    if let Err(e) = after_mutation(shared, &mut core) {
        return error_response(format!("ingested, but checkpointing failed: {e}"));
    }
    Response::Ingested {
        channel_len,
        total,
        snapshots,
    }
    .encode()
}

fn handle_merge(shared: &Shared, channel: &str, blob: &[u8]) -> Vec<u8> {
    let mut core = match lock(&shared.core, "analysis core") {
        Ok(core) => core,
        Err(e) => return error_response(e.to_string()),
    };
    let engine = match StreamEngine::from_federated_blob(blob, &core.config.stream) {
        Ok(engine) => engine,
        Err(e) => return error_response(e.to_string()),
    };
    let channel_len = engine.len() as u64;
    let state = match engine.save_state() {
        Ok(state) => state,
        Err(e) => return error_response(e.to_string()),
    };
    if let Err(e) = core.session.adopt_channel(channel, &state) {
        return error_response(e.to_string());
    }
    let total = core.session.len() as u64;
    if let Err(e) = after_mutation(shared, &mut core) {
        return error_response(format!("merged, but checkpointing failed: {e}"));
    }
    Response::Merged { channel_len, total }.encode()
}

fn handle_snapshot(shared: &Shared, channel: &str) -> Vec<u8> {
    let mut core = match lock(&shared.core, "analysis core") {
        Ok(core) => core,
        Err(e) => return error_response(e.to_string()),
    };
    let progress = channel_progress(&mut core, channel).unwrap_or(0);
    let key = query_key(shared.fingerprint, 2, channel, progress, 0);
    // A poisoned cache only loses memoization, never correctness:
    // treat it as a miss and recompute.
    if let Some(hit) = cache_get(shared, key) {
        return hit;
    }
    let response = Response::Snapshot {
        latest: core.latest.get(channel).cloned(),
    }
    .encode();
    drop(core);
    cache_put(shared, key, &response);
    response
}

fn handle_verdict(shared: &Shared, p: f64, channel: Option<&str>) -> Vec<u8> {
    let mut core = match lock(&shared.core, "analysis core") {
        Ok(core) => core,
        Err(e) => return error_response(e.to_string()),
    };
    let progress = match channel {
        Some(name) => channel_progress(&mut core, name).unwrap_or(0),
        None => core.session.len() as u64,
    };
    let key = query_key(
        shared.fingerprint,
        3,
        channel.unwrap_or("*"),
        progress,
        p.to_bits(),
    );
    if let Some(hit) = cache_get(shared, key) {
        return hit;
    }
    // Finalize a clone: the live session keeps streaming, and repeat
    // queries between ingests come straight from the cache.
    let clone = core.session.clone();
    drop(core);
    let merged = clone.merge();
    let channels: Vec<(String, Result<proxima_mbpta::Verdict, String>)> = match channel {
        Some(name) => match merged.verdict(name) {
            Some(outcome) => vec![(name.to_string(), outcome.clone().map_err(|e| e.to_string()))],
            None => {
                return error_response(format!("unknown channel `{name}`"));
            }
        },
        None => merged
            .channels()
            .iter()
            .map(|c| {
                (
                    c.channel.as_str().to_string(),
                    c.outcome.clone().map_err(|e| e.to_string()),
                )
            })
            .collect(),
    };
    let envelope = match channel {
        Some(name) => channels[0]
            .1
            .as_ref()
            .map_err(Clone::clone)
            .and_then(|v| v.budget_for(p).map_err(|e| e.to_string()))
            .map(|budget| (name.to_string(), budget)),
        None => merged
            .envelope_budget(p)
            .map(|(winner, budget)| (winner.as_str().to_string(), budget))
            .map_err(|e| e.to_string()),
    };
    let response = Response::Verdicts {
        p,
        channels,
        envelope,
    }
    .encode();
    cache_put(shared, key, &response);
    response
}

/// Cache lookup that degrades to a miss when the cache mutex is
/// poisoned — memoization is optional, correctness is not.
fn cache_get(shared: &Shared, key: u64) -> Option<Vec<u8>> {
    lock(&shared.cache, "verdict cache")
        .ok()
        .and_then(|mut cache| cache.get(key))
}

/// Cache store with the same degradation: a poisoned cache simply
/// stops memoizing.
fn cache_put(shared: &Shared, key: u64, response: &[u8]) {
    if let Ok(mut cache) = lock(&shared.cache, "verdict cache") {
        cache.insert(key, response.to_vec());
    }
}

/// Post-mutation bookkeeping shared by ingest and merge: write an
/// auto-checkpoint when one falls due, then fire crash injection.
fn after_mutation(shared: &Shared, core: &mut Core) -> Result<(), ServeError> {
    if core.config.checkpoint_path.is_some() && core.session.checkpoint_due() {
        write_server_checkpoint(shared, core)?;
    }
    if let Some(limit) = core.config.crash_after {
        if core.session.len() >= limit {
            eprintln!(
                "mbpta serve: injected crash at {} measurements (crash_after {limit})",
                core.session.len()
            );
            let _ = io::stderr().flush();
            // proxima-lint: allow(no-exit-in-lib) -- deliberate crash
            // injection for the restart-determinism battery, reachable
            // only when the operator sets --crash-after.
            std::process::abort();
        }
    }
    Ok(())
}

/// Checkpoint the session (with the serve parameters alongside, so
/// resume needs only the file) atomically: write a sibling temp file,
/// fsync it, rename over the target, then best-effort fsync the
/// directory — a crash at any point leaves either the old or the new
/// checkpoint intact, never a torn one.
fn write_server_checkpoint(shared: &Shared, core: &mut Core) -> Result<u64, ServeError> {
    let path = core
        .config
        .checkpoint_path
        .clone()
        .ok_or_else(|| ServeError::Config("no checkpoint path configured".to_string()))?;
    let blob = core.session.checkpoint()?;
    let mut w = Writer::new();
    core.config.stream.encode(&mut w);
    w.usize(core.config.snapshot_every);
    w.usize(core.config.checkpoint_every);
    w.usize(core.config.cache_capacity);
    w.bytes(&blob);
    let bytes = persist::seal(MAGIC_SERVE, w.into_bytes());

    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| ServeError::Io(format!("cannot create {}: {e}", tmp.display())))?;
    file.write_all(&bytes)
        .map_err(|e| ServeError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    file.sync_all()
        .map_err(|e| ServeError::Io(format!("cannot sync {}: {e}", tmp.display())))?;
    drop(file);
    std::fs::rename(&tmp, &path).map_err(|e| {
        ServeError::Io(format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }

    core.session.mark_checkpointed();
    shared
        .counters
        .checkpoints_written
        .fetch_add(1, Ordering::SeqCst);
    shared
        .counters
        .last_checkpoint_bytes
        .store(bytes.len() as u64, Ordering::SeqCst);
    Ok(bytes.len() as u64)
}

fn build_stats(shared: &Shared) -> Result<ServerStats, ServeError> {
    let (total, channels, since_checkpoint) = {
        let core = lock(&shared.core, "analysis core")?;
        (
            core.session.len() as u64,
            core.session.channel_count() as u64,
            core.session.since_checkpoint() as u64,
        )
    };
    let (cache_hits, cache_misses, cache_insertions, cache_evictions, cache_len, cache_capacity) = {
        let cache = lock(&shared.cache, "verdict cache")?;
        (
            cache.hits(),
            cache.misses(),
            cache.insertions(),
            cache.evictions(),
            cache.len() as u64,
            cache.capacity() as u64,
        )
    };
    let c = &shared.counters;
    Ok(ServerStats {
        total,
        channels,
        connections: c.connections.load(Ordering::SeqCst),
        frames_ingest: c.frames_ingest.load(Ordering::SeqCst),
        frames_snapshot: c.frames_snapshot.load(Ordering::SeqCst),
        frames_verdict: c.frames_verdict.load(Ordering::SeqCst),
        frames_merge: c.frames_merge.load(Ordering::SeqCst),
        frames_admin: c.frames_admin.load(Ordering::SeqCst),
        protocol_errors: c.protocol_errors.load(Ordering::SeqCst),
        cache_hits,
        cache_misses,
        cache_insertions,
        cache_evictions,
        cache_len,
        cache_capacity,
        checkpoints_written: c.checkpoints_written.load(Ordering::SeqCst),
        last_checkpoint_bytes: c.last_checkpoint_bytes.load(Ordering::SeqCst),
        since_checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;

    fn start(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<Result<(), ServeError>>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        (addr, server.spawn())
    }

    /// Deterministic per-channel feed (no clock, no OS randomness).
    fn feed(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                // SplitMix64 step.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                1000.0 + 200.0 * ((z >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect()
    }

    #[test]
    fn ingest_query_shutdown_round_trip() {
        let (addr, handle) = start(ServeConfig {
            snapshot_every: 100,
            ..ServeConfig::default()
        });
        let mut client = ServeClient::connect(addr).unwrap();
        let values = feed(7, 1500);
        let (channel_len, total, _snaps) = client.ingest("nominal", &values).unwrap();
        assert_eq!(channel_len, 1500);
        assert_eq!(total, 1500);

        let latest = client.snapshot("nominal").unwrap();
        let latest = latest.expect("scheduler emitted at least one snapshot");
        assert_eq!(latest.channel, "nominal");
        assert!(latest.estimate.pwcet > latest.estimate.high_watermark);

        let verdicts = client.verdict(1e-12, None).unwrap();
        match verdicts {
            Response::Verdicts {
                channels, envelope, ..
            } => {
                assert_eq!(channels.len(), 1);
                assert!(channels[0].1.is_ok(), "{:?}", channels[0].1);
                let (winner, budget) = envelope.unwrap();
                assert_eq!(winner, "nominal");
                assert!(budget > latest.estimate.high_watermark);
            }
            other => panic!("unexpected response {other:?}"),
        }

        // The same query again must come from the cache.
        let _ = client.verdict(1e-12, None).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.total, 1500);
        assert_eq!(stats.channels, 1);
        assert_eq!(stats.protocol_errors, 0);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn ingest_invalidates_cached_verdicts() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = ServeClient::connect(addr).unwrap();
        let values = feed(11, 1200);
        client.ingest("ch", &values[..600]).unwrap();
        let before = client.verdict(1e-12, Some("ch")).unwrap();
        client.ingest("ch", &values[600..]).unwrap();
        let after = client.verdict(1e-12, Some("ch")).unwrap();
        assert_ne!(before, after, "new data must re-key the cached answer");
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn poisoned_mutex_surfaces_as_typed_error_not_panic() {
        let m = Arc::new(Mutex::new(17u32));
        let m2 = Arc::clone(&m);
        thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the guard");
        })
        .join()
        .unwrap_err();
        match lock(&m, "test state") {
            Err(ServeError::Poisoned(what)) => assert_eq!(what, "test state"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        let message = lock(&m, "test state").unwrap_err().to_string();
        assert!(
            message.contains("poisoned"),
            "the error frame should say why the request failed: {message}"
        );
    }

    #[test]
    fn bind_rejects_orphan_checkpoint_settings() {
        let config = ServeConfig {
            checkpoint_path: Some(PathBuf::from("ck.bin")),
            checkpoint_every: 0,
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", config).is_err());
        let config = ServeConfig {
            checkpoint_path: None,
            checkpoint_every: 100,
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", config).is_err());
    }
}
