//! The analysis service: a framed-TCP front end over a **sharded**
//! session core.
//!
//! The server partitions channels across `workers` analysis threads
//! (the private `shard` module): each worker owns its own
//! `AnalysisSession<StreamFactory>`, verdict cache and latest-snapshot
//! map, and a channel's owner is FNV-1a of its tag mod the worker
//! count. Connection threads talk to workers through bounded mailboxes
//! — a slow worker blocks its senders (backpressure) instead of
//! dropping or reordering requests. Ingest frames append through the
//! same `push_batch` hot path the CLI feeder uses; SNAPSHOT answers
//! from the owner's latest emitted estimate; VERDICT finalizes a
//! **clone** of the owner's session (or fans out and folds per-worker
//! partials for the envelope) so the live campaign keeps streaming;
//! MERGE adopts sealed federated shard blobs into the owner, so remote
//! shards ship folded analyzer state — never raw measurements — into
//! the coordinator.
//!
//! Every response is **bit-identical at any worker count**: estimates
//! are pure functions of a channel's own feed, session-wide totals
//! come from one dispatcher counter, and the envelope fold replicates
//! the single-session scan exactly.
//!
//! Admission control is explicit: past `max_conns` concurrent
//! connections the accept loop answers a typed `Busy` frame and closes
//! — clients distinguish "come back later" from failure.
//!
//! Durability shards with the session: a checkpoint writes one sealed
//! session blob per worker plus a manifest (stream config, cadences,
//! channel order, shard digests), each file atomically (write, fsync,
//! rename), manifest last as the commit point. [`Server::resume`]
//! restores the shard set — at the same worker count by restoring each
//! blob in place, at a different one by re-partitioning channels
//! through the session core's export/adopt records — with verdicts
//! bit-identical to an uninterrupted run over the same feed order.
//!
//! Everything is hand-rolled on `std::net` — no async runtime, no
//! external dependencies, fully offline-safe.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use proxima_mbpta::persist::{self, Decode, Encode, Reader, Writer};
use proxima_mbpta::{AnalysisSession, BlockSpec, MbptaConfig};
use proxima_stream::{SessionStreamExt, StreamConfig, StreamFactory};

use crate::cache::{config_fingerprint, VerdictCache};
use crate::frame::{read_frame, write_frame, Request, Response, ServerStats};
use crate::shard::{repartition, ShardedSession, WorkerContext, WorkerSeed};

/// Magic for the server's checkpoint **manifest**: `PXSV`
/// ("proxima server"). The manifest carries the serve parameters, the
/// global channel order and one digest per shard blob; the blobs
/// themselves live in sibling `.g<generation>.shard<i>` files, and the
/// manifest rename is the commit point.
pub const MAGIC_SERVE: [u8; 4] = *b"PXSV";

/// Everything the service needs to run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Streaming-engine knobs shared by every channel (block size,
    /// target cutoff, refit cadence, …).
    pub stream: StreamConfig,
    /// Emit a snapshot every this many accepted measurements **of a
    /// channel** (`0` disables scheduled estimates; convergence
    /// announcements still flow).
    pub snapshot_every: usize,
    /// Where the checkpoint manifest goes; `None` disables durability.
    pub checkpoint_path: Option<PathBuf>,
    /// Auto-checkpoint every this many session measurements (`0`
    /// disables; must be paired with `checkpoint_path`).
    pub checkpoint_every: usize,
    /// Bound on each worker's cached query responses.
    pub cache_capacity: usize,
    /// Cached responses expire after this many cache operations on
    /// their worker (`0` disables expiry). Logical ticks, never wall
    /// clock — see [`crate::cache`].
    pub cache_ttl: u64,
    /// Analysis worker threads; channels are partitioned across them
    /// by name hash. Must be at least 1. Responses are bit-identical
    /// at any value.
    pub workers: usize,
    /// Concurrent connection bound; past it new connections get a
    /// typed `Busy` frame (`0` = unlimited).
    pub max_conns: usize,
    /// Threads for finalize fan-out inside each worker's session (`0`
    /// = sequential; results are identical either way).
    pub jobs: usize,
    /// Abort the process once the session holds at least this many
    /// measurements — crash-injection for restart drills; never set it
    /// in production.
    pub crash_after: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            stream: StreamConfig::default(),
            snapshot_every: 500,
            checkpoint_path: None,
            checkpoint_every: 0,
            cache_capacity: 256,
            cache_ttl: 0,
            workers: 1,
            max_conns: 0,
            jobs: 0,
            crash_after: None,
        }
    }
}

/// The caller-side knobs of [`Server::resume`]; everything else comes
/// from the checkpoint manifest.
#[derive(Debug, Clone, Default)]
pub struct ResumeOptions {
    /// Threads for finalize fan-out inside each worker's session.
    pub jobs: usize,
    /// Crash injection (see [`ServeConfig::crash_after`]).
    pub crash_after: Option<usize>,
    /// Worker count to resume at; `0` keeps the manifest's count. A
    /// different count re-partitions channels through the session
    /// core's export/adopt records — responses stay bit-identical.
    pub workers: usize,
    /// Concurrent connection bound (`0` = unlimited).
    pub max_conns: usize,
}

/// Why the server could not start, serve a request, or persist.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid or inconsistent serve configuration.
    Config(String),
    /// Socket or checkpoint-file I/O failed.
    Io(String),
    /// The analysis core rejected a request, blob, or checkpoint — or
    /// an analysis worker is gone.
    Analysis(String),
    /// A shared-state mutex was poisoned: a connection thread panicked
    /// while holding it, so the protected state cannot be trusted. The
    /// poisoned request is answered with an error frame and the server
    /// keeps accepting; it never unwraps the poison into a panic of its
    /// own.
    Poisoned(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) | ServeError::Io(m) | ServeError::Analysis(m) => f.write_str(m),
            ServeError::Poisoned(what) => {
                write!(f, "{what} poisoned by a panicked connection thread")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<proxima_mbpta::MbptaError> for ServeError {
    fn from(e: proxima_mbpta::MbptaError) -> Self {
        ServeError::Analysis(e.to_string())
    }
}

/// Checkpoint generation bookkeeping, serialized by one mutex so
/// concurrent checkpoint triggers write distinct generations and
/// retire the right predecessors.
struct CheckpointCursor {
    /// Generation the next checkpoint writes.
    next_gen: u64,
    /// Last committed generation and its shard count (the files to
    /// retire after the next commit).
    prev: Option<(u64, usize)>,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    sharded: ShardedSession,
    config: ServeConfig,
    counters: Counters,
    shutdown: AtomicBool,
    /// Connections currently being served (admission control).
    active_conns: AtomicU64,
    checkpoint: Mutex<CheckpointCursor>,
    addr: SocketAddr,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    busy_rejections: AtomicU64,
    frames_ingest: AtomicU64,
    frames_snapshot: AtomicU64,
    frames_verdict: AtomicU64,
    frames_merge: AtomicU64,
    frames_admin: AtomicU64,
    protocol_errors: AtomicU64,
    checkpoints_written: AtomicU64,
    last_checkpoint_bytes: AtomicU64,
}

/// The analysis service.
///
/// Bind it, then either [`run`](Self::run) the accept loop on the
/// current thread or [`spawn`](Self::spawn) it. Clients speak the
/// framed protocol from [`crate::frame`]; the blocking
/// [`ServeClient`](crate::client::ServeClient) wraps it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// Acquire a shared-state mutex, surfacing poison as a typed
/// [`ServeError::Poisoned`] instead of unwrapping it into a panic. A
/// handler that panicked mid-mutation may have left the guarded state
/// half-applied, so later requests get an honest error frame rather
/// than answers computed from state nobody can vouch for — and the
/// panic stays confined to the one connection that caused it.
pub(crate) fn lock<'a, T>(
    m: &'a Mutex<T>,
    what: &'static str,
) -> Result<MutexGuard<'a, T>, ServeError> {
    m.lock().map_err(|_| ServeError::Poisoned(what))
}

/// A fresh worker session: the session scheduler stays off
/// (`snapshot_every(0)`, `checkpoint_every(0)`) because snapshot
/// cadence and checkpoint cadence are serve-layer policy — per channel
/// and per dispatcher respectively — so they cannot depend on how
/// channels interleave across workers.
fn new_worker_session(config: &ServeConfig) -> Result<AnalysisSession<StreamFactory>, ServeError> {
    Ok(MbptaConfig {
        block: BlockSpec::Fixed(config.stream.block_size),
        ..MbptaConfig::default()
    }
    .session()
    .snapshot_every(0)
    .checkpoint_every(0)
    .target_p(config.stream.target_p)
    .jobs(config.jobs)
    .build_stream_with(config.stream.clone())?)
}

fn fresh_cache(config: &ServeConfig) -> VerdictCache {
    VerdictCache::with_ttl(config.cache_capacity, config.cache_ttl)
}

impl Server {
    /// Bind a fresh sharded session on `addr` (use port 0 to let the
    /// OS pick; read the port back from [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Invalid configuration (bad streaming knobs, zero workers, a
    /// checkpoint path without a cadence or vice versa) or a bind
    /// failure.
    pub fn bind(addr: &str, config: ServeConfig) -> Result<Server, ServeError> {
        validate(&config)?;
        let mut seeds = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            seeds.push(WorkerSeed {
                session: new_worker_session(&config)?,
                cache: fresh_cache(&config),
            });
        }
        Server::start(
            addr,
            config,
            seeds,
            Vec::new(),
            0,
            CheckpointCursor {
                next_gen: 1,
                prev: None,
            },
        )
    }

    /// Restart from a checkpoint manifest previously written by a
    /// server with a checkpoint path configured. The serve parameters
    /// (stream config, cadences, cache bound, worker count) come from
    /// the manifest; [`ResumeOptions`] carries only the caller-side
    /// knobs, including an optional different worker count — the shard
    /// set is then re-partitioned channel by channel, and responses
    /// stay bit-identical. Checkpointing continues to the same path.
    ///
    /// # Errors
    ///
    /// An unreadable/corrupt/mismatched manifest or shard file, or any
    /// [`Server::bind`] failure.
    pub fn resume(
        addr: &str,
        path: impl Into<PathBuf>,
        opts: ResumeOptions,
    ) -> Result<Server, ServeError> {
        let path = path.into();
        let manifest = Manifest::read(&path)?;
        let target = if opts.workers == 0 {
            manifest.workers
        } else {
            opts.workers
        };
        let config = ServeConfig {
            stream: manifest.stream.clone(),
            snapshot_every: manifest.snapshot_every,
            checkpoint_path: Some(path.clone()),
            checkpoint_every: manifest.checkpoint_every,
            cache_capacity: manifest.cache_capacity,
            cache_ttl: manifest.cache_ttl,
            workers: target,
            max_conns: opts.max_conns,
            jobs: opts.jobs,
            crash_after: opts.crash_after,
        };
        validate(&config)?;

        let mut sessions = Vec::with_capacity(manifest.workers);
        for (index, &(len, checksum)) in manifest.shards.iter().enumerate() {
            let file = shard_file(&path, manifest.generation, index);
            let blob = std::fs::read(&file)
                .map_err(|e| ServeError::Io(format!("cannot open {}: {e}", file.display())))?;
            if blob.len() as u64 != len || persist::fnv1a(&blob) != checksum {
                return Err(ServeError::Io(format!(
                    "checkpoint shard {index} ({}) does not match its manifest digest",
                    file.display()
                )));
            }
            let factory = StreamFactory::new(manifest.stream.clone())?;
            sessions.push(AnalysisSession::restore(factory, &blob, opts.jobs)?);
        }

        // The dispatcher total comes from the restored sessions (each
        // preserves its own total, dropped pushes included), captured
        // before any migration — adopting a record recounts only
        // accepted measurements.
        let total: u64 = sessions.iter().map(|s| s.len() as u64).sum();

        // Reconcile the channel order against what the blobs actually
        // hold: the manifest order first (filtered to channels
        // present), then any channel the order missed, in worker
        // order. A live checkpoint can lose that race without losing
        // data.
        let mut order = Vec::new();
        let mut known = std::collections::BTreeSet::new();
        let present: std::collections::BTreeSet<String> = sessions
            .iter()
            .flat_map(|s| s.channel_ids().map(|id| id.as_str().to_string()))
            .collect();
        for name in &manifest.channel_order {
            if present.contains(name) && known.insert(name.clone()) {
                order.push(name.clone());
            }
        }
        for session in &sessions {
            for id in session.channel_ids() {
                let name = id.as_str().to_string();
                if known.insert(name.clone()) {
                    order.push(name);
                }
            }
        }

        let sessions = if target == manifest.workers {
            sessions
        } else {
            repartition(&sessions, target, || new_worker_session(&config))?
        };
        let seeds = sessions
            .into_iter()
            .map(|session| WorkerSeed {
                session,
                cache: fresh_cache(&config),
            })
            .collect();
        Server::start(
            addr,
            config,
            seeds,
            order,
            total,
            CheckpointCursor {
                next_gen: manifest.generation + 1,
                prev: Some((manifest.generation, manifest.workers)),
            },
        )
    }

    fn start(
        addr: &str,
        config: ServeConfig,
        seeds: Vec<WorkerSeed>,
        channel_order: Vec<String>,
        total: u64,
        cursor: CheckpointCursor,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Io(format!("cannot bind {addr}: {e}")))?;
        let addr = listener.local_addr()?;
        // Anything that changes what a query would answer goes into the
        // fingerprint; progress counters go into each key instead.
        let ctx = WorkerContext {
            stream: config.stream.clone(),
            snapshot_every: config.snapshot_every,
            fingerprint: config_fingerprint(&[&config.stream, &config.snapshot_every]),
        };
        let (sharded, workers) = ShardedSession::spawn(seeds, channel_order, total, &ctx);
        let shared = Arc::new(Shared {
            sharded,
            config,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            checkpoint: Mutex::new(cursor),
            addr,
        });
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Run the accept loop until a client sends `Shutdown`. In-flight
    /// connections drain and the analysis workers join before this
    /// returns.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for fatal
    /// accept-loop failures.
    pub fn run(self) -> Result<(), ServeError> {
        let Server {
            listener,
            shared,
            workers,
        } = self;
        let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            // Admission control: past the bound, answer a typed Busy
            // farewell instead of queueing work we cannot serve soon.
            // Only the accept loop admits, so load-then-admit is
            // race-free; connection threads only ever decrement.
            let limit = shared.config.max_conns as u64;
            if limit > 0 {
                let active = shared.active_conns.load(Ordering::SeqCst);
                if active >= limit {
                    shared
                        .counters
                        .busy_rejections
                        .fetch_add(1, Ordering::SeqCst);
                    reject_busy(stream, active, limit);
                    continue;
                }
            }
            shared.counters.connections.fetch_add(1, Ordering::SeqCst);
            shared.active_conns.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&shared);
            handles.retain(|h| !h.is_finished());
            // proxima-lint: allow(no-thread-spawn-outside-sharding) -- connection
            // fan-out of the serve front end; analysis work still runs
            // only on the sharded worker pool.
            handles.push(thread::spawn(move || {
                serve_connection(stream, &shared);
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        // Dropping the dispatcher closes every mailbox; workers drain
        // and exit.
        drop(shared);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Run the accept loop on a fresh thread (for in-process tests and
    /// embedding).
    pub fn spawn(self) -> thread::JoinHandle<Result<(), ServeError>> {
        // proxima-lint: allow(no-thread-spawn-outside-sharding) -- the embedding
        // entry point that runs the accept loop off-thread.
        thread::spawn(move || self.run())
    }
}

fn validate(config: &ServeConfig) -> Result<(), ServeError> {
    if config.workers == 0 {
        return Err(ServeError::Config("workers must be at least 1".to_string()));
    }
    if config.checkpoint_path.is_some() != (config.checkpoint_every > 0) {
        return Err(ServeError::Config(
            "checkpoint_path and checkpoint_every must be set together".to_string(),
        ));
    }
    Ok(())
}

/// Write the `Busy` farewell to a rejected connection and close it.
fn reject_busy(stream: TcpStream, active: u64, limit: u64) {
    let _ = stream.set_nodelay(true);
    let mut writer = BufWriter::new(stream);
    let farewell = Response::Busy { active, limit }.encode();
    let _ = write_frame(&mut writer, &farewell).and_then(|()| writer.flush());
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader) {
            // Peer hung up cleanly between frames.
            Ok(None) => break,
            Ok(Some(payload)) => {
                let (response, shutdown) = match Request::decode(&payload) {
                    Ok(request) => handle(shared, request),
                    Err(e) => {
                        // The frame envelope was intact (checksum
                        // passed), so the stream stays synchronized:
                        // report and keep serving this client.
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::SeqCst);
                        (
                            Response::Error {
                                message: e.to_string(),
                            }
                            .encode(),
                            false,
                        )
                    }
                };
                if write_frame(&mut writer, &response)
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
                if shutdown {
                    // Unblock the accept loop so `run` observes the
                    // flag; the poke connection is never served.
                    let _ = TcpStream::connect(shared.addr);
                    break;
                }
            }
            Err(e) => {
                // Bad envelope: the byte stream is desynchronized, so
                // this connection is done — but only this connection.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::SeqCst);
                let farewell = Response::Error {
                    message: e.to_string(),
                }
                .encode();
                let _ = write_frame(&mut writer, &farewell).and_then(|()| writer.flush());
                break;
            }
        }
    }
}

/// Serve one decoded request. Returns the encoded response payload and
/// whether the server should shut down after sending it.
fn handle(shared: &Shared, request: Request) -> (Vec<u8>, bool) {
    let counters = &shared.counters;
    match request {
        Request::Ingest { channel, values } => {
            counters.frames_ingest.fetch_add(1, Ordering::SeqCst);
            (handle_ingest(shared, &channel, values), false)
        }
        Request::Snapshot { channel } => {
            counters.frames_snapshot.fetch_add(1, Ordering::SeqCst);
            let response = shared
                .sharded
                .snapshot(&channel)
                .unwrap_or_else(|e| error_response(e.to_string()));
            (response, false)
        }
        Request::Verdict { p, channel } => {
            counters.frames_verdict.fetch_add(1, Ordering::SeqCst);
            let response = shared
                .sharded
                .verdict(p, channel.as_deref())
                .unwrap_or_else(|e| error_response(e.to_string()));
            (response, false)
        }
        Request::Merge { channel, blob } => {
            counters.frames_merge.fetch_add(1, Ordering::SeqCst);
            (handle_merge(shared, &channel, blob), false)
        }
        Request::Checkpoint => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            if shared.config.checkpoint_path.is_none() {
                return (error_response("no checkpoint path configured"), false);
            }
            match write_server_checkpoint(shared, false) {
                Ok(bytes) => (Response::Checkpointed { bytes }.encode(), false),
                Err(e) => (error_response(format!("checkpoint failed: {e}")), false),
            }
        }
        Request::Stats => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            match build_stats(shared) {
                Ok(stats) => (Response::Stats(stats).encode(), false),
                Err(e) => (error_response(e.to_string()), false),
            }
        }
        Request::Shutdown => {
            counters.frames_admin.fetch_add(1, Ordering::SeqCst);
            shared.shutdown.store(true, Ordering::SeqCst);
            // Persist the final state so a later `resume` continues
            // exactly where the campaign stopped.
            if shared.config.checkpoint_path.is_some() {
                if let Err(e) = write_server_checkpoint(shared, false) {
                    return (
                        error_response(format!("shutdown checkpoint failed: {e}")),
                        true,
                    );
                }
            }
            (Response::ShuttingDown.encode(), true)
        }
    }
}

fn error_response(message: impl Into<String>) -> Vec<u8> {
    Response::Error {
        message: message.into(),
    }
    .encode()
}

fn handle_ingest(shared: &Shared, channel: &str, values: Vec<f64>) -> Vec<u8> {
    let reply = match shared.sharded.ingest(channel, values) {
        Ok(reply) => reply,
        Err(e) => return error_response(e.to_string()),
    };
    if let Err(e) = after_mutation(shared) {
        return error_response(format!("ingested, but checkpointing failed: {e}"));
    }
    Response::Ingested {
        channel_len: reply.channel_len,
        total: reply.total,
        snapshots: reply.snapshots,
    }
    .encode()
}

fn handle_merge(shared: &Shared, channel: &str, blob: Vec<u8>) -> Vec<u8> {
    let reply = match shared.sharded.merge(channel, blob) {
        Ok(reply) => reply,
        Err(e) => return error_response(e.to_string()),
    };
    if let Err(e) = after_mutation(shared) {
        return error_response(format!("merged, but checkpointing failed: {e}"));
    }
    Response::Merged {
        channel_len: reply.channel_len,
        total: reply.total,
    }
    .encode()
}

/// Post-mutation bookkeeping shared by ingest and merge: write an
/// auto-checkpoint when one falls due, then fire crash injection.
fn after_mutation(shared: &Shared) -> Result<(), ServeError> {
    if shared.config.checkpoint_path.is_some()
        && shared
            .sharded
            .checkpoint_due(shared.config.checkpoint_every)
    {
        write_server_checkpoint(shared, true)?;
    }
    if let Some(limit) = shared.config.crash_after {
        let total = shared.sharded.total();
        if total >= limit as u64 {
            eprintln!("mbpta serve: injected crash at {total} measurements (crash_after {limit})");
            let _ = io::stderr().flush();
            // proxima-lint: allow(no-exit-in-lib) -- deliberate crash
            // injection for the restart-determinism battery, reachable
            // only when the operator sets --crash-after.
            std::process::abort();
        }
    }
    Ok(())
}

/// The sibling file holding worker `index`'s sealed session blob for
/// checkpoint generation `generation`.
fn shard_file(path: &Path, generation: u64, index: usize) -> PathBuf {
    let name = path.file_name().map_or_else(
        || "checkpoint".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    path.with_file_name(format!("{name}.g{generation}.shard{index}"))
}

/// Write `bytes` to `path` atomically: a sibling temp file, fsync,
/// rename over the target, then best-effort fsync the directory — a
/// crash at any point leaves either the old or the new file intact,
/// never a torn one.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let name = path.file_name().map_or_else(
        || "checkpoint".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    let tmp = path.with_file_name(format!("{name}.tmp"));
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| ServeError::Io(format!("cannot create {}: {e}", tmp.display())))?;
    file.write_all(bytes)
        .map_err(|e| ServeError::Io(format!("cannot write {}: {e}", tmp.display())))?;
    file.sync_all()
        .map_err(|e| ServeError::Io(format!("cannot sync {}: {e}", tmp.display())))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| {
        ServeError::Io(format!(
            "cannot rename {} over {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = std::fs::File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// What the checkpoint manifest records.
struct Manifest {
    stream: StreamConfig,
    snapshot_every: usize,
    checkpoint_every: usize,
    cache_capacity: usize,
    cache_ttl: u64,
    workers: usize,
    generation: u64,
    channel_order: Vec<String>,
    /// Per-shard `(byte length, FNV-1a digest)` of the sealed blobs.
    shards: Vec<(u64, u64)>,
}

impl Manifest {
    fn read(path: &Path) -> Result<Manifest, ServeError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Io(format!("cannot open {}: {e}", path.display())))?;
        let payload = persist::unseal(&bytes, MAGIC_SERVE)?;
        let mut r = Reader::new(payload);
        let stream = StreamConfig::decode(&mut r)?;
        let snapshot_every = r.usize()?;
        let checkpoint_every = r.usize()?;
        let cache_capacity = r.usize()?;
        let cache_ttl = r.u64()?;
        let workers = r.usize()?;
        let generation = r.u64()?;
        let n = r.usize()?;
        if n > payload.len() {
            return Err(ServeError::Analysis(format!(
                "manifest channel count {n} exceeds the payload size"
            )));
        }
        let mut channel_order = Vec::with_capacity(n);
        for _ in 0..n {
            channel_order.push(r.str()?.to_string());
        }
        let m = r.usize()?;
        if m != workers {
            return Err(ServeError::Analysis(format!(
                "manifest lists {m} shard digests for {workers} workers"
            )));
        }
        let mut shards = Vec::with_capacity(m);
        for _ in 0..m {
            shards.push((r.u64()?, r.u64()?));
        }
        r.finish()?;
        Ok(Manifest {
            stream,
            snapshot_every,
            checkpoint_every,
            cache_capacity,
            cache_ttl,
            workers,
            generation,
            channel_order,
            shards,
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.stream.encode(&mut w);
        w.usize(self.snapshot_every);
        w.usize(self.checkpoint_every);
        w.usize(self.cache_capacity);
        w.u64(self.cache_ttl);
        w.usize(self.workers);
        w.u64(self.generation);
        w.usize(self.channel_order.len());
        for name in &self.channel_order {
            w.str(name);
        }
        w.usize(self.shards.len());
        for &(len, checksum) in &self.shards {
            w.u64(len);
            w.u64(checksum);
        }
        persist::seal(MAGIC_SERVE, w.into_bytes())
    }
}

/// Checkpoint the sharded session: one sealed session blob per worker
/// in generation-tagged sibling files, then the manifest (serve
/// parameters, channel order, shard digests) renamed over
/// `checkpoint_path` as the commit point. After the commit the
/// previous generation's shard files are retired best-effort — a crash
/// anywhere leaves a complete generation on disk.
///
/// With `only_if_due` set the write is skipped when another trigger
/// already checkpointed while this one waited on the cursor.
fn write_server_checkpoint(shared: &Shared, only_if_due: bool) -> Result<u64, ServeError> {
    let path = shared
        .config
        .checkpoint_path
        .clone()
        .ok_or_else(|| ServeError::Config("no checkpoint path configured".to_string()))?;
    let mut cursor = lock(&shared.checkpoint, "checkpoint cursor")?;
    if only_if_due
        && !shared
            .sharded
            .checkpoint_due(shared.config.checkpoint_every)
    {
        return Ok(0);
    }
    // Order before blobs: a channel racing into existence mid-capture
    // then appears in the blobs and is reconciled at resume; the other
    // way around the manifest would name a channel no blob holds.
    let channel_order = shared.sharded.channel_order()?;
    let total = shared.sharded.total();
    let blobs = shared.sharded.checkpoint_blobs()?;
    let generation = cursor.next_gen;

    let mut shards = Vec::with_capacity(blobs.len());
    let mut written = 0u64;
    for (index, blob) in blobs.iter().enumerate() {
        write_atomic(&shard_file(&path, generation, index), blob)?;
        shards.push((blob.len() as u64, persist::fnv1a(blob)));
        written += blob.len() as u64;
    }
    let manifest = Manifest {
        stream: shared.config.stream.clone(),
        snapshot_every: shared.config.snapshot_every,
        checkpoint_every: shared.config.checkpoint_every,
        cache_capacity: shared.config.cache_capacity,
        cache_ttl: shared.config.cache_ttl,
        workers: blobs.len(),
        generation,
        channel_order,
        shards,
    }
    .encode();
    write_atomic(&path, &manifest)?;
    written += manifest.len() as u64;

    if let Some((prev_gen, prev_count)) = cursor.prev {
        for index in 0..prev_count {
            let _ = std::fs::remove_file(shard_file(&path, prev_gen, index));
        }
    }
    cursor.prev = Some((generation, blobs.len()));
    cursor.next_gen = generation + 1;
    drop(cursor);

    shared.sharded.mark_checkpointed(total);
    shared
        .counters
        .checkpoints_written
        .fetch_add(1, Ordering::SeqCst);
    shared
        .counters
        .last_checkpoint_bytes
        .store(written, Ordering::SeqCst);
    Ok(written)
}

fn build_stats(shared: &Shared) -> Result<ServerStats, ServeError> {
    let shards = shared.sharded.shard_stats()?;
    let sum = |f: fn(&crate::frame::ShardStats) -> u64| shards.iter().map(f).sum::<u64>();
    let c = &shared.counters;
    Ok(ServerStats {
        total: shared.sharded.total(),
        channels: shared.sharded.channel_count()?,
        connections: c.connections.load(Ordering::SeqCst),
        frames_ingest: c.frames_ingest.load(Ordering::SeqCst),
        frames_snapshot: c.frames_snapshot.load(Ordering::SeqCst),
        frames_verdict: c.frames_verdict.load(Ordering::SeqCst),
        frames_merge: c.frames_merge.load(Ordering::SeqCst),
        frames_admin: c.frames_admin.load(Ordering::SeqCst),
        protocol_errors: c.protocol_errors.load(Ordering::SeqCst),
        cache_hits: sum(|s| s.cache_hits),
        cache_misses: sum(|s| s.cache_misses),
        cache_insertions: sum(|s| s.cache_insertions),
        cache_evictions: sum(|s| s.cache_evictions),
        cache_len: sum(|s| s.cache_len),
        cache_capacity: (shared.config.cache_capacity * shared.config.workers) as u64,
        checkpoints_written: c.checkpoints_written.load(Ordering::SeqCst),
        last_checkpoint_bytes: c.last_checkpoint_bytes.load(Ordering::SeqCst),
        since_checkpoint: shared.sharded.since_checkpoint(),
        cache_expirations: sum(|s| s.cache_expirations),
        busy_rejections: c.busy_rejections.load(Ordering::SeqCst),
        workers: shared.config.workers as u64,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, ServeClient};

    fn start(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<Result<(), ServeError>>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();
        (addr, server.spawn())
    }

    /// Deterministic per-channel feed (no clock, no OS randomness).
    fn feed(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                // SplitMix64 step.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                1000.0 + 200.0 * ((z >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect()
    }

    /// A scratch path under the target-relative temp dir, unique per
    /// test via a process-wide counter (no clock, no randomness).
    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "proxima-serve-{}-{tag}-{id}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn ingest_query_shutdown_round_trip() {
        let (addr, handle) = start(ServeConfig {
            snapshot_every: 100,
            ..ServeConfig::default()
        });
        let mut client = ServeClient::connect(addr).unwrap();
        let values = feed(7, 1500);
        let (channel_len, total, _snaps) = client.ingest("nominal", &values).unwrap();
        assert_eq!(channel_len, 1500);
        assert_eq!(total, 1500);

        let latest = client.snapshot("nominal").unwrap();
        let latest = latest.expect("a snapshot was emitted for the channel");
        assert_eq!(latest.channel, "nominal");
        assert!(latest.estimate.pwcet > latest.estimate.high_watermark);

        let verdicts = client.verdict(1e-12, None).unwrap();
        match verdicts {
            Response::Verdicts {
                channels, envelope, ..
            } => {
                assert_eq!(channels.len(), 1);
                assert!(channels[0].1.is_ok(), "{:?}", channels[0].1);
                let (winner, budget) = envelope.unwrap();
                assert_eq!(winner, "nominal");
                assert!(budget > latest.estimate.high_watermark);
            }
            other => panic!("unexpected response {other:?}"),
        }

        // The same query again must come from the cache.
        let _ = client.verdict(1e-12, None).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.total, 1500);
        assert_eq!(stats.channels, 1);
        assert_eq!(stats.protocol_errors, 0);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.shards.len(), 1);
        assert_eq!(stats.shards[0].total, 1500);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn ingest_invalidates_cached_verdicts() {
        let (addr, handle) = start(ServeConfig::default());
        let mut client = ServeClient::connect(addr).unwrap();
        let values = feed(11, 1200);
        client.ingest("ch", &values[..600]).unwrap();
        let before = client.verdict(1e-12, Some("ch")).unwrap();
        client.ingest("ch", &values[600..]).unwrap();
        let after = client.verdict(1e-12, Some("ch")).unwrap();
        assert_ne!(before, after, "new data must re-key the cached answer");
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 2);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn responses_are_bit_identical_across_worker_counts() {
        let channels = ["alpha", "bravo", "charlie", "delta", "echo"];
        let mut captured: Vec<Vec<(Option<u64>, Response, Response)>> = Vec::new();
        for workers in [1usize, 2, 4] {
            let (addr, handle) = start(ServeConfig {
                workers,
                snapshot_every: 100,
                ..ServeConfig::default()
            });
            let mut client = ServeClient::connect(addr).unwrap();
            let mut per_channel = Vec::new();
            for (i, name) in channels.iter().enumerate() {
                let values = feed(100 + i as u64, 700);
                client.ingest(name, &values[..350]).unwrap();
                client.ingest(name, &values[350..]).unwrap();
            }
            for name in &channels {
                let latest = client.snapshot(name).unwrap();
                per_channel.push((
                    latest.map(|s| s.estimate.pwcet.to_bits()),
                    client.verdict(1e-12, Some(name)).unwrap(),
                    client.verdict(1e-9, None).unwrap(),
                ));
            }
            let stats = client.stats().unwrap();
            assert_eq!(stats.total, 5 * 700);
            assert_eq!(stats.channels, 5);
            assert_eq!(stats.workers, workers as u64);
            assert_eq!(stats.shards.len(), workers);
            assert_eq!(
                stats.shards.iter().map(|s| s.total).sum::<u64>(),
                5 * 700,
                "every measurement lands on exactly one worker"
            );
            captured.push(per_channel);
            client.shutdown().unwrap();
            handle.join().unwrap().unwrap();
        }
        for other in &captured[1..] {
            assert_eq!(
                &captured[0], other,
                "snapshots and verdicts must not depend on the worker count"
            );
        }
    }

    #[test]
    fn busy_admission_answers_a_typed_frame() {
        let (addr, handle) = start(ServeConfig {
            max_conns: 1,
            ..ServeConfig::default()
        });
        let mut first = ServeClient::connect(addr).unwrap();
        // Served once, so the accept loop has definitely admitted it.
        first.ingest("ch", &feed(3, 100)).unwrap();
        let mut second = ServeClient::connect(addr).unwrap();
        match second.stats() {
            Err(ClientError::Busy { active, limit }) => {
                assert_eq!(limit, 1);
                assert!(active >= 1);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(second);
        let stats = first.stats().unwrap();
        assert_eq!(stats.busy_rejections, 1);
        assert_eq!(stats.connections, 1, "rejected connections are not served");
        first.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn sharded_checkpoint_resumes_bit_identical_at_any_worker_count() {
        let path = scratch("resume");
        let (addr, handle) = start(ServeConfig {
            workers: 4,
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 400,
            ..ServeConfig::default()
        });
        let mut client = ServeClient::connect(addr).unwrap();
        for (i, name) in ["alpha", "bravo", "charlie"].iter().enumerate() {
            client.ingest(name, &feed(200 + i as u64, 600)).unwrap();
        }
        let reference = client.verdict(1e-12, None).unwrap();
        let total_before = client.stats().unwrap().total;
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();

        // Resume at the manifest's count, at fewer, and at more
        // workers: bit-identical verdicts every time.
        for workers in [0usize, 2, 5] {
            let server = Server::resume(
                "127.0.0.1:0",
                &path,
                ResumeOptions {
                    workers,
                    ..ResumeOptions::default()
                },
            )
            .unwrap();
            let addr = server.local_addr();
            let handle = server.spawn();
            let mut client = ServeClient::connect(addr).unwrap();
            let stats = client.stats().unwrap();
            assert_eq!(stats.total, total_before);
            assert_eq!(stats.channels, 3);
            assert_eq!(stats.workers, if workers == 0 { 4 } else { workers as u64 });
            let resumed = client.verdict(1e-12, None).unwrap();
            assert_eq!(
                resumed, reference,
                "resume at {workers} workers changed the verdict"
            );
            client.shutdown().unwrap();
            handle.join().unwrap().unwrap();
        }

        // Only the last generation's files remain.
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let mut generations: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|f| f.starts_with(&format!("{name}.g")))
            .collect();
        generations.sort();
        let distinct: std::collections::BTreeSet<&str> = generations
            .iter()
            .filter_map(|f| f.split(".shard").next())
            .collect();
        assert_eq!(
            distinct.len(),
            1,
            "only the last generation's shard files may remain: {generations:?}"
        );

        let _ = std::fs::remove_file(&path);
        for file in generations {
            let _ = std::fs::remove_file(dir.join(file));
        }
    }

    #[test]
    fn poisoned_mutex_surfaces_as_typed_error_not_panic() {
        let m = Arc::new(Mutex::new(17u32));
        let m2 = Arc::clone(&m);
        thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the guard");
        })
        .join()
        .unwrap_err();
        match lock(&m, "test state") {
            Err(ServeError::Poisoned(what)) => assert_eq!(what, "test state"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        let message = lock(&m, "test state").unwrap_err().to_string();
        assert!(
            message.contains("poisoned"),
            "the error frame should say why the request failed: {message}"
        );
    }

    #[test]
    fn bind_rejects_orphan_checkpoint_settings() {
        let config = ServeConfig {
            checkpoint_path: Some(PathBuf::from("ck.bin")),
            checkpoint_every: 0,
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", config).is_err());
        let config = ServeConfig {
            checkpoint_path: None,
            checkpoint_every: 100,
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", config).is_err());
    }

    #[test]
    fn bind_rejects_zero_workers() {
        let config = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        match Server::bind("127.0.0.1:0", config) {
            Err(ServeError::Config(m)) => assert!(m.contains("workers"), "{m}"),
            Err(other) => panic!("expected a Config error, got {other:?}"),
            Ok(_) => panic!("zero workers must not bind"),
        }
    }
}
