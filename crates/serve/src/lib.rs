//! `mbpta serve`: an offline-safe framed-TCP analysis service over a
//! **sharded** multi-channel session core.
//!
//! A measurement campaign often runs where the analysis cannot: on a
//! target board, across a test-rig farm, in per-tenant shards. This
//! crate turns the library's [`AnalysisSession`] into a long-running
//! **service** that many concurrent producers and observers share over
//! plain TCP:
//!
//! * [`frame`] — the wire protocol: length-prefixed, checksummed
//!   frames (`PXNF`) carrying typed [`Request`]/[`Response`] payloads
//!   encoded with the same codec as on-disk checkpoints. Hostile or
//!   corrupt input maps to typed errors and poisons only its own
//!   connection.
//! * [`server`] — the service: a hand-rolled `std::net` accept loop,
//!   one thread per connection, and a channel-partitioned worker pool
//!   behind them — each of `--workers N` analysis threads owns its own
//!   session shard and response cache, channels route to workers by
//!   name hash, and bounded mailboxes turn overload into backpressure
//!   instead of drops. Past `--max-conns` the accept loop answers a
//!   typed `Busy` frame. INGEST streams tagged batches in,
//!   SNAPSHOT/VERDICT answer from per-worker fingerprint-keyed caches
//!   (the envelope verdict fans out and folds per-worker partials),
//!   MERGE adopts sealed federated shard blobs (state travels, data
//!   does not), and the service auto-checkpoints — one sealed blob per
//!   worker plus a manifest — so [`Server::resume`] restarts a killed
//!   service bit-identically, even at a different worker count.
//!   **Every response is bit-identical at any worker count.**
//! * [`cache`] — the query cache: responses keyed by a fingerprint of
//!   the analysis configuration, the query, and the ingest progress it
//!   was computed at, so any ingest invalidates exactly the answers it
//!   changes and repeat queries are O(1). A deterministic tick-based
//!   TTL (`--cache-ttl`) opportunistically expires cold entries.
//! * [`client`] — a small blocking client ([`ServeClient`]) used by
//!   the `mbpta call` CLI, the test batteries, and embedders.
//!
//! No async runtime, no new dependencies, no network access beyond the
//! sockets the embedder binds — everything runs offline on loopback.
//!
//! # Example
//!
//! ```
//! use proxima_serve::{ServeClient, ServeConfig, Server};
//!
//! let config = ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! };
//! let server = Server::bind("127.0.0.1:0", config)?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = ServeClient::connect(addr)?;
//! let feed: Vec<f64> = (0..1500).map(|i| 1000.0 + f64::from(i % 97)).collect();
//! client.ingest("nominal", &feed).unwrap();
//! let stats = client.stats().unwrap();
//! assert_eq!(stats.total, 1500);
//! client.shutdown().unwrap();
//! handle.join().unwrap().unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`AnalysisSession`]: proxima_mbpta::AnalysisSession
//! [`Request`]: frame::Request
//! [`Response`]: frame::Response

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod frame;
pub mod server;
mod shard;

pub use cache::VerdictCache;
pub use client::{ClientError, ServeClient};
pub use frame::{
    FrameError, Request, Response, ServerStats, ShardStats, WireSnapshot, MAGIC_FRAME, MAX_FRAME,
};
pub use server::{ResumeOptions, ServeConfig, ServeError, Server, MAGIC_SERVE};
