//! The sharded serve core: channel-partitioned analysis workers.
//!
//! One mutex-guarded session serializes every request; the federated
//! fold already proves channels are independent, so the serve layer
//! partitions them instead. A [`ShardedSession`] owns N **worker
//! threads**, each holding its own [`AnalysisSession`], its own
//! [`VerdictCache`] and its own latest-snapshot map. A channel's owner
//! is a pure function of its name — FNV-1a of the tag mod the worker
//! count ([`owner_of`]) — so two requests contend only when they touch
//! channels that hash to the same worker.
//!
//! Connection handlers talk to workers through **bounded mailboxes**
//! (`std::sync::mpsc::sync_channel` of depth [`MAILBOX_DEPTH`]). A full
//! mailbox blocks the sender — backpressure propagates to the TCP
//! connection, and no request is ever dropped or reordered within a
//! worker. Each request carries its own rendezvous reply channel.
//!
//! # The worker-count invariance contract
//!
//! Every response must be **bit-identical at any worker count**. Three
//! design rules deliver that:
//!
//! * Worker sessions run with the session scheduler off
//!   (`snapshot_every(0)`): the core then emits only channel-pure
//!   convergence announcements. The serve layer adds its own *per
//!   channel* snapshot cadence (`snapshot_every` accepted measurements
//!   of that channel, polled at ingest-batch boundaries), so what a
//!   channel emits depends only on its own feed — never on how other
//!   channels interleave or which worker owns it.
//! * The session-wide totals in responses come from one dispatcher
//!   counter fed by per-request deltas, not from any single worker's
//!   session.
//! * Envelope verdicts fan out: each worker finalizes a clone of its
//!   own session into a cached *partial* (its channels, in first-seen
//!   order), and the dispatcher folds the partials in **global**
//!   first-seen channel order with exactly the single-session
//!   `envelope_budget` scan (max of budgets, strict `>`, first error
//!   wins) — so the fold is associative over any partitioning.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::thread;

use proxima_mbpta::engine::Engine as _;
use proxima_mbpta::persist::{self, Decode, Encode, Reader, Writer};
use proxima_mbpta::{AnalysisSession, Verdict};
use proxima_stream::{StreamConfig, StreamEngine, StreamFactory};

use crate::cache::{query_key, VerdictCache};
use crate::frame::{Response, ShardStats, WireSnapshot};
use crate::server::{lock, ServeError};

/// Bound on each worker's request mailbox. A full mailbox blocks the
/// sending connection thread (backpressure), it never drops requests.
pub const MAILBOX_DEPTH: usize = 32;

/// Cache-key kinds (folded into [`query_key`]).
const KIND_SNAPSHOT: u8 = 2;
const KIND_VERDICT: u8 = 3;
/// A worker's cached all-channel verdict *partial* (not a full
/// response); keyed by the worker session's total, probability-blind
/// because channel outcomes do not depend on `p`.
const KIND_PARTIAL: u8 = 4;

/// The worker that owns `channel`: FNV-1a of the tag mod the worker
/// count. Deterministic and stable across restarts, so a resumed or
/// re-partitioned server routes every channel exactly where the
/// checkpoint layout expects it.
pub(crate) fn owner_of(channel: &str, workers: usize) -> usize {
    (persist::fnv1a(channel.as_bytes()) % workers as u64) as usize
}

fn worker_gone(index: usize) -> ServeError {
    ServeError::Analysis(format!(
        "analysis worker {index} is unavailable (panicked or shut down)"
    ))
}

/// Everything a worker thread needs beyond its session.
#[derive(Clone)]
pub(crate) struct WorkerContext {
    /// Streaming-engine knobs, for adopting federated blobs.
    pub stream: StreamConfig,
    /// Serve-layer per-channel snapshot cadence (0 = announcements
    /// only).
    pub snapshot_every: usize,
    /// Analysis-configuration fingerprint folded into cache keys.
    pub fingerprint: u64,
}

/// One worker's starting state.
pub(crate) struct WorkerSeed {
    pub session: AnalysisSession<StreamFactory>,
    pub cache: VerdictCache,
}

/// What an ingest did, from the owning worker's point of view.
struct IngestOutcome {
    channel_len: u64,
    /// Worker-session growth (counts dropped pushes too, exactly like
    /// the session's own total).
    delta: u64,
    new_channel: bool,
    snapshots: Vec<WireSnapshot>,
}

/// What a merge-adopt did, from the owning worker's point of view.
struct MergeOutcome {
    channel_len: u64,
    delta: u64,
}

/// A request in a worker's mailbox. Every variant carries a rendezvous
/// reply sender; the worker never initiates communication.
enum Job {
    Ingest {
        channel: String,
        values: Vec<f64>,
        reply: SyncSender<Result<IngestOutcome, ServeError>>,
    },
    Merge {
        channel: String,
        blob: Vec<u8>,
        reply: SyncSender<Result<MergeOutcome, ServeError>>,
    },
    /// Reply: the full encoded [`Response::Snapshot`].
    Snapshot {
        channel: String,
        reply: SyncSender<Vec<u8>>,
    },
    /// Reply: the full encoded [`Response::Verdicts`] for one channel.
    VerdictChannel {
        channel: String,
        p: f64,
        reply: SyncSender<Vec<u8>>,
    },
    /// Reply: the worker's encoded all-channel verdict partial.
    VerdictAll {
        reply: SyncSender<Vec<u8>>,
    },
    Stats {
        reply: SyncSender<ShardStats>,
    },
    /// Reply: the worker session's sealed checkpoint blob.
    Checkpoint {
        reply: SyncSender<Result<Vec<u8>, ServeError>>,
    },
}

/// Global first-seen channel order plus a membership set, guarded by
/// one (briefly held) mutex at the dispatch layer.
struct Registry {
    order: Vec<String>,
    known: BTreeSet<String>,
}

/// Dispatcher-side reply for an ingest.
pub(crate) struct IngestReply {
    pub channel_len: u64,
    pub total: u64,
    pub snapshots: Vec<WireSnapshot>,
}

/// Dispatcher-side reply for a merge.
pub(crate) struct MergeReply {
    pub channel_len: u64,
    pub total: u64,
}

/// The channel-partitioned session engine: N workers behind bounded
/// mailboxes, one global channel registry, one global total.
pub(crate) struct ShardedSession {
    senders: Vec<SyncSender<Job>>,
    registry: Mutex<Registry>,
    /// Session-wide measurement count (sum of worker deltas). The
    /// single source for every `total` a response reports.
    total: AtomicU64,
    last_checkpoint_at: AtomicU64,
}

impl ShardedSession {
    /// Spawn one worker thread per seed and return the dispatcher plus
    /// the worker join handles (joined by the server after the accept
    /// loop drains; workers exit when the dispatcher drops).
    pub(crate) fn spawn(
        seeds: Vec<WorkerSeed>,
        channel_order: Vec<String>,
        total: u64,
        ctx: &WorkerContext,
    ) -> (ShardedSession, Vec<thread::JoinHandle<()>>) {
        let mut senders = Vec::with_capacity(seeds.len());
        let mut handles = Vec::with_capacity(seeds.len());
        for seed in seeds {
            let (tx, rx) = sync_channel::<Job>(MAILBOX_DEPTH);
            let mut worker = Worker {
                session: seed.session,
                cache: seed.cache,
                latest: HashMap::new(),
                stream: ctx.stream.clone(),
                snapshot_every: ctx.snapshot_every,
                fingerprint: ctx.fingerprint,
            };
            senders.push(tx);
            handles.push(thread::spawn(move || worker.run(&rx)));
        }
        let known = channel_order.iter().cloned().collect();
        let sharded = ShardedSession {
            senders,
            registry: Mutex::new(Registry {
                order: channel_order,
                known,
            }),
            total: AtomicU64::new(total),
            last_checkpoint_at: AtomicU64::new(total),
        };
        (sharded, handles)
    }

    fn owner(&self, channel: &str) -> usize {
        owner_of(channel, self.senders.len())
    }

    /// Send one job to worker `index`; the mailbox bound makes this
    /// block (never drop) when the worker is behind.
    fn send(&self, index: usize, job: Job) -> Result<(), ServeError> {
        self.senders[index]
            .send(job)
            .map_err(|_| worker_gone(index))
    }

    fn record_channel(&self, channel: &str) -> Result<(), ServeError> {
        let mut registry = lock(&self.registry, "channel registry")?;
        if registry.known.insert(channel.to_string()) {
            registry.order.push(channel.to_string());
        }
        Ok(())
    }

    /// Route an ingest to the channel's owner and fold its delta into
    /// the global total.
    pub(crate) fn ingest(
        &self,
        channel: &str,
        values: Vec<f64>,
    ) -> Result<IngestReply, ServeError> {
        let index = self.owner(channel);
        let (tx, rx) = sync_channel(1);
        self.send(
            index,
            Job::Ingest {
                channel: channel.to_string(),
                values,
                reply: tx,
            },
        )?;
        let outcome = rx.recv().map_err(|_| worker_gone(index))??;
        if outcome.new_channel {
            self.record_channel(channel)?;
        }
        let before = self.total.fetch_add(outcome.delta, Ordering::SeqCst);
        Ok(IngestReply {
            channel_len: outcome.channel_len,
            total: before + outcome.delta,
            snapshots: outcome.snapshots,
        })
    }

    /// Route a federated-blob adoption to the channel's owner.
    pub(crate) fn merge(&self, channel: &str, blob: Vec<u8>) -> Result<MergeReply, ServeError> {
        let index = self.owner(channel);
        let (tx, rx) = sync_channel(1);
        self.send(
            index,
            Job::Merge {
                channel: channel.to_string(),
                blob,
                reply: tx,
            },
        )?;
        let outcome = rx.recv().map_err(|_| worker_gone(index))??;
        self.record_channel(channel)?;
        let before = self.total.fetch_add(outcome.delta, Ordering::SeqCst);
        Ok(MergeReply {
            channel_len: outcome.channel_len,
            total: before + outcome.delta,
        })
    }

    /// Answer a snapshot query from the owning worker's latest map and
    /// cache. Returns the encoded response.
    pub(crate) fn snapshot(&self, channel: &str) -> Result<Vec<u8>, ServeError> {
        let index = self.owner(channel);
        let (tx, rx) = sync_channel(1);
        self.send(
            index,
            Job::Snapshot {
                channel: channel.to_string(),
                reply: tx,
            },
        )?;
        rx.recv().map_err(|_| worker_gone(index))
    }

    /// Answer a verdict query: routed to the owner for one channel,
    /// fanned out and folded for the envelope. Returns the encoded
    /// response.
    pub(crate) fn verdict(&self, p: f64, channel: Option<&str>) -> Result<Vec<u8>, ServeError> {
        match channel {
            Some(name) => {
                let known = lock(&self.registry, "channel registry")?
                    .known
                    .contains(name);
                if !known {
                    return Err(ServeError::Analysis(format!("unknown channel `{name}`")));
                }
                let index = self.owner(name);
                let (tx, rx) = sync_channel(1);
                self.send(
                    index,
                    Job::VerdictChannel {
                        channel: name.to_string(),
                        p,
                        reply: tx,
                    },
                )?;
                rx.recv().map_err(|_| worker_gone(index))
            }
            None => {
                // Fan out first, then collect: workers finalize their
                // partials concurrently.
                let mut replies = Vec::with_capacity(self.senders.len());
                for index in 0..self.senders.len() {
                    let (tx, rx) = sync_channel(1);
                    self.send(index, Job::VerdictAll { reply: tx })?;
                    replies.push(rx);
                }
                let mut partials = Vec::with_capacity(replies.len());
                for (index, rx) in replies.into_iter().enumerate() {
                    let bytes = rx.recv().map_err(|_| worker_gone(index))?;
                    partials.push(decode_partial(&bytes)?);
                }
                let order = lock(&self.registry, "channel registry")?.order.clone();
                Ok(fold_verdicts(p, &order, partials).encode())
            }
        }
    }

    /// Per-worker counters, in worker order.
    pub(crate) fn shard_stats(&self) -> Result<Vec<ShardStats>, ServeError> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for index in 0..self.senders.len() {
            let (tx, rx) = sync_channel(1);
            self.send(index, Job::Stats { reply: tx })?;
            replies.push(rx);
        }
        let mut stats = Vec::with_capacity(replies.len());
        for (index, rx) in replies.into_iter().enumerate() {
            stats.push(rx.recv().map_err(|_| worker_gone(index))?);
        }
        Ok(stats)
    }

    /// One sealed session blob per worker, in worker order.
    pub(crate) fn checkpoint_blobs(&self) -> Result<Vec<Vec<u8>>, ServeError> {
        let mut replies = Vec::with_capacity(self.senders.len());
        for index in 0..self.senders.len() {
            let (tx, rx) = sync_channel(1);
            self.send(index, Job::Checkpoint { reply: tx })?;
            replies.push(rx);
        }
        let mut blobs = Vec::with_capacity(replies.len());
        for (index, rx) in replies.into_iter().enumerate() {
            blobs.push(rx.recv().map_err(|_| worker_gone(index))??);
        }
        Ok(blobs)
    }

    /// Global first-seen channel order (for the checkpoint manifest).
    pub(crate) fn channel_order(&self) -> Result<Vec<String>, ServeError> {
        Ok(lock(&self.registry, "channel registry")?.order.clone())
    }

    pub(crate) fn channel_count(&self) -> Result<u64, ServeError> {
        Ok(lock(&self.registry, "channel registry")?.order.len() as u64)
    }

    pub(crate) fn total(&self) -> u64 {
        self.total.load(Ordering::SeqCst)
    }

    pub(crate) fn since_checkpoint(&self) -> u64 {
        self.total()
            .saturating_sub(self.last_checkpoint_at.load(Ordering::SeqCst))
    }

    pub(crate) fn checkpoint_due(&self, checkpoint_every: usize) -> bool {
        checkpoint_every > 0 && self.since_checkpoint() >= checkpoint_every as u64
    }

    /// Reset the cadence mark to `at_total` (the global total captured
    /// when the checkpoint blobs were taken).
    pub(crate) fn mark_checkpointed(&self, at_total: u64) {
        self.last_checkpoint_at.store(at_total, Ordering::SeqCst);
    }
}

/// Move every channel of `sessions` into `target` fresh worker
/// sessions according to [`owner_of`] — the manifest re-partitioning
/// path of `--resume --workers M` when a checkpoint was written at a
/// different worker count. Channel records round-trip byte-for-byte
/// (engine state, quarantine, drop counters, snapshot bookkeeping), so
/// a migrated channel's later responses are bit-identical to never
/// having moved.
pub(crate) fn repartition(
    sessions: &[AnalysisSession<StreamFactory>],
    target: usize,
    mut fresh: impl FnMut() -> Result<AnalysisSession<StreamFactory>, ServeError>,
) -> Result<Vec<AnalysisSession<StreamFactory>>, ServeError> {
    let mut out = Vec::with_capacity(target);
    for _ in 0..target {
        out.push(fresh()?);
    }
    for session in sessions {
        let ids: Vec<String> = session
            .channel_ids()
            .map(|id| id.as_str().to_string())
            .collect();
        for id in ids {
            let record = session.export_channel_record(&id)?;
            out[owner_of(&id, target)].adopt_channel_record(&record)?;
        }
    }
    Ok(out)
}

/// Encode a worker's all-channel verdict partial: its channels in
/// first-seen order, each an already-stringified outcome. The format
/// is process-internal (cached, never on the wire or on disk).
fn encode_partial(channels: &[proxima_mbpta::session::ChannelVerdict]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(channels.len());
    for entry in channels {
        w.str(entry.channel.as_str());
        match &entry.outcome {
            Ok(verdict) => {
                w.bool(true);
                verdict.encode(&mut w);
            }
            Err(e) => {
                w.bool(false);
                w.str(&e.to_string());
            }
        }
    }
    w.into_bytes()
}

fn partial_codec_bug(e: impl std::fmt::Display) -> ServeError {
    ServeError::Analysis(format!("internal verdict-partial codec error: {e}"))
}

/// One channel's share of a worker's verdict partial: the name and
/// either the finalized verdict or that channel's quarantine error.
type ChannelPartial = (String, Result<Verdict, String>);

fn decode_partial(bytes: &[u8]) -> Result<Vec<ChannelPartial>, ServeError> {
    let mut r = Reader::new(bytes);
    let n = r.usize().map_err(partial_codec_bug)?;
    if n > bytes.len() {
        return Err(partial_codec_bug("channel count exceeds payload"));
    }
    let mut channels = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str().map_err(partial_codec_bug)?.to_string();
        let outcome = if r.bool().map_err(partial_codec_bug)? {
            Ok(Verdict::decode(&mut r).map_err(partial_codec_bug)?)
        } else {
            Err(r.str().map_err(partial_codec_bug)?.to_string())
        };
        channels.push((name, outcome));
    }
    r.finish().map_err(partial_codec_bug)?;
    Ok(channels)
}

/// Fold per-worker partials into the all-channel verdict response,
/// replicating `SessionVerdict::envelope_budget` exactly: channels in
/// global first-seen order, the envelope the maximum budget over ok
/// channels (strict `>`, so ties keep the earlier channel), the first
/// budget error aborting the scan, and the no-ok-channel fallback
/// reporting the first channel's error.
fn fold_verdicts(
    p: f64,
    order: &[String],
    partials: Vec<Vec<(String, Result<Verdict, String>)>>,
) -> Response {
    // Each channel lives in exactly one worker's partial. Pull them
    // into global order; a channel racing into existence mid-fan-out
    // may miss the registry order, so leftovers append in worker order
    // (deterministic under any sequential schedule).
    let mut flat: Vec<Option<(String, Result<Verdict, String>)>> =
        partials.into_iter().flatten().map(Some).collect();
    let slots: BTreeMap<String, usize> = flat
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.as_ref().map(|(name, _)| (name.clone(), i)))
        .collect();
    let mut channels = Vec::with_capacity(flat.len());
    for name in order {
        if let Some(&i) = slots.get(name) {
            if let Some(entry) = flat[i].take() {
                channels.push(entry);
            }
        }
    }
    channels.extend(flat.into_iter().flatten());

    let mut best: Option<(usize, f64)> = None;
    let mut budget_error: Option<String> = None;
    for (i, (_, outcome)) in channels.iter().enumerate() {
        if let Ok(verdict) = outcome {
            match verdict.budget_for(p) {
                Err(e) => {
                    budget_error = Some(e.to_string());
                    break;
                }
                Ok(budget) => {
                    if best.is_none_or(|(_, current)| budget > current) {
                        best = Some((i, budget));
                    }
                }
            }
        }
    }
    let envelope = match (budget_error, best) {
        (Some(e), _) => Err(e),
        (None, Some((i, budget))) => Ok((channels[i].0.clone(), budget)),
        (None, None) => Err(channels
            .first()
            .and_then(|(_, outcome)| outcome.as_ref().err().cloned())
            .unwrap_or_else(|| "invalid configuration: session analysed no channel".to_string())),
    };
    Response::Verdicts {
        p,
        channels,
        envelope,
    }
}

/// One worker: an owned session, cache and latest-snapshot map, driven
/// by its mailbox until every sender is gone.
struct Worker {
    session: AnalysisSession<StreamFactory>,
    cache: VerdictCache,
    /// Latest emitted estimate per owned channel (announcements and
    /// scheduled snapshots). Rebuilt from live traffic after a resume,
    /// exactly like the pre-sharding server.
    latest: HashMap<String, WireSnapshot>,
    stream: StreamConfig,
    snapshot_every: usize,
    fingerprint: u64,
}

impl Worker {
    fn run(&mut self, mailbox: &Receiver<Job>) {
        while let Ok(job) = mailbox.recv() {
            match job {
                Job::Ingest {
                    channel,
                    values,
                    reply,
                } => {
                    let _ = reply.send(self.ingest(&channel, &values));
                }
                Job::Merge {
                    channel,
                    blob,
                    reply,
                } => {
                    let _ = reply.send(self.merge(&channel, &blob));
                }
                Job::Snapshot { channel, reply } => {
                    let _ = reply.send(self.snapshot(&channel));
                }
                Job::VerdictChannel { channel, p, reply } => {
                    let _ = reply.send(self.verdict_channel(&channel, p));
                }
                Job::VerdictAll { reply } => {
                    let _ = reply.send(self.verdict_partial());
                }
                Job::Stats { reply } => {
                    let _ = reply.send(self.stats());
                }
                Job::Checkpoint { reply } => {
                    let _ = reply.send(self.session.checkpoint().map_err(ServeError::from));
                }
            }
        }
    }

    /// The channel's accepted count, 0 for a channel this worker has
    /// never seen. (`AnalysisSession::channel` would *create* the
    /// channel, hence the membership check first.)
    fn channel_len(&mut self, channel: &str) -> usize {
        if self.session.channel_ids().any(|id| id.as_str() == channel) {
            self.session
                .channel(channel)
                .ok()
                .map_or(0, |handle| handle.len())
        } else {
            0
        }
    }

    fn ingest(&mut self, channel: &str, values: &[f64]) -> Result<IngestOutcome, ServeError> {
        let channels_before = self.session.channel_count();
        let len_before = self.channel_len(channel);
        let worker_before = self.session.len();
        let announcements = self.session.push_batch(channel, values)?;
        let worker_after = self.session.len();
        let len_after = self.channel_len(channel);

        // Convergence announcements are channel-pure; rebase their
        // session-relative totals to channel positions. (While the
        // engine is live every push is accepted — a rejected push
        // quarantines the channel and nothing announces after — so
        // push offsets are accepted offsets.)
        let mut snapshots: Vec<WireSnapshot> = announcements
            .iter()
            .map(|snap| WireSnapshot {
                channel: snap.channel.as_str().to_string(),
                total: (len_before + (snap.total - worker_before)) as u64,
                estimate: snap.estimate.clone(),
            })
            .collect();

        // Serve-layer snapshot cadence, per channel: crossing a
        // `snapshot_every` boundary of the channel's own accepted
        // count polls one estimate at the batch end. Estimates are
        // pure functions of the channel's pushes, so neither the poll
        // schedule nor the owning worker can change what is emitted.
        let crossed = self.snapshot_every > 0
            && len_after / self.snapshot_every > len_before / self.snapshot_every;
        let announced_at_end = announcements
            .last()
            .is_some_and(|snap| snap.total == worker_after);
        if crossed && !announced_at_end {
            let estimate = self
                .session
                .channel(channel)
                .ok()
                .and_then(|mut handle| handle.estimate());
            if let Some(estimate) = estimate {
                snapshots.push(WireSnapshot {
                    channel: channel.to_string(),
                    total: len_after as u64,
                    estimate,
                });
            }
        }

        for snap in &snapshots {
            self.latest.insert(snap.channel.clone(), snap.clone());
        }
        Ok(IngestOutcome {
            channel_len: len_after as u64,
            delta: (worker_after - worker_before) as u64,
            new_channel: self.session.channel_count() > channels_before,
            snapshots,
        })
    }

    fn merge(&mut self, channel: &str, blob: &[u8]) -> Result<MergeOutcome, ServeError> {
        let engine = StreamEngine::from_federated_blob(blob, &self.stream)?;
        let channel_len = engine.len() as u64;
        let state = engine.save_state()?;
        let worker_before = self.session.len();
        self.session.adopt_channel(channel, &state)?;
        Ok(MergeOutcome {
            channel_len,
            delta: (self.session.len() - worker_before) as u64,
        })
    }

    fn snapshot(&mut self, channel: &str) -> Vec<u8> {
        let progress = self.channel_len(channel) as u64;
        let key = query_key(self.fingerprint, KIND_SNAPSHOT, channel, progress, 0);
        if let Some(hit) = self.cache.get(key) {
            return hit;
        }
        let response = Response::Snapshot {
            latest: self.latest.get(channel).cloned(),
        }
        .encode();
        self.cache.insert(key, response.clone());
        response
    }

    fn verdict_channel(&mut self, channel: &str, p: f64) -> Vec<u8> {
        let progress = self.channel_len(channel) as u64;
        let key = query_key(
            self.fingerprint,
            KIND_VERDICT,
            channel,
            progress,
            p.to_bits(),
        );
        if let Some(hit) = self.cache.get(key) {
            return hit;
        }
        // Finalize a clone: the live session keeps streaming, and
        // repeat queries between ingests come straight from the cache.
        let merged = self.session.clone().merge();
        let Some(outcome) = merged.verdict(channel) else {
            // The dispatcher's registry check makes this unreachable
            // for routed queries; answer honestly anyway.
            return Response::Error {
                message: format!("unknown channel `{channel}`"),
            }
            .encode();
        };
        let channels = vec![(
            channel.to_string(),
            outcome.clone().map_err(|e| e.to_string()),
        )];
        let envelope = channels[0]
            .1
            .as_ref()
            .map_err(Clone::clone)
            .and_then(|verdict| verdict.budget_for(p).map_err(|e| e.to_string()))
            .map(|budget| (channel.to_string(), budget));
        let response = Response::Verdicts {
            p,
            channels,
            envelope,
        }
        .encode();
        self.cache.insert(key, response.clone());
        response
    }

    fn verdict_partial(&mut self) -> Vec<u8> {
        let key = query_key(
            self.fingerprint,
            KIND_PARTIAL,
            "*",
            self.session.len() as u64,
            0,
        );
        if let Some(hit) = self.cache.get(key) {
            return hit;
        }
        let merged = self.session.clone().merge();
        let partial = encode_partial(merged.channels());
        self.cache.insert(key, partial.clone());
        partial
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            channels: self.session.channel_count() as u64,
            total: self.session.len() as u64,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_insertions: self.cache.insertions(),
            cache_evictions: self.cache.evictions(),
            cache_expirations: self.cache.expirations(),
            cache_len: self.cache.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_a_pure_function_of_name_and_count() {
        for workers in 1..=8 {
            for name in ["nominal", "fault-recovery", "ch-17", ""] {
                let a = owner_of(name, workers);
                let b = owner_of(name, workers);
                assert_eq!(a, b);
                assert!(a < workers);
            }
        }
    }

    #[test]
    fn one_worker_owns_everything() {
        for name in ["a", "b", "c", "☃"] {
            assert_eq!(owner_of(name, 1), 0);
        }
    }

    #[test]
    fn fold_keeps_global_order_and_max_budget() {
        let verdict = |pwcet: f64| sample_verdict(pwcet);
        // Worker 0 holds b (seen 2nd globally), worker 1 holds a, c.
        let partials = vec![
            vec![("b".to_string(), Ok(verdict(200.0)))],
            vec![
                ("a".to_string(), Ok(verdict(100.0))),
                ("c".to_string(), Ok(verdict(150.0))),
            ],
        ];
        let order = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let response = fold_verdicts(1e-12, &order, partials);
        let Response::Verdicts {
            channels, envelope, ..
        } = response
        else {
            panic!("fold produced a non-verdict response");
        };
        let names: Vec<&str> = channels.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"], "global first-seen order");
        let (winner, budget) = envelope.unwrap();
        assert_eq!(winner, "b", "largest budget wins");
        let direct = sample_verdict(200.0).budget_for(1e-12).unwrap();
        assert_eq!(budget.to_bits(), direct.to_bits(), "budget is bit-exact");
    }

    #[test]
    fn fold_tie_keeps_the_earlier_channel() {
        let partials = vec![
            vec![("later".to_string(), Ok(sample_verdict(100.0)))],
            vec![("earlier".to_string(), Ok(sample_verdict(100.0)))],
        ];
        let order = vec!["earlier".to_string(), "later".to_string()];
        let Response::Verdicts { envelope, .. } = fold_verdicts(1e-12, &order, partials) else {
            panic!("fold produced a non-verdict response");
        };
        assert_eq!(envelope.unwrap().0, "earlier");
    }

    #[test]
    fn fold_with_no_ok_channel_reports_the_first_channels_error() {
        let partials = vec![
            vec![("second".to_string(), Err("second failed".to_string()))],
            vec![("first".to_string(), Err("first failed".to_string()))],
        ];
        let order = vec!["first".to_string(), "second".to_string()];
        let Response::Verdicts { envelope, .. } = fold_verdicts(1e-12, &order, partials) else {
            panic!("fold produced a non-verdict response");
        };
        assert_eq!(envelope.unwrap_err(), "first failed");
    }

    #[test]
    fn fold_with_no_channels_matches_the_session_error() {
        let Response::Verdicts { envelope, .. } = fold_verdicts(1e-12, &[], vec![]) else {
            panic!("fold produced a non-verdict response");
        };
        assert_eq!(
            envelope.unwrap_err(),
            "invalid configuration: session analysed no channel",
        );
    }

    #[test]
    fn partial_codec_round_trips() {
        use proxima_mbpta::session::{ChannelId, ChannelVerdict};
        let entries = vec![
            ChannelVerdict {
                channel: ChannelId::from("ok-channel"),
                outcome: Ok(sample_verdict(123.25)),
                dropped: 0,
            },
            ChannelVerdict {
                channel: ChannelId::from("bad-channel"),
                outcome: Err(proxima_mbpta::MbptaError::InvalidConfig {
                    what: "session analysed no channel",
                }),
                dropped: 3,
            },
        ];
        let bytes = encode_partial(&entries);
        let decoded = decode_partial(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "ok-channel");
        assert!(decoded[0].1.is_ok());
        assert_eq!(decoded[1].0, "bad-channel");
        assert_eq!(
            decoded[1].1.as_ref().unwrap_err(),
            "invalid configuration: session analysed no channel"
        );
    }

    /// A real verdict from a tiny deterministic campaign, computed once,
    /// with its pWCET tail re-pinned at `mu` so fold tests can dial in
    /// distinct (or deliberately tied) envelope budgets.
    fn sample_verdict(mu: f64) -> Verdict {
        use proxima_mbpta::Pwcet;
        use proxima_stats::dist::Gumbel;
        let mut verdict = base_verdict();
        verdict.pwcet = Pwcet::new(Gumbel::new(mu, 10.0).unwrap(), 100);
        verdict
    }

    fn base_verdict() -> Verdict {
        use std::sync::OnceLock;
        static BASE: OnceLock<Verdict> = OnceLock::new();
        BASE.get_or_init(|| {
            use proxima_stream::SessionStreamExt;
            let stream = StreamConfig::default();
            let mut session = proxima_mbpta::MbptaConfig {
                block: proxima_mbpta::BlockSpec::Fixed(stream.block_size),
                ..proxima_mbpta::MbptaConfig::default()
            }
            .session()
            .snapshot_every(0)
            .target_p(1e-12)
            .build_stream_with(stream)
            .unwrap();
            // SplitMix64 feed: deterministic, no clock, no OS entropy.
            let mut state = 41u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let values: Vec<f64> = (0..1500)
                .map(|_| {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    1000.0 + 200.0 * ((z >> 11) as f64 / (1u64 << 53) as f64)
                })
                .collect();
            session.push_batch("base", &values).unwrap();
            session.merge().into_channels().remove(0).outcome.unwrap()
        })
        .clone()
    }
}
