//! Fixture: reads the wall clock from library analysis code.
use std::time::Instant;

pub fn measure() -> u64 {
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}
