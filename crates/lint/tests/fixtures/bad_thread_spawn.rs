//! Fixture: ad-hoc thread creation outside the sanctioned pools.
pub fn race_everything(jobs: Vec<Box<dyn FnOnce() + Send>>) {
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(job);
        }
    });
}

pub fn fire_and_forget(task: impl FnOnce() + Send + 'static) {
    std::thread::spawn(task);
}
