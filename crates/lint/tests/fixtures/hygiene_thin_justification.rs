//! Fixture: a justification too thin to convince anyone.
pub fn head(xs: &[f64]) -> f64 {
    // proxima-lint: allow(no-lib-panic) -- ok
    *xs.first().unwrap()
}
