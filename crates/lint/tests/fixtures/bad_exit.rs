//! Fixture: terminates the process from library code.
pub fn bail(code: i32) {
    std::process::exit(code);
}
