//! Fixture: raw float equality against literals.
pub fn degenerate(denominator: f64) -> bool {
    denominator == 0.0
}

pub fn converged(delta: f64) -> bool {
    delta != 1e-9
}
