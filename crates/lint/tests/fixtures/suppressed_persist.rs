//! Fixture: the codec violations from `bad_persist.rs`, each silenced
//! by a justified allow. Linted under `crates/fake/src/persist.rs`.

// proxima-lint: allow(codec-discipline) -- fixture: stand-in for the
// real fixture-regen marker comment, which cannot be quoted here
// because the rule would read the quote itself as the marker.
pub const FORMAT_VERSION: u8 = 3;

pub struct Half {
    pub x: u64,
}

// proxima-lint: allow(codec-discipline) -- fixture: the decoder lives
// in a sibling module in this hypothetical layout.
impl Encode for Half {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.x);
    }
}
