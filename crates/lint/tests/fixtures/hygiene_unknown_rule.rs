//! Fixture: an allow naming a rule that does not exist.
pub fn head(xs: &[f64]) -> f64 {
    // proxima-lint: allow(no-such-rule) -- typo for no-lib-panic
    *xs.first().unwrap()
}
