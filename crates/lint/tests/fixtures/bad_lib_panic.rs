//! Fixture: panics in library code instead of returning errors.
pub fn head(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

pub fn must(flag: bool) {
    if !flag {
        panic!("flag must be set");
    }
}
