//! Fixture: one violation per code rule, every one silenced by a
//! justified allow. Linting this file must produce zero findings —
//! including zero `suppression-hygiene` findings, since each allow is
//! well-formed, justified, and actually fires.
use std::collections::HashMap;

pub fn probe_nanos() -> u64 {
    // proxima-lint: allow(no-wall-clock) -- fixture: diagnostics-only
    // timestamp that never reaches an analysis result.
    std::time::Instant::now().elapsed().as_nanos() as u64
}

pub fn total_count(words: &[&str]) -> u64 {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for word in words {
        *totals.entry((*word).to_string()).or_insert(0) += 1;
    }
    // proxima-lint: allow(no-unordered-iter) -- fixture: summing is
    // order-free, so hasher order cannot reach the output.
    totals.drain().map(|(_, n)| n).sum()
}

pub fn head(xs: &[f64]) -> f64 {
    // proxima-lint: allow(no-lib-panic) -- fixture: caller checked
    // non-emptiness on the line above in the real pattern.
    *xs.first().unwrap()
}

pub fn degenerate(denominator: f64) -> bool {
    // proxima-lint: allow(no-float-eq) -- fixture: exact sentinel guard
    // before dividing; epsilon would change the mathematics.
    denominator == 0.0
}

pub fn bail(code: i32) {
    // proxima-lint: allow(no-exit-in-lib) -- fixture: deliberate crash
    // injection behind an operator-only flag.
    std::process::exit(code);
}

pub fn fan_out(task: impl FnOnce() + Send + 'static) {
    // proxima-lint: allow(no-thread-spawn-outside-sharding) -- fixture: a
    // connection fan-out whose results never feed an analysis fold.
    std::thread::spawn(task);
}
