//! Fixture: an allow on a line where the rule never fires.
pub fn double(x: u64) -> u64 {
    // proxima-lint: allow(no-lib-panic) -- left behind after a refactor
    // removed the unwrap this once silenced.
    x * 2
}
