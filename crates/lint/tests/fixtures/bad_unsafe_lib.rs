//! Fixture: a crate root that forgot to gate `unsafe_code`.
//! Linted under the path `crates/fake/src/lib.rs` with the crate listed
//! in `unsafe_gated_crates`.

pub fn fine() -> u32 {
    7
}
