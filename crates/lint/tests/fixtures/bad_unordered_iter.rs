//! Fixture: iterates a HashMap, letting hasher order reach the output.
use std::collections::HashMap;

pub fn render(counts: &str) -> Vec<String> {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for word in counts.split_whitespace() {
        *totals.entry(word.to_string()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (word, n) in totals.iter() {
        out.push(format!("{word}: {n}"));
    }
    out
}
