//! Fixture: a write-only codec and an unmarked format-version bump.
//! Linted under the path `crates/fake/src/persist.rs`.

pub const FORMAT_VERSION: u8 = 3;

pub struct Half {
    pub x: u64,
}

impl Encode for Half {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.x);
    }
}
