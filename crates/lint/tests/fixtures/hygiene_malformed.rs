//! Fixture: suppression directives with parse and hygiene problems.
pub fn head(xs: &[f64]) -> f64 {
    // proxima-lint: allow(no-lib-panic)
    *xs.first().unwrap()
}

pub fn tail(xs: &[f64]) -> f64 {
    // proxima-lint: allow() -- names no rule at all
    *xs.last().unwrap()
}
