//! Clean-tree smoke test: the committed workspace must lint clean at
//! `--deny`. This is the same check the CI `lint` job runs via
//! `cargo run -p proxima-lint -- --deny`; having it as a test too means
//! plain `cargo test` catches a violation before CI does.

use proxima_lint::{find_root, lint_workspace};

#[test]
fn workspace_lints_clean_at_deny() {
    let root = find_root(None).expect("workspace root");
    let report = lint_workspace(&root, None).expect("lintable tree");
    assert!(
        report.findings.is_empty(),
        "the tree must stay --deny clean; fix or justify:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 40,
        "suspiciously few files scanned ({}); did the walker break?",
        report.files_scanned
    );
    assert!(
        report.suppressions_honored >= 10,
        "the tree carries justified allows; honoring {} is suspicious",
        report.suppressions_honored
    );
}
