//! Fixture battery: every rule must fire on its known-bad snippet,
//! stay silent when a justified allow covers the line, and report
//! hygiene problems on bad directives.

use proxima_lint::rules::{LintContext, RULES, SUPPRESSION_HYGIENE};
use proxima_lint::{lint_source, Finding};

fn rules_fired(findings: &[Finding]) -> Vec<&str> {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn wall_clock_fixture_fires() {
    let findings = lint_source(
        "crates/fake/src/clock.rs",
        include_str!("fixtures/bad_wall_clock.rs"),
        &LintContext::default(),
    );
    assert!(!findings.is_empty());
    assert_eq!(rules_fired(&findings), ["no-wall-clock"]);
}

#[test]
fn unordered_iter_fixture_fires() {
    let findings = lint_source(
        "crates/fake/src/tally.rs",
        include_str!("fixtures/bad_unordered_iter.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["no-unordered-iter"]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("totals"));
}

#[test]
fn lib_panic_fixture_fires() {
    let findings = lint_source(
        "crates/fake/src/panics.rs",
        include_str!("fixtures/bad_lib_panic.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["no-lib-panic"]);
    assert_eq!(findings.len(), 2, "unwrap and panic!: {findings:?}");
}

#[test]
fn float_eq_fixture_fires() {
    let findings = lint_source(
        "crates/fake/src/float.rs",
        include_str!("fixtures/bad_float_eq.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["no-float-eq"]);
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn codec_fixture_fires() {
    let findings = lint_source(
        "crates/fake/src/persist.rs",
        include_str!("fixtures/bad_persist.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["codec-discipline"]);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("no matching `impl Decode`")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("fixture-regen")),
        "{findings:?}"
    );
}

#[test]
fn codec_rules_only_apply_to_persist_files() {
    // The same text under a different file name is out of codec scope.
    let findings = lint_source(
        "crates/fake/src/other.rs",
        include_str!("fixtures/bad_persist.rs"),
        &LintContext::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn missing_coverage_list_is_reported_when_enforced() {
    let ctx = LintContext {
        enforce_coverage: true,
        ..LintContext::default()
    };
    let findings = lint_source(
        "crates/fake/src/persist.rs",
        include_str!("fixtures/bad_persist.rs"),
        &ctx,
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("CODEC_COVERAGE")),
        "{findings:?}"
    );
    // And with the type covered, that finding goes away.
    let ctx = LintContext {
        enforce_coverage: true,
        codec_coverage: Some(vec!["Half".to_string()]),
        ..LintContext::default()
    };
    let findings = lint_source(
        "crates/fake/src/persist.rs",
        include_str!("fixtures/bad_persist.rs"),
        &ctx,
    );
    assert!(
        !findings
            .iter()
            .any(|f| f.message.contains("CODEC_COVERAGE")),
        "{findings:?}"
    );
}

#[test]
fn exit_fixture_fires_in_lib_but_not_bin() {
    let findings = lint_source(
        "crates/fake/src/quit.rs",
        include_str!("fixtures/bad_exit.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["no-exit-in-lib"]);
    // The same code in a binary is the binary's prerogative.
    let findings = lint_source(
        "crates/fake/src/bin/quit.rs",
        include_str!("fixtures/bad_exit.rs"),
        &LintContext::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn ungated_crate_root_fires_deny_unsafe() {
    let ctx = LintContext {
        unsafe_gated_crates: vec!["crates/fake".to_string()],
        ..LintContext::default()
    };
    let findings = lint_source(
        "crates/fake/src/lib.rs",
        include_str!("fixtures/bad_unsafe_lib.rs"),
        &ctx,
    );
    assert_eq!(rules_fired(&findings), ["deny-unsafe"]);
    // Adding the attribute is the fix — no suppression story for a
    // structural rule.
    let gated = format!(
        "#![forbid(unsafe_code)]\n{}",
        include_str!("fixtures/bad_unsafe_lib.rs")
    );
    let findings = lint_source("crates/fake/src/lib.rs", &gated, &ctx);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn thread_spawn_fixture_fires_outside_the_sanctioned_pools() {
    let findings = lint_source(
        "crates/fake/src/threads.rs",
        include_str!("fixtures/bad_thread_spawn.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), ["no-thread-spawn-outside-sharding"]);
    assert_eq!(findings.len(), 2, "scope and spawn: {findings:?}");
    // The same code in a sanctioned pool file is that pool's whole job.
    for path in ["crates/core/src/campaign.rs", "crates/serve/src/shard.rs"] {
        let findings = lint_source(
            path,
            include_str!("fixtures/bad_thread_spawn.rs"),
            &LintContext::default(),
        );
        assert!(findings.is_empty(), "{path}: {findings:?}");
    }
}

#[test]
fn justified_allows_silence_every_rule() {
    let findings = lint_source(
        "crates/fake/src/allowed.rs",
        include_str!("fixtures/suppressed_ok.rs"),
        &LintContext::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn justified_allows_silence_codec_rules() {
    let findings = lint_source(
        "crates/fake/src/persist.rs",
        include_str!("fixtures/suppressed_persist.rs"),
        &LintContext::default(),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_directives_do_not_suppress_and_are_reported() {
    let findings = lint_source(
        "crates/fake/src/hygiene.rs",
        include_str!("fixtures/hygiene_malformed.rs"),
        &LintContext::default(),
    );
    let hygiene = findings
        .iter()
        .filter(|f| f.rule == SUPPRESSION_HYGIENE)
        .count();
    assert_eq!(hygiene, 2, "both malformed directives: {findings:?}");
    // The unwraps they failed to cover still fire.
    assert_eq!(
        findings.iter().filter(|f| f.rule == "no-lib-panic").count(),
        2,
        "{findings:?}"
    );
}

#[test]
fn unknown_rule_is_reported_and_does_not_suppress() {
    let findings = lint_source(
        "crates/fake/src/hygiene.rs",
        include_str!("fixtures/hygiene_unknown_rule.rs"),
        &LintContext::default(),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == SUPPRESSION_HYGIENE && f.message.contains("no-such-rule")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == "no-lib-panic"),
        "{findings:?}"
    );
}

#[test]
fn thin_justification_is_reported() {
    let findings = lint_source(
        "crates/fake/src/hygiene.rs",
        include_str!("fixtures/hygiene_thin_justification.rs"),
        &LintContext::default(),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == SUPPRESSION_HYGIENE && f.message.contains("too thin")),
        "{findings:?}"
    );
}

#[test]
fn stale_allow_is_reported() {
    let findings = lint_source(
        "crates/fake/src/hygiene.rs",
        include_str!("fixtures/hygiene_stale.rs"),
        &LintContext::default(),
    );
    assert_eq!(rules_fired(&findings), [SUPPRESSION_HYGIENE]);
    assert!(findings[0].message.contains("stale"), "{findings:?}");
}

#[test]
fn test_code_is_exempt_from_code_rules() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn checks() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let eq = 0.1 + 0.2 == 0.3;
        assert!(!eq);
    }
}
";
    let findings = lint_source("crates/fake/src/lib.rs", src, &LintContext::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn registry_matches_rule_instances() {
    let mut names: Vec<&str> = proxima_lint::rules::all_rules()
        .iter()
        .map(|r| r.name())
        .collect();
    names.sort_unstable();
    let mut expected = RULES.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
}
