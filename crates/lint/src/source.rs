//! Scanned source files and the findings rules emit about them.

use crate::lexer::{self, Line};
use crate::suppress::{self, Suppression};

/// One source file, scanned and ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms so output ordering and CI diffs are deterministic).
    pub path: String,
    /// `true` for binary targets (`src/bin/**`, `main.rs`), where
    /// process-exit rules do not apply.
    pub is_bin: bool,
    /// Scanned lines (see [`crate::lexer`]).
    pub lines: Vec<Line>,
    /// Suppression directives found in the file.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Scan `text` as the contents of `path`.
    pub fn parse(path: impl Into<String>, text: &str) -> SourceFile {
        let path = path.into();
        let lines = lexer::scan(text);
        let suppressions = suppress::collect(&lines);
        let is_bin = path.contains("/bin/") || path.ends_with("/main.rs");
        SourceFile {
            path,
            is_bin,
            lines,
            suppressions,
        }
    }

    /// The file name component of the path.
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// One rule violation (or hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (a name from [`crate::rules::RULES`], or
    /// `suppression-hygiene`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of what fired and why it matters.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}
