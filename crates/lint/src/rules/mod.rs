//! The rule registry and the engine that applies rules, honors
//! suppressions, and enforces suppression hygiene.

mod codec;
mod concurrency;
mod determinism;
mod panics;

use crate::source::{Finding, SourceFile};

/// Cross-file inputs the rules need.
#[derive(Debug, Default)]
pub struct LintContext {
    /// Golden-fixture coverage list (normalized type names) extracted
    /// from `tests/checkpoint.rs`; `None` when the list is missing,
    /// which is itself a `codec-discipline` finding on workspace runs.
    pub codec_coverage: Option<Vec<String>>,
    /// `true` when the coverage list should be enforced (workspace
    /// runs); single-file runs in tests leave it off unless they
    /// provide a list.
    pub enforce_coverage: bool,
    /// Crate directories whose `src/lib.rs` must carry
    /// `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`.
    pub unsafe_gated_crates: Vec<String>,
}

/// One lint rule.
pub trait Rule {
    /// Stable kebab-case rule name (used in `allow(…)` directives).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn explain(&self) -> &'static str;
    /// Check every file, appending findings.
    fn check(&self, files: &[SourceFile], ctx: &LintContext, out: &mut Vec<Finding>);
}

/// Hygiene findings use this pseudo-rule name; it cannot be allowed.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// Every registered rule name, in report order.
pub const RULES: [&str; 8] = [
    "no-wall-clock",
    "no-unordered-iter",
    "no-lib-panic",
    "no-float-eq",
    "codec-discipline",
    "no-exit-in-lib",
    "deny-unsafe",
    "no-thread-spawn-outside-sharding",
];

/// Instantiate the full rule set.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::NoWallClock),
        Box::new(determinism::NoUnorderedIter),
        Box::new(panics::NoLibPanic),
        Box::new(determinism::NoFloatEq),
        Box::new(codec::CodecDiscipline),
        Box::new(panics::NoExitInLib),
        Box::new(panics::DenyUnsafe),
        Box::new(concurrency::NoThreadSpawnOutsideSharding),
    ]
}

/// Run every rule over `files`, apply suppressions, and append
/// suppression-hygiene findings. Output is sorted by (path, line,
/// rule) so reports are deterministic.
pub fn run(files: &[SourceFile], ctx: &LintContext) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in all_rules() {
        rule.check(files, ctx, &mut raw);
    }

    let mut findings = Vec::new();
    // Tracks which suppressions actually silenced something.
    let mut used = vec![Vec::new(); files.len()];
    for (fi, file) in files.iter().enumerate() {
        used[fi] = vec![false; file.suppressions.len()];
    }

    'finding: for finding in raw {
        if let Some(fi) = files.iter().position(|f| f.path == finding.path) {
            let file = &files[fi];
            for (si, sup) in file.suppressions.iter().enumerate() {
                if sup.malformed.is_none()
                    && sup.target_line == finding.line
                    && sup.rules.iter().any(|r| r == finding.rule)
                {
                    used[fi][si] = true;
                    continue 'finding;
                }
            }
        }
        findings.push(finding);
    }

    // Hygiene: malformed directives, empty justifications, unknown
    // rules, and stale (unused) suppressions.
    for (fi, file) in files.iter().enumerate() {
        for (si, sup) in file.suppressions.iter().enumerate() {
            let at = |line, message: String| Finding {
                rule: SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line,
                message,
            };
            if let Some(why) = &sup.malformed {
                findings.push(at(sup.comment_line, format!("malformed directive: {why}")));
                continue;
            }
            if sup.justification.len() < 10 {
                findings.push(at(
                    sup.comment_line,
                    "justification missing or too thin; write a sentence that would \
                     convince a reviewer"
                        .to_string(),
                ));
            }
            for rule in &sup.rules {
                if !RULES.contains(&rule.as_str()) {
                    findings.push(at(
                        sup.comment_line,
                        format!("unknown rule `{rule}` (see --list-rules)"),
                    ));
                }
            }
            if !used[fi][si] && sup.rules.iter().all(|r| RULES.contains(&r.as_str())) {
                findings.push(at(
                    sup.comment_line,
                    format!(
                        "stale suppression: {} did not fire on line {}; delete the allow",
                        sup.rules.join(", "),
                        sup.target_line
                    ),
                ));
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings.dedup();
    findings
}
