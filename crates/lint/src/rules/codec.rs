//! `codec-discipline`: sealed-blob codec hygiene in `persist.rs`
//! files.
//!
//! Three checks:
//!
//! 1. every `impl Encode for T` has a matching `impl Decode for T` in
//!    the same file (and vice versa) — a one-directional codec is
//!    either dead weight or an unreadable checkpoint waiting to
//!    happen;
//! 2. every encoded type appears in the golden-fixture coverage list
//!    (`CODEC_COVERAGE` in `tests/checkpoint.rs`), so the committed
//!    fixture bytes transitively pin its wire layout;
//! 3. every `FORMAT_VERSION` constant definition carries the
//!    fixture-regen marker (`PROXIMA_REGEN_FIXTURES`) in an adjacent
//!    comment, so nobody bumps the wire version without seeing how to
//!    regenerate the fixtures. (`mbpta-lint --diff-base <ref>` adds
//!    the diff-aware form: a diff touching a `FORMAT_VERSION` line
//!    must also touch `tests/fixtures/`.)

use super::{LintContext, Rule};
use crate::source::{Finding, SourceFile};

pub struct CodecDiscipline;

impl Rule for CodecDiscipline {
    fn name(&self) -> &'static str {
        "codec-discipline"
    }

    fn explain(&self) -> &'static str {
        "persist.rs: Encode/Decode impls must pair up, encoded types \
         must be golden-fixture covered, FORMAT_VERSION edits must \
         point at fixture regen"
    }

    fn check(&self, files: &[SourceFile], ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            if file.file_name() != "persist.rs" {
                continue;
            }
            let encodes = impl_targets(file, "Encode");
            let decodes = impl_targets(file, "Decode");

            for (target, line) in &encodes {
                if !decodes.iter().any(|(t, _)| t == target) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: *line,
                        message: format!(
                            "`impl Encode for {target}` has no matching `impl Decode` \
                             in this file; a write-only codec cannot round-trip"
                        ),
                    });
                }
            }
            for (target, line) in &decodes {
                if !encodes.iter().any(|(t, _)| t == target) {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: *line,
                        message: format!(
                            "`impl Decode for {target}` has no matching `impl Encode` \
                             in this file; nothing can produce what it reads"
                        ),
                    });
                }
            }

            if ctx.enforce_coverage {
                match &ctx.codec_coverage {
                    Some(coverage) => {
                        for (target, line) in &encodes {
                            if !coverage.iter().any(|c| c == target) {
                                out.push(Finding {
                                    rule: self.name(),
                                    path: file.path.clone(),
                                    line: *line,
                                    message: format!(
                                        "encoded type `{target}` is not in the \
                                         CODEC_COVERAGE list (tests/checkpoint.rs); add \
                                         it and make a golden fixture exercise it"
                                    ),
                                });
                            }
                        }
                    }
                    None => out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: 1,
                        message: "golden-fixture coverage list (CODEC_COVERAGE in \
                                  tests/checkpoint.rs) not found"
                            .to_string(),
                    }),
                }
            }

            // FORMAT_VERSION definitions need the regen marker nearby.
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let code = &line.code;
                if !(code.contains("FORMAT_VERSION") && code.contains("const")) {
                    continue;
                }
                let lo = idx.saturating_sub(4);
                let marked = file.lines[lo..=idx]
                    .iter()
                    .any(|l| l.comment.contains("PROXIMA_REGEN_FIXTURES"));
                if !marked {
                    out.push(Finding {
                        rule: self.name(),
                        path: file.path.clone(),
                        line: idx + 1,
                        message: "FORMAT_VERSION definition lacks the fixture-regen \
                                  marker; add a comment naming \
                                  PROXIMA_REGEN_FIXTURES=1 so version bumps and fixture \
                                  regeneration travel together"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Collect `(normalized target, 1-based line)` for every
/// `impl … <trait_name> for <target> {` in the file.
fn impl_targets(file: &SourceFile, trait_name: &str) -> Vec<(String, usize)> {
    let needle = format!("{trait_name} for ");
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let Some(impl_pos) = code.find("impl") else {
            continue;
        };
        let Some(pos) = code.find(&needle) else {
            continue;
        };
        if pos < impl_pos {
            continue;
        }
        let rest = &code[pos + needle.len()..];
        let target: String = rest
            .chars()
            .take_while(|c| *c != '{')
            .filter(|c| !c.is_whitespace())
            .collect();
        if !target.is_empty() {
            out.push((target, idx + 1));
        }
    }
    out
}
