//! Rules protecting bit-identity: no wall clock, no unordered-map
//! iteration, no raw float equality.

use super::{LintContext, Rule};
use crate::source::{Finding, SourceFile};
use crate::tokens::{tokenize, Tok};

/// `no-wall-clock`: `Instant` / `SystemTime` must never reach analysis
/// code. Results must be a pure function of the measurement feed, or
/// `--jobs` / `--shards` / crash-resume bit-identity is fiction.
pub struct NoWallClock;

impl Rule for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn explain(&self) -> &'static str {
        "library code must not read Instant/SystemTime; analysis state \
         fed by the wall clock breaks --jobs/--shards/resume bit-identity"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test || line.code.trim().is_empty() {
                    continue;
                }
                // Cheap pre-filter before tokenizing.
                if !line.code.contains("Instant") && !line.code.contains("SystemTime") {
                    continue;
                }
                for tok in tokenize(&line.code) {
                    if let Tok::Ident(name) = &tok {
                        if name == "Instant" || name == "SystemTime" {
                            out.push(Finding {
                                rule: self.name(),
                                path: file.path.clone(),
                                line: idx + 1,
                                message: format!(
                                    "`{name}` in library code; analysis paths must be \
                                     clock-free (derive timing from the feed itself)"
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Methods whose visit order on `HashMap`/`HashSet` is unspecified.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// `no-unordered-iter`: iterating a `HashMap`/`HashSet` where order
/// can reach results. Lookup-only use (`get`, `insert`,
/// `contains_key`, `remove`, `entry`, `len`) is allowed.
pub struct NoUnorderedIter;

impl Rule for NoUnorderedIter {
    fn name(&self) -> &'static str {
        "no-unordered-iter"
    }

    fn explain(&self) -> &'static str {
        "iteration over HashMap/HashSet is order-unspecified; use \
         BTreeMap or sort before iterating (lookups are fine)"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            let unordered = collect_unordered_names(file);
            if unordered.is_empty() {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test || line.code.trim().is_empty() {
                    continue;
                }
                let toks = tokenize(&line.code);
                for k in 0..toks.len() {
                    if let Some(name) = iterated_receiver(&toks, k) {
                        if unordered.contains(&name) {
                            out.push(Finding {
                                rule: self.name(),
                                path: file.path.clone(),
                                line: idx + 1,
                                message: format!(
                                    "iteration over unordered `{name}` \
                                     (declared HashMap/HashSet in this file); visit order \
                                     is unspecified and can reach results"
                                ),
                            });
                        }
                    }
                }
                // `for x in &name` / `for x in name` loops.
                if let Some(name) = for_loop_receiver(&toks) {
                    if unordered.contains(&name) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`for … in {name}` iterates an unordered map/set; \
                                 visit order is unspecified and can reach results"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Names declared as `HashMap`/`HashSet` anywhere in the file
/// (fields, lets, params, struct-literal inits). File-local and
/// name-based — a deliberate over-approximation; false positives take
/// a justified allow.
fn collect_unordered_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        if !line.code.contains("HashMap") && !line.code.contains("HashSet") {
            continue;
        }
        let toks = tokenize(&line.code);
        for k in 0..toks.len() {
            let Tok::Ident(ident) = &toks[k] else {
                continue;
            };
            if ident != "HashMap" && ident != "HashSet" {
                continue;
            }
            // `use std::collections::HashMap;` declares nothing.
            if matches!(&toks.first(), Some(Tok::Ident(first)) if first == "use") {
                continue;
            }
            // `name: HashMap<…>` or `name = HashMap::new()` (with the
            // preceding `::` path segments skipped).
            if k >= 2 {
                let sep = matches!(&toks[k - 1], Tok::Op(op) if op == ":" || op == "=");
                if sep {
                    if let Tok::Ident(name) = &toks[k - 2] {
                        if !names.contains(name) {
                            names.push(name.clone());
                        }
                    }
                }
            }
        }
    }
    names
}

/// If `toks[k]` is an order-unspecified iteration method being called
/// (`recv.method(…)`), return the receiver's final path segment.
fn iterated_receiver(toks: &[Tok], k: usize) -> Option<String> {
    let Tok::Ident(method) = &toks[k] else {
        return None;
    };
    if !ITER_METHODS.contains(&method.as_str()) {
        return None;
    }
    if k < 2 || !matches!(&toks[k - 1], Tok::Op(op) if op == ".") {
        return None;
    }
    if !matches!(toks.get(k + 1), Some(Tok::Op(op)) if op == "(") {
        return None;
    }
    match &toks[k - 2] {
        Tok::Ident(recv) => Some(recv.clone()),
        _ => None,
    }
}

/// `for pat in [&[mut]] name`-style loop over a bare binding (not a
/// method-call chain — those are caught by [`iterated_receiver`]).
fn for_loop_receiver(toks: &[Tok]) -> Option<String> {
    let has_for = toks
        .iter()
        .any(|t| matches!(t, Tok::Ident(i) if i == "for"));
    if !has_for {
        return None;
    }
    let in_pos = toks
        .iter()
        .position(|t| matches!(t, Tok::Ident(i) if i == "in"))?;
    let mut j = in_pos + 1;
    while matches!(toks.get(j), Some(Tok::Op(op)) if op == "&")
        || matches!(toks.get(j), Some(Tok::Ident(i)) if i == "mut")
    {
        j += 1;
    }
    let Some(Tok::Ident(name)) = toks.get(j) else {
        return None;
    };
    // A following `.` means a method chain decides what is iterated.
    if matches!(toks.get(j + 1), Some(Tok::Op(op)) if op == ".") {
        return None;
    }
    Some(name.clone())
}

/// `no-float-eq`: raw `==` / `!=` against float expressions. Exact
/// comparisons belong in the approved helpers
/// (`proxima_stats::float`), which make intent explicit and searchable.
pub struct NoFloatEq;

impl Rule for NoFloatEq {
    fn name(&self) -> &'static str {
        "no-float-eq"
    }

    fn explain(&self) -> &'static str {
        "raw ==/!= on float expressions; use proxima_stats::float \
         helpers (exactly_zero/exact_eq) or compare to_bits()"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test || line.code.trim().is_empty() {
                    continue;
                }
                if !line.code.contains("==") && !line.code.contains("!=") {
                    continue;
                }
                let toks = tokenize(&line.code);
                for k in 0..toks.len() {
                    if !matches!(&toks[k], Tok::Op(op) if op == "==" || op == "!=") {
                        continue;
                    }
                    let left_float = k > 0 && is_floatish(&toks[k - 1]);
                    let mut j = k + 1;
                    if matches!(toks.get(j), Some(Tok::Op(op)) if op == "-") {
                        j += 1;
                    }
                    let right_float = toks.get(j).is_some_and(is_floatish);
                    if left_float || right_float {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: idx + 1,
                            message: "raw float equality; route exact comparisons through \
                                      proxima_stats::float so the intent is explicit"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

fn is_floatish(tok: &Tok) -> bool {
    match tok {
        Tok::Float => true,
        Tok::Ident(name) => matches!(name.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY"),
        _ => false,
    }
}
