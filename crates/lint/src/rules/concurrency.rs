//! Rule keeping thread creation confined to the two sanctioned worker
//! pools, so concurrency (and with it, scheduling nondeterminism) can
//! only enter the system through code designed for bit-identical
//! fan-out/fold.

use super::{LintContext, Rule};
use crate::source::{Finding, SourceFile};

/// The only library files allowed to create threads: the campaign
/// measurement pool and the serve shard worker pool. Both fold their
/// results in a deterministic order, so thread scheduling cannot leak
/// into any answer. Everything else must route work through them (or
/// carry a justified `allow` — the serve accept loop's connection
/// fan-out does).
const SANCTIONED: [&str; 2] = ["crates/core/src/campaign.rs", "crates/serve/src/shard.rs"];

/// `no-thread-spawn-outside-sharding`: `thread::spawn` / `thread::scope`
/// outside the campaign engine and the serve worker pool. Ad-hoc
/// threads are where "bit-identical at any `--jobs` / `--workers`"
/// guarantees go to die: results folded in completion order, shared
/// state mutated off the mailbox discipline, panics nobody joins.
pub struct NoThreadSpawnOutsideSharding;

impl Rule for NoThreadSpawnOutsideSharding {
    fn name(&self) -> &'static str {
        "no-thread-spawn-outside-sharding"
    }

    fn explain(&self) -> &'static str {
        "thread::spawn/scope outside the campaign pool and the serve \
         shard pool; route parallelism through a deterministic worker \
         pool instead"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            if SANCTIONED.contains(&file.path.as_str()) {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test || line.code.trim().is_empty() {
                    continue;
                }
                for needle in ["thread::spawn", "thread::scope"] {
                    if line.code.contains(needle) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{needle}` outside the sanctioned worker pools; \
                                 parallel work must go through the campaign or serve \
                                 shard pool so its fold order stays deterministic"
                            ),
                        });
                    }
                }
            }
        }
    }
}
