//! Rules keeping library code panic-free and process-exit-free, and
//! keeping every library crate `unsafe`-gated.

use super::{LintContext, Rule};
use crate::source::{Finding, SourceFile};

/// Panic-family tokens forbidden in non-test library code. Each entry
/// is (needle, what to say about it).
const PANIC_TOKENS: [(&str, &str); 8] = [
    (".unwrap()", "`unwrap` panics on the failure path"),
    (".unwrap_err()", "`unwrap_err` panics on the success path"),
    (".expect(", "`expect` panics on the failure path"),
    (".expect_err(", "`expect_err` panics on the success path"),
    ("panic!", "explicit panic"),
    ("unreachable!", "`unreachable!` is a panic in disguise"),
    ("todo!", "`todo!` must not ship"),
    ("unimplemented!", "`unimplemented!` must not ship"),
];

/// `no-lib-panic`: `unwrap`/`expect`/`panic!`/`unreachable!` (and
/// friends) outside tests. Library failures must flow through the
/// typed error enums so one bad channel/connection cannot take down a
/// campaign or the serve loop.
pub struct NoLibPanic;

impl Rule for NoLibPanic {
    fn name(&self) -> &'static str {
        "no-lib-panic"
    }

    fn explain(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable!/todo!/unimplemented! outside \
         tests; return typed errors instead"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test || line.code.trim().is_empty() {
                    continue;
                }
                for (needle, why) in PANIC_TOKENS {
                    if line.code.contains(needle) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "{why}; return a typed error (or justify with an allow \
                                 explaining why this cannot fire)"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `no-exit-in-lib`: `std::process::exit` / `abort` confined to
/// `src/bin`. A library that exits the process steals the caller's
/// chance to flush, checkpoint, or report.
pub struct NoExitInLib;

impl Rule for NoExitInLib {
    fn name(&self) -> &'static str {
        "no-exit-in-lib"
    }

    fn explain(&self) -> &'static str {
        "std::process::exit/abort outside src/bin; libraries return, \
         binaries decide the exit code"
    }

    fn check(&self, files: &[SourceFile], _ctx: &LintContext, out: &mut Vec<Finding>) {
        for file in files {
            if file.is_bin {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for needle in ["process::exit", "process::abort"] {
                    if line.code.contains(needle) {
                        out.push(Finding {
                            rule: self.name(),
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{needle}` in library code; only binaries may end the \
                                 process"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `deny-unsafe`: every scoped library crate's `lib.rs` must carry
/// `#![forbid(unsafe_code)]` (or at least `#![deny(unsafe_code)]`), so
/// the no-unsafe guarantee survives refactors mechanically.
pub struct DenyUnsafe;

impl Rule for DenyUnsafe {
    fn name(&self) -> &'static str {
        "deny-unsafe"
    }

    fn explain(&self) -> &'static str {
        "every library crate root must carry #![forbid(unsafe_code)] \
         or #![deny(unsafe_code)]"
    }

    fn check(&self, files: &[SourceFile], ctx: &LintContext, out: &mut Vec<Finding>) {
        for crate_dir in &ctx.unsafe_gated_crates {
            let lib_path = format!("{crate_dir}/src/lib.rs");
            let Some(file) = files.iter().find(|f| f.path == lib_path) else {
                out.push(Finding {
                    rule: self.name(),
                    path: lib_path,
                    line: 1,
                    message: "crate root not found while checking for \
                              #![forbid(unsafe_code)]"
                        .to_string(),
                });
                continue;
            };
            let gated = file.lines.iter().any(|l| {
                let squished: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
                squished.contains("#![forbid(unsafe_code)]")
                    || squished.contains("#![deny(unsafe_code)]")
            });
            if !gated {
                out.push(Finding {
                    rule: self.name(),
                    path: file.path.clone(),
                    line: 1,
                    message: "missing #![forbid(unsafe_code)] (or #![deny(unsafe_code)]) \
                              at the crate root"
                        .to_string(),
                });
            }
        }
    }
}
