//! `// proxima-lint: allow(<rule>) -- <justification>` directives.
//!
//! A suppression silences one or more named rules on exactly one code
//! line: the line the comment trails, or — for a comment that stands
//! alone — the next line that carries code. Every suppression **must**
//! carry a written justification after ` -- `; the engine reports
//! missing justifications, unknown rule names, and suppressions that
//! matched no finding (stale allows rot into lies) as
//! `suppression-hygiene` findings, which are themselves never
//! suppressible.

use crate::lexer::Line;

/// The directive marker inside a comment.
pub const MARKER: &str = "proxima-lint:";

/// One parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules this directive silences.
    pub rules: Vec<String>,
    /// 1-based line the directive applies to (the trailing-comment
    /// line, or the next code-bearing line for standalone comments).
    pub target_line: usize,
    /// 1-based line the directive itself sits on.
    pub comment_line: usize,
    /// Justification text after ` -- ` (trimmed; empty = missing).
    pub justification: String,
    /// Parse trouble: directive present but malformed.
    pub malformed: Option<String>,
}

/// Extract every suppression directive from a scanned file.
pub fn collect(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        // Directives quoted inside doc-comment examples are prose, not
        // suppressions (docs/LINTS.md shows the syntax in fences).
        if line.in_doc_fence {
            continue;
        }
        let comment_line = idx + 1;
        let body = line.comment[pos + MARKER.len()..].trim();
        let target_line = if line.code.trim().is_empty() {
            // Standalone comment: applies to the next code-bearing line.
            lines[idx + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| idx + 1 + off + 1)
                .unwrap_or(comment_line)
        } else {
            comment_line
        };
        out.push(parse_body(body, comment_line, target_line));
    }
    out
}

fn parse_body(body: &str, comment_line: usize, target_line: usize) -> Suppression {
    let mut s = Suppression {
        rules: Vec::new(),
        target_line,
        comment_line,
        justification: String::new(),
        malformed: None,
    };
    let Some(rest) = body.strip_prefix("allow(") else {
        s.malformed = Some("expected `allow(<rule>) -- <justification>`".to_string());
        return s;
    };
    let Some(close) = rest.find(')') else {
        s.malformed = Some("unclosed `allow(`".to_string());
        return s;
    };
    s.rules = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if s.rules.is_empty() {
        s.malformed = Some("`allow()` names no rule".to_string());
        return s;
    }
    let tail = rest[close + 1..].trim();
    match tail.strip_prefix("--") {
        Some(j) => s.justification = j.trim().to_string(),
        None => {
            s.malformed =
                Some("missing ` -- <justification>` (every allow must say why)".to_string())
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let lines =
            scan("x.unwrap(); // proxima-lint: allow(no-lib-panic) -- checked two lines up\n");
        let sup = collect(&lines);
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 1);
        assert_eq!(sup[0].rules, vec!["no-lib-panic"]);
        assert_eq!(sup[0].justification, "checked two lines up");
        assert!(sup[0].malformed.is_none());
    }

    #[test]
    fn standalone_suppression_targets_next_code_line() {
        let src =
            "// proxima-lint: allow(no-float-eq) -- sentinel comparison\n\nlet eq = a == 0.0;\n";
        let sup = collect(&scan(src));
        assert_eq!(sup[0].target_line, 3);
    }

    #[test]
    fn missing_justification_is_malformed() {
        let sup = collect(&scan("x.unwrap(); // proxima-lint: allow(no-lib-panic)\n"));
        assert!(sup[0].malformed.is_some());
        let sup = collect(&scan(
            "x.unwrap(); // proxima-lint: allow(no-lib-panic) --   \n",
        ));
        assert!(sup[0].malformed.is_none());
        assert!(sup[0].justification.is_empty());
    }

    #[test]
    fn multi_rule_allow() {
        let sup = collect(&scan(
            "y(); // proxima-lint: allow(no-lib-panic, no-float-eq) -- both intended\n",
        ));
        assert_eq!(sup[0].rules.len(), 2);
    }

    #[test]
    fn doc_fence_examples_are_ignored() {
        let src = "/// ```text\n/// x(); // proxima-lint: allow(no-lib-panic) -- example\n/// ```\nfn f() {}\n";
        assert!(collect(&scan(src)).is_empty());
    }
}
