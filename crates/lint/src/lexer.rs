//! A minimal, comment/string/char-literal-aware scanner for Rust
//! source.
//!
//! This is **not** a Rust parser. It produces, per source line:
//!
//! * `code` — the line with every comment and every string/char-literal
//!   *body* blanked out to spaces (delimiters kept, columns preserved),
//!   so rules can match tokens without tripping over `"panic!"` inside
//!   a string or an example in a comment;
//! * `comment` — the concatenated comment text of the line, which is
//!   where suppression directives live;
//! * `in_test` — whether the line sits inside `#[cfg(test)]` code, an
//!   inline `mod tests { … }` block, or a `#[test]` function;
//! * `in_doc_fence` — whether the line's comment is inside a fenced
//!   code block of a doc comment (doctest examples are not real code
//!   *or* real suppressions).
//!
//! The scanner understands line comments (`//`, `///`, `//!`), nested
//! block comments (`/* /* */ */`, `/** */`), plain/byte strings with
//! escapes, raw strings `r#"…"#` with any number of `#`s, and the
//! char-literal vs. lifetime ambiguity (`'a'` vs. `'a`).
//!
//! Known limitation (documented in `docs/LINTS.md`): `#[cfg(test)]`
//! attributes are recognized only when the attribute fits on one line,
//! which `rustfmt` guarantees for every attribute this workspace uses.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source text with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
    /// Inside `#[cfg(test)]` / `mod tests { … }` / `#[test]` code.
    pub in_test: bool,
    /// The comment on this line sits inside a doc-comment code fence.
    pub in_doc_fence: bool,
}

#[derive(Copy, Clone, PartialEq)]
enum State {
    Normal,
    /// Nested block comments; `depth >= 1`. `doc` marks `/** … */`.
    Block {
        depth: u32,
    },
    Str,
    RawStr {
        hashes: u32,
    },
}

/// Scan `source` into per-line code/comment views.
pub fn scan(source: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    // Fence state persists across the consecutive lines of one doc
    // comment; any non-comment line closes a dangling fence.
    let mut doc_fence_open = false;

    for raw in source.split('\n') {
        let (line, next_state) = scan_line(raw, state);
        state = next_state;
        lines.push(line);
    }

    // Second pass: doc-comment fence tracking over the comment stream.
    let mut prev_was_doc = false;
    for line in &mut lines {
        let c = line.comment.trim_start();
        let is_doc = c.starts_with("///") || c.starts_with("//!");
        if is_doc {
            // Entering fences toggles on ``` occurrences.
            line.in_doc_fence = doc_fence_open;
            let mut rest = c;
            while let Some(i) = rest.find("```") {
                doc_fence_open = !doc_fence_open;
                rest = &rest[i + 3..];
            }
            // A line that *opens* a fence is itself outside the example.
            if doc_fence_open && !line.in_doc_fence {
                line.in_doc_fence = false;
            }
        } else {
            if prev_was_doc {
                doc_fence_open = false;
            }
            line.in_doc_fence = false;
        }
        prev_was_doc = is_doc;
    }

    mark_test_regions(&mut lines);
    lines
}

/// Scan one physical line, starting in `state`.
fn scan_line(raw: &str, mut state: State) -> (Line, State) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;

    while i < chars.len() {
        match state {
            State::Block { depth } => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    code.push_str("  ");
                    i += 2;
                    state = if depth > 1 {
                        State::Block { depth: depth - 1 }
                    } else {
                        State::Normal
                    };
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                    state = State::Block { depth: depth + 1 };
                } else {
                    comment.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    code.push_str("  ");
                    i += 2;
                } else if chars[i] == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is comment.
                    comment.push_str(&chars[i..].iter().collect::<String>());
                    break;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                    state = State::Block { depth: 1 };
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Str;
                    continue;
                }
                // Raw / byte string starts: r", r#", br", b".
                if let Some((skip, hashes, is_raw)) = string_prefix(&chars, i) {
                    for k in 0..skip {
                        code.push(chars[i + k]);
                    }
                    i += skip;
                    state = if is_raw {
                        State::RawStr { hashes }
                    } else {
                        State::Str
                    };
                    continue;
                }
                if c == '\'' {
                    if let Some(end) = char_literal_end(&chars, i) {
                        code.push('\'');
                        for _ in i + 1..end {
                            code.push(' ');
                        }
                        code.push('\'');
                        i = end + 1;
                    } else {
                        // A lifetime: keep it verbatim.
                        code.push('\'');
                        i += 1;
                    }
                    continue;
                }
                code.push(c);
                i += 1;
            }
        }
    }

    (
        Line {
            code,
            comment,
            in_test: false,
            in_doc_fence: false,
        },
        state,
    )
}

/// Detect `r"`, `r#"`, `br#"`, `b"` starting at `i`; returns
/// (chars to skip, hash count, is_raw).
fn string_prefix(chars: &[char], i: usize) -> Option<(usize, u32, bool)> {
    // Must not be the tail of an identifier (e.g. `attr"` never occurs,
    // but `har"` inside an ident would; guard on the previous char).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    if j == i {
        // Just a bare `"` — handled by the caller.
        return None;
    }
    Some((j - i + 1, hashes, raw))
}

fn closes_raw(chars: &[char], mut i: usize, hashes: u32) -> bool {
    for _ in 0..hashes {
        if chars.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

/// If a char literal starts at `i` (which holds `'`), return the index
/// of its closing quote; `None` means `'` opens a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the next unescaped quote.
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\'' => return Some(j),
                    '\\' => j += 2,
                    _ => j += 1,
                }
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

/// Mark lines inside test-only regions: `#[cfg(test)]` items,
/// `#[test]` functions and inline `mod tests { … }` blocks.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    // Depth *outside* the brace that opened the test region.
    let mut test_until: Option<i64> = None;

    for line in lines.iter_mut() {
        let squished: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if test_until.is_none() {
            if has_cfg_test_attr(&squished) || squished.contains("#[test]") {
                pending_test_attr = true;
                line.in_test = true;
            }
            if is_inline_test_mod(&line.code) {
                pending_test_attr = true;
                line.in_test = true;
            }
        }

        let mut line_in_test = test_until.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_test_attr && test_until.is_none() {
                        test_until = Some(depth);
                        pending_test_attr = false;
                        line_in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(outer) = test_until {
                        if depth <= outer {
                            test_until = None;
                            line_in_test = true;
                        }
                    }
                }
                // `#[cfg(test)] use …;` — the attribute binds to a
                // braceless item that ends here.
                ';' if pending_test_attr && test_until.is_none() => {
                    pending_test_attr = false;
                    line_in_test = true;
                }
                _ => {}
            }
        }
        line.in_test = line.in_test || line_in_test || test_until.is_some();
    }
}

/// `#[cfg(test)]`, `#[cfg(all(test,…))]`, `#[cfg(any(…,test))]` on a
/// whitespace-squished line.
fn has_cfg_test_attr(squished: &str) -> bool {
    let Some(start) = squished.find("#[cfg(") else {
        return false;
    };
    let rest = &squished[start..];
    let end = rest.find(")]").map_or(rest.len(), |e| e + 2);
    let attr = &rest[..end];
    // "test" as a standalone word inside the cfg predicate.
    attr.match_indices("test").any(|(i, _)| {
        let before = attr[..i].chars().next_back();
        let after = attr[i + 4..].chars().next();
        let boundary =
            |c: Option<char>| c.is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '-'));
        boundary(before) && boundary(after)
    })
}

/// An inline `mod tests {` / `mod test {` item (not a `mod tests;`
/// file-module declaration — `crates/stats/src/tests/` is *library*
/// code).
fn is_inline_test_mod(code: &str) -> bool {
    let t = code.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let Some(rest) = t.strip_prefix("mod ") else {
        return false;
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (name == "tests" || name == "test") && rest[name.len()..].trim_start().starts_with('{')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lines = scan("let x = \"panic!()\"; // panic!() in comment\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].comment.contains("panic!() in comment"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lines = scan("let s = r#\"unwrap() \" still \"#; s.unwrap();");
        let code = &lines[0].code;
        assert_eq!(code.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\''; }");
        // The literal '{' must not unbalance brace tracking.
        assert_eq!(lines[0].code.matches('{').count(), 1);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan("/* outer /* inner */ still comment */ code();\nmore();");
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("still"));
        assert!(lines[1].code.contains("more()"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn file_module_declaration_is_not_test() {
        let lines = scan("pub mod tests;\n");
        assert!(!lines[0].in_test);
    }

    #[test]
    fn inline_tests_mod_without_cfg_is_test() {
        let lines = scan("mod tests {\n    fn t() {}\n}\n");
        assert!(lines[1].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let lines = scan("#[cfg(target_os = \"linux\")]\nfn f() {}\n");
        assert!(!lines[1].in_test);
        // "testing" does not contain a standalone "test" token either:
        let lines = scan("#[cfg(feature = \"testing\")]\nfn f() {}\n");
        assert!(!lines[1].in_test);
    }

    #[test]
    fn doc_fences_are_tracked() {
        let src = "/// Example:\n/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        let lines = scan(src);
        assert!(!lines[1].in_doc_fence);
        assert!(lines[2].in_doc_fence);
        assert!(lines[2].code.trim().is_empty());
    }
}
