//! Workspace discovery: which files get linted, where the coverage
//! list lives, and the optional diff-aware `FORMAT_VERSION` check.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::rules::{self, LintContext};
use crate::source::{Finding, SourceFile};

/// Crates whose `src/**` the determinism/wire invariants apply to.
/// `sim`/`workload`/`bench` generate and exercise measurements but
/// never compute shipped verdicts; widen this list as subsystems grow
/// result-bearing code.
pub const SCOPED_CRATES: [&str; 5] = [
    "crates/core",
    "crates/prng",
    "crates/serve",
    "crates/stats",
    "crates/stream",
];

/// Where the golden-fixture coverage list lives.
pub const COVERAGE_FILE: &str = "tests/checkpoint.rs";

/// A full workspace lint run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Suppressions honored (finding silenced by a justified allow).
    pub suppressions_honored: usize,
}

/// Locate the workspace root: `explicit` if given, else walk up from
/// the current directory to the first `Cargo.toml` declaring
/// `[workspace]`, else the compile-time manifest's grandparent.
pub fn find_root(explicit: Option<&Path>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return if root.join("Cargo.toml").is_file() {
            Ok(root.to_path_buf())
        } else {
            Err(format!("--root {}: no Cargo.toml there", root.display()))
        };
    }
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                if let Ok(text) = fs::read_to_string(&manifest) {
                    if text.contains("[workspace]") {
                        return Ok(dir);
                    }
                }
            }
            if !dir.pop() {
                break;
            }
        }
    }
    // Fallback: crates/lint/../.. at compile time (works under
    // `cargo run -p proxima-lint` from anywhere inside the repo).
    let compiled = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .map_err(|e| format!("cannot locate workspace root: {e}"))?;
    Ok(compiled)
}

/// Lint the workspace rooted at `root`. `diff_base` enables the
/// diff-aware FORMAT_VERSION check against that git ref.
pub fn lint_workspace(root: &Path, diff_base: Option<&str>) -> Result<Report, String> {
    let mut files = Vec::new();
    for crate_dir in SCOPED_CRATES {
        let src = root.join(crate_dir).join("src");
        if !src.is_dir() {
            return Err(format!("scoped crate missing: {}", src.display()));
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(rel, &text));
        }
    }

    let ctx = LintContext {
        codec_coverage: read_coverage(&root.join(COVERAGE_FILE)),
        enforce_coverage: true,
        unsafe_gated_crates: SCOPED_CRATES.iter().map(|s| s.to_string()).collect(),
    };

    let total_suppressions: usize = files.iter().map(|f| f.suppressions.len()).sum();
    let mut findings = rules::run(&files, &ctx);
    // Suppressions honored = directives that are neither flagged as
    // hygiene problems nor still visible as findings.
    let hygiene_flagged = findings
        .iter()
        .filter(|f| f.rule == rules::SUPPRESSION_HYGIENE)
        .count();

    if let Some(base) = diff_base {
        findings.extend(check_format_version_diff(root, base));
        findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    Ok(Report {
        findings,
        files_scanned: files.len(),
        suppressions_honored: total_suppressions.saturating_sub(hygiene_flagged),
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extract the `CODEC_COVERAGE` string list from `tests/checkpoint.rs`
/// (normalized: whitespace removed, matching how the codec rule
/// normalizes impl targets).
pub fn read_coverage(path: &Path) -> Option<Vec<String>> {
    let text = fs::read_to_string(path).ok()?;
    let start = text.find("CODEC_COVERAGE")?;
    // Skip to the initializer first: `: &[&str] =` puts brackets in the
    // type annotation before the array literal.
    let eq = text[start..].find('=')? + start;
    let open = text[eq..].find('[')? + eq;
    let close = text[open..].find(']')? + open;
    let body = &text[open + 1..close];
    let mut names = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let end = after.find('"')?;
        let name: String = after[..end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !name.is_empty() {
            names.push(name);
        }
        rest = &after[end + 1..];
    }
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

/// Diff-aware FORMAT_VERSION discipline: if the diff against `base`
/// touches a `FORMAT_VERSION` line in any persist.rs, the same diff
/// must touch `tests/fixtures/` (regenerated goldens) or carry a
/// `fixture-regen` marker. Soft-fails (no findings) when git is
/// unavailable — CI always has it.
fn check_format_version_diff(root: &Path, base: &str) -> Vec<Finding> {
    let run = |args: &[&str]| -> Option<String> {
        let out = Command::new("git")
            .args(args)
            .current_dir(root)
            .output()
            .ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let Some(diff) = run(&["diff", "--unified=0", base, "--", "*persist.rs"]) else {
        eprintln!("mbpta-lint: note: `git diff {base}` failed; skipping diff-aware check");
        return Vec::new();
    };
    let touches_version = diff
        .lines()
        .any(|l| (l.starts_with('+') || l.starts_with('-')) && l.contains("FORMAT_VERSION"));
    if !touches_version {
        return Vec::new();
    }
    let names = run(&["diff", "--name-only", base]).unwrap_or_default();
    let fixtures_touched = names.lines().any(|l| l.starts_with("tests/fixtures/"));
    let marker = run(&["diff", base])
        .unwrap_or_default()
        .contains("fixture-regen");
    if fixtures_touched || marker {
        return Vec::new();
    }
    vec![Finding {
        rule: "codec-discipline",
        path: "tests/fixtures".to_string(),
        line: 1,
        message: format!(
            "this diff (vs {base}) edits FORMAT_VERSION but regenerates no golden \
             fixture; run PROXIMA_REGEN_FIXTURES=1 cargo test --test checkpoint and \
             commit the fixtures (or include a `fixture-regen` note)"
        ),
    }]
}
