//! `mbpta-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! mbpta-lint [--deny] [--root PATH] [--diff-base REF] [--list-rules]
//! ```
//!
//! Without flags it reports findings and exits 0 (warn mode). With
//! `--deny` any finding makes the exit code 1, which is how the CI
//! `lint` job gates merges. `--diff-base <ref>` additionally checks
//! that a diff touching `FORMAT_VERSION` regenerates the golden
//! fixtures.

use std::path::PathBuf;
use std::process::ExitCode;

use proxima_lint::{find_root, lint_workspace, rules, workspace};

struct Args {
    deny: bool,
    root: Option<PathBuf>,
    diff_base: Option<String>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        root: None,
        diff_base: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--diff-base" => {
                let v = it.next().ok_or("--diff-base needs a git ref")?;
                args.diff_base = Some(v);
            }
            "--help" | "-h" => {
                println!(
                    "mbpta-lint [--deny] [--root PATH] [--diff-base REF] [--list-rules]\n\
                     Workspace determinism & wire-invariant static analysis; \
                     see docs/LINTS.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mbpta-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in rules::all_rules() {
            println!("{:<18} {}", rule.name(), rule.explain());
        }
        println!(
            "{:<18} allows must name a real rule, carry a justification, and match a \
             finding (not itself suppressible)",
            rules::SUPPRESSION_HYGIENE,
        );
        return ExitCode::SUCCESS;
    }

    let root = match find_root(args.root.as_deref()) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("mbpta-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, args.diff_base.as_deref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mbpta-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    let scope = workspace::SCOPED_CRATES.join(", ");
    println!(
        "mbpta-lint: {} finding(s) across {} file(s) in [{scope}]; \
         {} suppression(s) honored",
        report.findings.len(),
        report.files_scanned,
        report.suppressions_honored,
    );

    if args.deny && !report.findings.is_empty() {
        eprintln!("mbpta-lint: failing (--deny with findings present)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
