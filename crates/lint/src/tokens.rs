//! A tiny expression-level tokenizer for sanitized code lines.
//!
//! Works on the blanked `code` view produced by [`crate::lexer`], so
//! strings and comments are already gone. Good enough to answer "what
//! token sits on each side of this `==`?" — not a real lexer.

/// Token classes rules care about.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer-looking numeric literal.
    Int,
    /// Float-looking numeric literal (`1.5`, `1.`, `1e-12`, `2f64`).
    Float,
    /// A punctuation/operator run such as `==`, `!=`, `::`, `.`, `(`.
    Op(String),
}

/// Tokenize one sanitized line.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            i = number(&chars, i, &mut out);
        } else {
            // Multi-char operators that matter for adjacency decisions.
            const MULTI: [&str; 10] = ["==", "!=", "<=", ">=", "=>", "->", "::", "..", "&&", "||"];
            let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if MULTI.contains(&pair.as_str()) {
                out.push(Tok::Op(pair));
                i += 2;
            } else {
                out.push(Tok::Op(c.to_string()));
                i += 1;
            }
        }
    }
    out
}

/// Consume a numeric literal starting at `i`; push its token class.
fn number(chars: &[char], mut i: usize, out: &mut Vec<Tok>) -> usize {
    let mut float = false;
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b')) {
        // Radix literal: always integral.
        i += 2;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        out.push(Tok::Int);
        return i;
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        i += 1;
    }
    // Fractional part — but `1..n` is a range and `1.max(…)` a method.
    if chars.get(i) == Some(&'.') {
        let next = chars.get(i + 1);
        let is_range = next == Some(&'.');
        let is_method = next.is_some_and(|c| c.is_alphabetic() || *c == '_');
        if !is_range && !is_method {
            float = true;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Exponent.
    if matches!(chars.get(i), Some('e' | 'E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+' | '-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(char::is_ascii_digit) {
            float = true;
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix.
    let start = i;
    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    let suffix: String = chars[start..i].iter().collect();
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    } else if !suffix.is_empty() {
        float = false;
    }
    out.push(if float { Tok::Float } else { Tok::Int });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(code: &str) -> Vec<Tok> {
        tokenize(code)
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert!(kinds("1.5").contains(&Tok::Float));
        assert!(kinds("1e-12").contains(&Tok::Float));
        assert!(kinds("2f64").contains(&Tok::Float));
        assert!(kinds("1.").contains(&Tok::Float));
        assert!(!kinds("0..n").contains(&Tok::Float));
        assert!(!kinds("1.max(2)").contains(&Tok::Float));
        assert!(!kinds("42u64").contains(&Tok::Float));
        assert!(!kinds("0xff").contains(&Tok::Float));
        // Tuple-field access is ident-dot-int, not a float.
        assert!(!kinds("pair.0 == x").contains(&Tok::Float));
    }

    #[test]
    fn operators_split_correctly() {
        let toks = kinds("a==b");
        assert_eq!(toks[1], Tok::Op("==".to_string()));
        let toks = kinds("a<=b");
        assert_eq!(toks[1], Tok::Op("<=".to_string()));
    }
}
