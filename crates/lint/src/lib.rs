//! `proxima-lint` — workspace-local determinism & wire-invariant
//! static analysis.
//!
//! Every guarantee this repo makes — pWCET bit-identity across
//! `--jobs`, `--shards`, batch splits, crash-resume and the `PXNF`
//! wire — rests on source-level invariants that a compiler does not
//! enforce: no wall-clock reads in analysis paths, no order-dependent
//! iteration over unordered maps, no panics in library code, no raw
//! float equality, sealed-blob codec discipline, and no process exits
//! from library crates. This crate machine-checks those invariants
//! with a hand-rolled, offline-safe scanner (no `syn`, no
//! dependencies) and a rule engine with per-line justified
//! suppressions. See `docs/LINTS.md` for the rule catalogue.
//!
//! Run it as `cargo run -p proxima-lint -- --deny` (the CI `lint` job
//! does exactly that), or use the library API:
//!
//! ```
//! use proxima_lint::{lint_source, rules::LintContext};
//!
//! let findings = lint_source(
//!     "crates/core/src/example.rs",
//!     "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//!     &LintContext::default(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "no-lib-panic");
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod source;
pub mod suppress;
pub mod tokens;
pub mod workspace;

pub use source::{Finding, SourceFile};
pub use workspace::{find_root, lint_workspace, Report};

/// Lint a single source text as if it lived at `path` (test/fixture
/// entry point; workspace runs go through [`lint_workspace`]).
pub fn lint_source(path: &str, text: &str, ctx: &rules::LintContext) -> Vec<Finding> {
    let files = vec![SourceFile::parse(path, text)];
    rules::run(&files, ctx)
}
