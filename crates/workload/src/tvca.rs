//! The synthetic Thrust Vector Control Application.
//!
//! Mirrors the structure the paper describes: C code generated from a
//! closed-loop control model, running bare-metal under a fixed-priority
//! scheduler with three periodic tasks — **sensor data acquisition**,
//! **actuator control in the X axis** and **actuator control in the Y
//! axis**. The synthetic version assembles those tasks from the
//! [`crate::kernels`] control-law building blocks:
//!
//! * *Sensor acquisition* (highest priority, period = 1 minor frame):
//!   stream-in the ADC buffers, CRC-check the telemetry frame, FIR-filter
//!   the channels, range-check the results.
//! * *Actuator X / Y* (period = 2 minor frames, alternating): PID step on
//!   the filtered error, 3-vector normalization (FSQRT + FDIV), gimbal
//!   rotation by a small matrix multiply, actuator calibration via table
//!   interpolation (FDIV).
//!
//! A hyperperiod is two minor frames; the emitted trace covers one
//! hyperperiod including scheduler overhead (timer read, ready-queue scan,
//! dispatch branches).
//!
//! **Paths.** The control law has four execution paths, selected by the
//! plant state: [`ControlMode::Nominal`], saturation in either axis
//! (anti-windup branch, worst-case FPU operand classes in that axis) and
//! [`ControlMode::FaultRecovery`] (reruns the sensor validation and takes
//! the recovery branch). Per-path MBPTA analyses each path separately and
//! takes the maximum, as the paper does.

use crate::kernels;
use crate::trace::{DataObject, TraceBuilder};
use proxima_sim::{Inst, ValueClass};

/// The plant condition selecting the executed control path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ControlMode {
    /// All actuators within limits.
    #[default]
    Nominal,
    /// X-axis actuator saturated: anti-windup branch, worst-case divides
    /// in the X task.
    SaturatedX,
    /// Y-axis actuator saturated.
    SaturatedY,
    /// Sensor fault detected: validation re-run and recovery branch.
    FaultRecovery,
}

impl ControlMode {
    /// All execution paths of the application.
    pub fn all() -> [ControlMode; 4] {
        [
            ControlMode::Nominal,
            ControlMode::SaturatedX,
            ControlMode::SaturatedY,
            ControlMode::FaultRecovery,
        ]
    }
}

impl std::fmt::Display for ControlMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ControlMode::Nominal => "nominal",
            ControlMode::SaturatedX => "saturated-x",
            ControlMode::SaturatedY => "saturated-y",
            ControlMode::FaultRecovery => "fault-recovery",
        })
    }
}

/// Problem size: `Small` keeps unit tests fast; `Full` is the experiment
/// configuration with a data footprint comparable to the 16 KB L1 caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Reduced arrays for fast tests.
    Small,
    /// Experiment-sized arrays (default).
    #[default]
    Full,
}

/// TVCA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TvcaConfig {
    /// Problem size.
    pub scale: Scale,
    /// Link-time layout identifier. Each data object starts in its own
    /// 4 KB alignment window (as in a linked binary with page-grouped
    /// sections) at an intra-window offset derived from this seed — the
    /// knob the DET layout-sensitivity experiment (E3) sweeps. On the
    /// randomized platform the layout's timing effect is absorbed by
    /// random placement; on DET it directly selects which objects conflict.
    pub layout_seed: u64,
}

impl Default for TvcaConfig {
    fn default() -> Self {
        TvcaConfig {
            scale: Scale::Full,
            layout_seed: 0,
        }
    }
}

/// Data objects of the application (addresses fixed by the layout).
#[derive(Debug, Clone)]
struct TvcaData {
    adc_x: DataObject,
    adc_y: DataObject,
    telemetry: DataObject,
    fir_coeffs: DataObject,
    filtered_x: DataObject,
    filtered_y: DataObject,
    pid_state_x: DataObject,
    pid_state_y: DataObject,
    setpoints: DataObject,
    thrust_vec_x: DataObject,
    thrust_vec_y: DataObject,
    rot_matrix: DataObject,
    gimbal_x: DataObject,
    gimbal_y: DataObject,
    calib_table_x: DataObject,
    calib_table_y: DataObject,
    actuator_cmd: DataObject,
}

/// Sizing parameters per scale.
#[derive(Debug, Clone, Copy)]
struct Sizing {
    adc_len: u64,
    filtered_len: u64,
    fir_taps: u64,
    channels: u64,
    table_len: u64,
    mat_n: u64,
}

impl Sizing {
    fn of(scale: Scale) -> Self {
        match scale {
            Scale::Small => Sizing {
                adc_len: 32,
                filtered_len: 16,
                fir_taps: 4,
                channels: 4,
                table_len: 64,
                mat_n: 3,
            },
            Scale::Full => Sizing {
                adc_len: 512,
                filtered_len: 128,
                fir_taps: 8,
                channels: 8,
                table_len: 1024,
                mat_n: 6,
            },
        }
    }
}

/// Code-segment base addresses (one per function group, so the fetch
/// stream jumps between IL1 windows like a linked binary).
const CODE_SCHED: u64 = 0x4000_0000;
const CODE_SENSOR: u64 = 0x4000_4000;
const CODE_ACT_X: u64 = 0x4000_8000;
const CODE_ACT_Y: u64 = 0x4000_C000;
const CODE_FAULT: u64 = 0x4001_0000;
/// Base of the data segments.
const DATA_BASE: u64 = 0x6000_0000;

/// The synthetic Thrust Vector Control Application.
///
/// # Examples
///
/// ```
/// use proxima_workload::tvca::{ControlMode, Tvca, TvcaConfig};
///
/// let tvca = Tvca::new(TvcaConfig::default());
/// assert_eq!(tvca.paths().len(), 4);
/// let nominal = tvca.trace(ControlMode::Nominal);
/// let fault = tvca.trace(ControlMode::FaultRecovery);
/// assert!(fault.len() > nominal.len()); // recovery path runs extra code
/// ```
#[derive(Debug, Clone)]
pub struct Tvca {
    config: TvcaConfig,
    sizing: Sizing,
    data: TvcaData,
}

impl Tvca {
    /// Instantiate the application with the given configuration.
    pub fn new(config: TvcaConfig) -> Self {
        use proxima_prng::{RandomSource, SplitMix64};
        let s = Sizing::of(config.scale);
        // Each object starts in a fresh 4 KB window (the cache alignment
        // window of random-modulo placement) at an intra-window offset
        // chosen by the layout seed — the address-space shape of a linked
        // binary whose sections land in different pages.
        let mut cursor = DATA_BASE;
        let mut obj_index = 0u64;
        let mut place = |len: u64, elem: u64| {
            let window = cursor.next_multiple_of(4096);
            let pad_lines = SplitMix64::new(config.layout_seed ^ obj_index.wrapping_mul(0x9E37))
                .next_u64()
                % 64;
            obj_index += 1;
            let base = window + pad_lines * 32;
            cursor = base + len * elem;
            DataObject::new(base, len, elem)
        };
        let data = TvcaData {
            adc_x: place(s.adc_len, 4),
            adc_y: place(s.adc_len, 4),
            telemetry: place(s.adc_len / 2, 4),
            fir_coeffs: place(s.fir_taps, 4),
            filtered_x: place(s.filtered_len, 4),
            filtered_y: place(s.filtered_len, 4),
            pid_state_x: place(2 * s.channels, 4),
            pid_state_y: place(2 * s.channels, 4),
            setpoints: place(s.channels, 4),
            thrust_vec_x: place(3, 4),
            thrust_vec_y: place(3, 4),
            rot_matrix: place(s.mat_n * s.mat_n, 4),
            gimbal_x: place(s.mat_n * s.mat_n, 4),
            gimbal_y: place(s.mat_n * s.mat_n, 4),
            calib_table_x: place(s.table_len, 4),
            calib_table_y: place(s.table_len, 4),
            actuator_cmd: place(2 * s.channels, 4),
        };
        Tvca {
            config,
            sizing: s,
            data,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &TvcaConfig {
        &self.config
    }

    /// Total data footprint in bytes.
    pub fn data_footprint(&self) -> u64 {
        self.data.actuator_cmd.base().raw() + self.data.actuator_cmd.size_bytes()
            - self.data.adc_x.base().raw()
    }

    /// The enumerable execution paths (per-path MBPTA runs each).
    pub fn paths(&self) -> Vec<ControlMode> {
        ControlMode::all().to_vec()
    }

    /// Emit the one-hyperperiod instruction trace for `mode`.
    ///
    /// The trace is deterministic: the same mode always yields the same
    /// instruction sequence (execution-time variation comes from the
    /// platform, not the program).
    pub fn trace(&self, mode: ControlMode) -> Vec<Inst> {
        let mut b = TraceBuilder::new(CODE_SCHED);
        // Hyperperiod = 2 minor frames.
        for frame in 0..2u64 {
            self.scheduler_overhead(&mut b, frame);
            self.sensor_task(&mut b, mode);
            if frame == 0 {
                self.actuator_task(&mut b, Axis::X, mode);
            } else {
                self.actuator_task(&mut b, Axis::Y, mode);
            }
        }
        b.finish()
    }

    /// Fixed-priority cyclic-executive dispatch: timer read, ready-queue
    /// scan, context dispatch.
    fn scheduler_overhead(&self, b: &mut TraceBuilder, frame: u64) {
        b.call(CODE_SCHED + 0x100, |b| {
            b.load(self.data.telemetry.elem(0)); // timer/status register read
            b.alu(6); // priority scan
            b.branch(frame == 1); // frame selector
            b.alu(2); // dispatch
        });
    }

    /// Sensor data acquisition task (highest priority).
    fn sensor_task(&self, b: &mut TraceBuilder, mode: ControlMode) {
        let d = &self.data;
        let s = self.sizing;
        b.call(CODE_SENSOR, |b| {
            // Acquire both axis ADC buffers.
            b.stream_load(&d.adc_x);
            b.stream_load(&d.adc_y);
            // Telemetry integrity.
            kernels::crc(b, &d.telemetry);
            // Filter each axis.
            kernels::fir_filter(b, &d.adc_x, &d.fir_coeffs, &d.filtered_x, s.fir_taps);
            kernels::fir_filter(b, &d.adc_y, &d.fir_coeffs, &d.filtered_y, s.fir_taps);
            // Range monitoring; a fault floods the violation branch.
            let violation_every = if mode == ControlMode::FaultRecovery {
                4
            } else {
                0
            };
            kernels::range_check(b, &d.filtered_x, violation_every);
            kernels::range_check(b, &d.filtered_y, violation_every);
            // Fault path: validation re-run + recovery bookkeeping.
            if mode == ControlMode::FaultRecovery {
                b.call(CODE_FAULT, |b| {
                    kernels::crc(b, &d.adc_x);
                    kernels::crc(b, &d.adc_y);
                    b.loop_n(s.channels, |b, i| {
                        b.load(d.setpoints.elem(i));
                        b.alu(4);
                        b.store(d.actuator_cmd.elem(i));
                    });
                });
            }
        });
    }

    /// Actuator control task for one axis.
    fn actuator_task(&self, b: &mut TraceBuilder, axis: Axis, mode: ControlMode) {
        let d = &self.data;
        let s = self.sizing;
        let (code, filtered, pid_state, thrust, gimbal, table) = match axis {
            Axis::X => (
                CODE_ACT_X,
                &d.filtered_x,
                &d.pid_state_x,
                &d.thrust_vec_x,
                &d.gimbal_x,
                &d.calib_table_x,
            ),
            Axis::Y => (
                CODE_ACT_Y,
                &d.filtered_y,
                &d.pid_state_y,
                &d.thrust_vec_y,
                &d.gimbal_y,
                &d.calib_table_y,
            ),
        };
        let saturated = matches!(
            (axis, mode),
            (Axis::X, ControlMode::SaturatedX) | (Axis::Y, ControlMode::SaturatedY)
        );
        // Saturation drives the divider into its slow region.
        let class = if saturated {
            ValueClass::Worst
        } else {
            ValueClass::Typical
        };

        b.call(code, |b| {
            // PID on the filtered channels.
            kernels::pid_step(b, &d.setpoints, filtered, pid_state, &d.actuator_cmd);
            // Anti-windup branch (taken only when saturated).
            b.branch(saturated);
            if saturated {
                b.loop_n(s.channels, |b, i| {
                    b.load(d.actuator_cmd.elem(i));
                    b.alu(3); // clamp + back-calculation
                    b.store(pid_state.elem(2 * i));
                });
            }
            // Thrust vector geometry: normalize then rotate.
            kernels::vec_normalize(b, thrust, thrust, class);
            kernels::matmul(b, &d.rot_matrix, gimbal, gimbal, s.mat_n);
            // Actuator calibration.
            kernels::table_interp(b, table, &d.actuator_cmd, &d.actuator_cmd, class);
        });
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{InstKind, Platform, PlatformConfig};

    fn small() -> Tvca {
        Tvca::new(TvcaConfig {
            scale: Scale::Small,
            layout_seed: 0,
        })
    }

    #[test]
    fn traces_are_deterministic_per_path() {
        let t = small();
        for mode in ControlMode::all() {
            assert_eq!(t.trace(mode), t.trace(mode), "mode {mode}");
        }
    }

    #[test]
    fn four_distinct_paths() {
        let t = small();
        let lens: Vec<usize> = t.paths().iter().map(|&m| t.trace(m).len()).collect();
        // Fault path longest; saturated paths longer than nominal.
        assert!(lens[3] > lens[0]);
        assert!(lens[1] > lens[0]);
        assert!(lens[2] > lens[0]);
    }

    #[test]
    fn saturated_paths_use_worst_class_divides() {
        let t = small();
        let has_worst_div = |mode| {
            t.trace(mode)
                .iter()
                .any(|i| matches!(i.kind, InstKind::FpDiv(ValueClass::Worst)))
        };
        assert!(!has_worst_div(ControlMode::Nominal));
        assert!(has_worst_div(ControlMode::SaturatedX));
        assert!(has_worst_div(ControlMode::SaturatedY));
    }

    #[test]
    fn trace_contains_all_three_tasks() {
        let t = small();
        let trace = t.trace(ControlMode::Nominal);
        let pcs: std::collections::HashSet<u64> =
            trace.iter().map(|i| i.pc.raw() & 0xFFFF_C000).collect();
        for base in [CODE_SCHED, CODE_SENSOR, CODE_ACT_X, CODE_ACT_Y] {
            assert!(
                pcs.contains(&base),
                "trace must fetch from segment {base:#x}"
            );
        }
    }

    #[test]
    fn fault_path_visits_fault_code() {
        let t = small();
        let visits = |mode| {
            t.trace(mode)
                .iter()
                .any(|i| i.pc.raw() >= CODE_FAULT && i.pc.raw() < CODE_FAULT + 0x4000)
        };
        assert!(visits(ControlMode::FaultRecovery));
        assert!(!visits(ControlMode::Nominal));
    }

    #[test]
    fn layout_seed_moves_data_not_code() {
        let a = Tvca::new(TvcaConfig {
            scale: Scale::Small,
            layout_seed: 0,
        });
        let b = Tvca::new(TvcaConfig {
            scale: Scale::Small,
            layout_seed: 99,
        });
        let ta = a.trace(ControlMode::Nominal);
        let tb = b.trace(ControlMode::Nominal);
        assert_eq!(ta.len(), tb.len());
        let mut any_data_moved = false;
        for (ia, ib) in ta.iter().zip(&tb) {
            assert_eq!(ia.pc, ib.pc, "code addresses must not move");
            match (ia.data_addr(), ib.data_addr()) {
                (Some(da), Some(db)) => {
                    if da != db {
                        any_data_moved = true;
                    }
                    // Objects stay in the same windows; only intra-window
                    // offsets change.
                    assert_eq!(da.raw() / 4096, db.raw() / 4096, "window must not change");
                }
                (None, None) => {}
                other => panic!("kind mismatch {other:?}"),
            }
        }
        assert!(
            any_data_moved,
            "a different layout seed must move some data"
        );
    }

    #[test]
    fn full_scale_spans_many_alignment_windows() {
        let t = Tvca::new(TvcaConfig::default());
        let fp = t.data_footprint();
        // The resident working set sits in > 4 alignment windows (so even
        // random modulo can produce conflicts) and is cache-comparable.
        assert!(fp > 16 * 1024 && fp < 128 * 1024, "footprint {fp}");
    }

    #[test]
    fn runs_on_both_platforms() {
        let t = small();
        let trace = t.trace(ControlMode::Nominal);
        let mut rand = Platform::new(PlatformConfig::mbpta_compliant());
        let mut det = Platform::new(PlatformConfig::deterministic());
        assert!(rand.run(&trace, 0).cycles > 0);
        assert!(det.run(&trace, 0).cycles > 0);
    }

    #[test]
    fn rand_platform_jitters_on_full_tvca() {
        let t = Tvca::new(TvcaConfig::default());
        let trace = t.trace(ControlMode::Nominal);
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let times: std::collections::HashSet<u64> =
            (0..10).map(|s| p.run(&trace, s).cycles).collect();
        assert!(times.len() > 1, "TVCA on RAND should jitter across seeds");
    }

    #[test]
    fn det_platform_layout_sensitivity() {
        // Different link-time paddings must change DET execution time for
        // at least one of a few offsets (conflict pattern changes).
        let mut det = Platform::new(PlatformConfig::deterministic());
        let times: std::collections::HashSet<u64> = (0u64..5)
            .map(|seed| {
                let t = Tvca::new(TvcaConfig {
                    scale: Scale::Full,
                    layout_seed: seed,
                });
                det.run(&t.trace(ControlMode::Nominal), 0).cycles
            })
            .collect();
        assert!(times.len() > 1, "layout should matter on DET");
    }

    #[test]
    fn display_names() {
        assert_eq!(ControlMode::Nominal.to_string(), "nominal");
        assert_eq!(ControlMode::FaultRecovery.to_string(), "fault-recovery");
    }
}
