//! Control-law kernels: the building blocks the TVCA tasks are assembled
//! from.
//!
//! Each kernel emits the instruction mix of the corresponding generated-C
//! control code: streaming array arithmetic, multiply-accumulate chains,
//! divides and square roots for normalization, and table lookups with
//! interpolation. Kernels take their data objects explicitly so the TVCA
//! can lay them out in (and the DET experiments can *re*-lay them out
//! across) the address space.

use crate::trace::{DataObject, TraceBuilder};
use proxima_sim::ValueClass;

/// FIR filter: `out[i] = Σ_j coeff[j] · in[i−j]` over `taps` coefficients.
///
/// Per output sample: `taps` coefficient loads, `taps` sample loads,
/// multiply-accumulate chain, one store.
pub fn fir_filter(
    b: &mut TraceBuilder,
    input: &DataObject,
    coeffs: &DataObject,
    output: &DataObject,
    taps: u64,
) {
    let n = output.len();
    b.loop_n(n, |b, i| {
        b.alu(2); // index computation
        for j in 0..taps {
            b.load(coeffs.elem(j));
            b.load(input.elem(i + j));
            b.fmul();
            b.fadd();
        }
        b.store(output.elem(i));
    });
}

/// One PID control step per element: error computation, proportional /
/// integral / derivative terms, output clamping.
pub fn pid_step(
    b: &mut TraceBuilder,
    setpoint: &DataObject,
    measurement: &DataObject,
    state: &DataObject,
    output: &DataObject,
) {
    let n = output.len();
    b.loop_n(n, |b, i| {
        b.load(setpoint.elem(i));
        b.load(measurement.elem(i));
        b.fadd(); // error = sp − meas
        b.load(state.elem(2 * i)); // integral state
        b.fmul(); // Ki · ∫e
        b.fadd();
        b.load(state.elem(2 * i + 1)); // previous error
        b.fadd(); // derivative
        b.fmul(); // Kd · de
        b.fadd();
        b.store(state.elem(2 * i)); // update integral
        b.store(state.elem(2 * i + 1)); // update prev error
        b.alu(2); // clamp comparisons
        b.store(output.elem(i));
    });
}

/// Dense `n×n` matrix multiply `c = a · b` (row-major `f32`).
pub fn matmul(b: &mut TraceBuilder, a: &DataObject, bm: &DataObject, c: &DataObject, n: u64) {
    b.loop_n(n, |b, i| {
        b.loop_n(n, |b, j| {
            b.alu(1);
            b.loop_n(n, |b, k| {
                b.load(a.elem(i * n + k));
                b.load(bm.elem(k * n + j));
                b.fmul();
                b.fadd();
            });
            b.store(c.elem(i * n + j));
        });
    });
}

/// Euclidean norm of a vector followed by normalization: the FSQRT + FDIV
/// sequence at the heart of thrust-vector geometry.
///
/// `classes` supplies the operand value class for the divide/sqrt (a
/// function of the input data, fixed per path).
pub fn vec_normalize(b: &mut TraceBuilder, v: &DataObject, out: &DataObject, class: ValueClass) {
    let n = v.len();
    // Accumulate Σ v²
    b.loop_n(n, |b, i| {
        b.load(v.elem(i));
        b.fmul();
        b.fadd();
    });
    b.fsqrt(class); // ‖v‖
                    // Divide each component.
    b.loop_n(n, |b, i| {
        b.load(v.elem(i));
        b.fdiv(class);
        b.store(out.elem(i));
    });
}

/// Table lookup with linear interpolation (e.g. actuator calibration
/// curves): integer index computation, two table loads, one divide for the
/// interpolation factor.
pub fn table_interp(
    b: &mut TraceBuilder,
    table: &DataObject,
    queries: &DataObject,
    out: &DataObject,
    class: ValueClass,
) {
    let n = out.len();
    b.loop_n(n, |b, i| {
        b.load(queries.elem(i));
        b.alu(3); // index + clamp
        b.mul(); // scale
                 // Pseudo-random-ish table index derived from the query index keeps
                 // the lookups spread over the table, as real calibration data does.
        let idx = (i.wrapping_mul(2654435761)) % table.len().max(1);
        b.load(table.elem(idx));
        b.load(table.elem(idx + 1));
        b.fadd();
        b.fdiv(class); // interpolation factor
        b.fmul();
        b.fadd();
        b.store(out.elem(i));
    });
}

/// CRC over a buffer (telemetry integrity): byte loads + ALU mixing.
pub fn crc(b: &mut TraceBuilder, buf: &DataObject) {
    let n = buf.len();
    b.loop_n(n, |b, i| {
        b.load(buf.elem(i));
        b.alu(4); // xor/shift/table-less CRC mixing
    });
}

/// Range/limit monitoring: load each sample, compare against limits, count
/// violations (branchy integer code).
pub fn range_check(b: &mut TraceBuilder, samples: &DataObject, violation_every: u64) {
    let n = samples.len();
    b.loop_n(n, |b, i| {
        b.load(samples.elem(i));
        b.alu(2);
        let violated = violation_every != 0 && i % violation_every == 0;
        b.branch(violated);
        if violated {
            b.alu(3); // log the violation
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{InstKind, Platform, PlatformConfig};

    fn obj(base: u64, len: u64) -> DataObject {
        DataObject::new(base, len, 4)
    }

    fn count_kind(trace: &[proxima_sim::Inst], pred: impl Fn(&InstKind) -> bool) -> usize {
        trace.iter().filter(|i| pred(&i.kind)).count()
    }

    #[test]
    fn fir_instruction_budget() {
        let mut b = TraceBuilder::new(0x1000);
        let input = obj(0x10000, 64);
        let coeffs = obj(0x20000, 8);
        let output = obj(0x30000, 32);
        fir_filter(&mut b, &input, &coeffs, &output, 8);
        let t = b.finish();
        // Per sample: 2 alu + 8×(2 loads + fmul + fadd) + 1 store + backedge.
        assert_eq!(t.len(), 32 * (2 + 8 * 4 + 1 + 1));
        assert_eq!(count_kind(&t, |k| matches!(k, InstKind::Store(_))), 32);
        assert_eq!(count_kind(&t, |k| matches!(k, InstKind::Load(_))), 32 * 16);
    }

    #[test]
    fn matmul_cubic_load_count() {
        let mut b = TraceBuilder::new(0x1000);
        let n = 6;
        let a = obj(0x10000, n * n);
        let bm = obj(0x20000, n * n);
        let c = obj(0x30000, n * n);
        matmul(&mut b, &a, &bm, &c, n);
        let t = b.finish();
        assert_eq!(
            count_kind(&t, |k| matches!(k, InstKind::Load(_))) as u64,
            2 * n * n * n
        );
        assert_eq!(
            count_kind(&t, |k| matches!(k, InstKind::Store(_))) as u64,
            n * n
        );
    }

    #[test]
    fn vec_normalize_uses_sqrt_and_div() {
        let mut b = TraceBuilder::new(0x1000);
        let v = obj(0x10000, 3);
        let out = obj(0x20000, 3);
        vec_normalize(&mut b, &v, &out, ValueClass::Worst);
        let t = b.finish();
        assert_eq!(count_kind(&t, |k| matches!(k, InstKind::FpSqrt(_))), 1);
        assert_eq!(count_kind(&t, |k| matches!(k, InstKind::FpDiv(_))), 3);
    }

    #[test]
    fn table_interp_divides_per_query() {
        let mut b = TraceBuilder::new(0x1000);
        let table = obj(0x10000, 256);
        let queries = obj(0x20000, 10);
        let out = obj(0x30000, 10);
        table_interp(&mut b, &table, &queries, &out, ValueClass::Typical);
        let t = b.finish();
        assert_eq!(count_kind(&t, |k| matches!(k, InstKind::FpDiv(_))), 10);
    }

    #[test]
    fn range_check_branches_on_violations() {
        let mut b = TraceBuilder::new(0x1000);
        let s = obj(0x10000, 20);
        range_check(&mut b, &s, 5);
        let t = b.finish();
        // Violations at i = 0, 5, 10, 15 → 4 taken non-backedge branches.
        let taken_non_backedge = t
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Branch { taken: true }))
            .count();
        // 19 taken backedges + 4 violation branches.
        assert_eq!(taken_non_backedge, 19 + 4);
    }

    #[test]
    fn kernels_run_on_platform() {
        let mut b = TraceBuilder::new(0x1000);
        let x = obj(0x10000, 32);
        let y = obj(0x20000, 32);
        crc(&mut b, &x);
        vec_normalize(&mut b, &x, &y, ValueClass::Typical);
        let t = b.finish();
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let r = p.run(&t, 0);
        assert_eq!(r.stats.instructions as usize, t.len());
        assert!(r.cycles >= t.len() as u64);
    }
}
