//! Synthetic space-domain workloads for timing analysis.
//!
//! The paper's case study is a **Thrust Vector Control Application
//! (TVCA)** developed by the European Space Agency: auto-generated C from a
//! closed-loop control model, running bare-metal under a fixed-priority
//! scheduler with three periodic tasks — *sensor data acquisition*,
//! *actuator control X* and *actuator control Y*. The original application
//! is proprietary, so this crate builds a synthetic equivalent with the
//! same structure and the same interaction with the timing-relevant
//! hardware (cache footprint, FPU divide/sqrt usage, multi-path control
//! flow); see `DESIGN.md` §2 for the substitution argument.
//!
//! Contents:
//!
//! * [`trace`] — the [`trace::TraceBuilder`]: structured emission of
//!   instruction traces (loops with back-edges, calls, data objects) for
//!   the [`proxima_sim`] platform model;
//! * [`kernels`] — control-law building blocks (FIR filter, PID step,
//!   matrix multiply, vector normalization with FSQRT, table
//!   interpolation with FDIV, CRC);
//! * [`tvca`] — the three-task TVCA under a fixed-priority cyclic
//!   executive, with enumerable execution paths for per-path MBPTA;
//! * [`bench_suite`] — small auxiliary kernels used by the average
//!   performance experiment (E4).
//!
//! # Examples
//!
//! ```
//! use proxima_workload::tvca::{Tvca, TvcaConfig};
//! use proxima_sim::{Platform, PlatformConfig};
//!
//! let tvca = Tvca::new(TvcaConfig::default());
//! let trace = tvca.trace(tvca.paths()[0]);
//! let mut platform = Platform::new(PlatformConfig::mbpta_compliant());
//! let result = platform.run(&trace, 0);
//! assert!(result.cycles > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aocs;
pub mod bench_suite;
pub mod kernels;
pub mod trace;
pub mod tvca;
