//! Structured instruction-trace construction.

use proxima_sim::{Addr, Inst, InstKind, ValueClass};

/// A data object in the simulated address space: a named array the trace
/// builder can address element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataObject {
    base: Addr,
    len_bytes: u64,
    elem_size: u64,
}

impl DataObject {
    /// Define an object of `len` elements of `elem_size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size == 0` or `len == 0`.
    pub fn new(base: u64, len: u64, elem_size: u64) -> Self {
        assert!(elem_size > 0 && len > 0, "object must have elements");
        DataObject {
            base: Addr::new(base),
            len_bytes: len * elem_size,
            elem_size,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len_bytes / self.elem_size
    }

    /// `true` if the object has no elements (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.len_bytes == 0
    }

    /// Address of element `i` (wrapping modulo the object length, which
    /// models the index masking of generated control code).
    pub fn elem(&self, i: u64) -> Addr {
        let idx = (i % self.len()) * self.elem_size;
        self.base.offset(idx)
    }

    /// Base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size of the object in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len_bytes
    }
}

/// Structured builder for instruction traces.
///
/// Emits [`Inst`] records while maintaining a program-counter cursor so the
/// fetch stream is realistic: loop bodies re-execute the same PCs (IL1
/// temporal locality), calls jump to the callee's code segment, and every
/// loop iteration ends in a taken back-edge branch except the last.
///
/// # Examples
///
/// ```
/// use proxima_workload::trace::{DataObject, TraceBuilder};
///
/// let mut b = TraceBuilder::new(0x4000_0000);
/// let arr = DataObject::new(0x5000_0000, 64, 4);
/// b.loop_n(4, |b, _i| {
///     b.load(arr.elem(0));
///     b.alu(2);
/// });
/// let trace = b.finish();
/// assert!(trace.len() > 12);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Vec<Inst>,
    pc: u64,
}

/// Bytes per instruction (SPARC V8 fixed 32-bit encoding).
const INST_BYTES: u64 = 4;

impl TraceBuilder {
    /// Start a trace with the code cursor at `code_base`.
    pub fn new(code_base: u64) -> Self {
        TraceBuilder {
            trace: Vec::new(),
            pc: code_base,
        }
    }

    /// The current program-counter cursor.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finish and return the trace.
    pub fn finish(self) -> Vec<Inst> {
        self.trace
    }

    fn emit(&mut self, kind: InstKind) {
        self.trace.push(Inst::new(self.pc, kind));
        self.pc += INST_BYTES;
    }

    /// Emit `n` integer ALU instructions.
    pub fn alu(&mut self, n: u64) {
        for _ in 0..n {
            self.emit(InstKind::IntAlu);
        }
    }

    /// Emit an integer multiply.
    pub fn mul(&mut self) {
        self.emit(InstKind::IntMul);
    }

    /// Emit an integer divide.
    pub fn div(&mut self) {
        self.emit(InstKind::IntDiv);
    }

    /// Emit a load from `addr`.
    pub fn load(&mut self, addr: Addr) {
        self.emit(InstKind::Load(addr));
    }

    /// Emit a store to `addr`.
    pub fn store(&mut self, addr: Addr) {
        self.emit(InstKind::Store(addr));
    }

    /// Emit a floating-point add.
    pub fn fadd(&mut self) {
        self.emit(InstKind::FpAdd);
    }

    /// Emit a floating-point multiply.
    pub fn fmul(&mut self) {
        self.emit(InstKind::FpMul);
    }

    /// Emit a floating-point divide with the given operand class.
    pub fn fdiv(&mut self, class: ValueClass) {
        self.emit(InstKind::FpDiv(class));
    }

    /// Emit a floating-point square root with the given operand class.
    pub fn fsqrt(&mut self, class: ValueClass) {
        self.emit(InstKind::FpSqrt(class));
    }

    /// Emit an explicit (conditional) branch.
    pub fn branch(&mut self, taken: bool) {
        self.emit(InstKind::Branch { taken });
    }

    /// Emit a counted loop: the body executes `iters` times at the *same*
    /// PCs, each iteration closed by a back-edge branch (taken on all but
    /// the final iteration). The body callback receives the iteration
    /// index.
    pub fn loop_n(&mut self, iters: u64, mut body: impl FnMut(&mut Self, u64)) {
        if iters == 0 {
            return;
        }
        let start = self.pc;
        let mut end = start;
        for i in 0..iters {
            self.pc = start;
            body(self, i);
            self.emit(InstKind::Branch {
                taken: i + 1 < iters,
            });
            end = self.pc;
        }
        self.pc = end;
    }

    /// Emit a call: jump to `callee_base`, run `body` there, and return.
    /// Models the fetch-stream redirection of a real call/return pair.
    pub fn call(&mut self, callee_base: u64, body: impl FnOnce(&mut Self)) {
        self.emit(InstKind::Branch { taken: true }); // call
        let ret_pc = self.pc;
        self.pc = callee_base;
        body(self);
        self.emit(InstKind::Branch { taken: true }); // return
        self.pc = ret_pc;
    }

    /// Emit an if/else: exactly one arm's instructions appear in the trace
    /// (this is a *trace*, not a CFG), with the branch instruction itself
    /// modelling the direction. The not-taken arm's code still occupies
    /// address space, so `else_len_insts` advances the PC cursor past the
    /// skipped arm.
    pub fn if_else(
        &mut self,
        take_then: bool,
        then_len_insts: u64,
        else_len_insts: u64,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        // Conditional branch jumps to the else arm when `!take_then`.
        self.emit(InstKind::Branch { taken: !take_then });
        let then_start = self.pc;
        let else_start = then_start + then_len_insts * INST_BYTES + INST_BYTES; // skip jump
        let join = else_start + else_len_insts * INST_BYTES;
        if take_then {
            then_body(self);
            self.emit(InstKind::Branch { taken: true }); // jump over else
        } else {
            self.pc = else_start;
            else_body(self);
        }
        self.pc = join;
    }

    /// Sequentially load every element of `obj` (a streaming read).
    pub fn stream_load(&mut self, obj: &DataObject) {
        for i in 0..obj.len() {
            self.load(obj.elem(i));
        }
    }

    /// Sequentially store every element of `obj` (a streaming write).
    pub fn stream_store(&mut self, obj: &DataObject) {
        for i in 0..obj.len() {
            self.store(obj.elem(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_reuses_pcs() {
        let mut b = TraceBuilder::new(0x1000);
        b.loop_n(3, |b, _| {
            b.alu(2);
        });
        let t = b.finish();
        // 3 iterations × (2 alu + 1 branch) = 9 instructions.
        assert_eq!(t.len(), 9);
        assert_eq!(t[0].pc, t[3].pc, "iterations share PCs");
        assert_eq!(t[0].pc, t[6].pc);
        // Back-edges: taken, taken, not-taken.
        assert_eq!(t[2].kind, InstKind::Branch { taken: true });
        assert_eq!(t[5].kind, InstKind::Branch { taken: true });
        assert_eq!(t[8].kind, InstKind::Branch { taken: false });
    }

    #[test]
    fn loop_body_sees_iteration_index() {
        let mut seen = Vec::new();
        let mut b = TraceBuilder::new(0);
        b.loop_n(4, |b, i| {
            seen.push(i);
            b.alu(1);
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_iteration_loop_emits_nothing() {
        let mut b = TraceBuilder::new(0);
        b.loop_n(0, |b, _| b.alu(100));
        assert!(b.is_empty());
    }

    #[test]
    fn call_redirects_and_returns() {
        let mut b = TraceBuilder::new(0x1000);
        b.alu(1);
        let before = b.pc();
        b.call(0x9000, |b| b.alu(2));
        // After the call the cursor continues after the call site.
        assert_eq!(b.pc(), before + 4);
        let t = b.finish();
        // alu, call-branch, 2×alu at callee, ret-branch.
        assert_eq!(t.len(), 5);
        assert_eq!(t[2].pc.raw(), 0x9000);
        assert_eq!(t[3].pc.raw(), 0x9004);
    }

    #[test]
    fn if_else_emits_exactly_one_arm() {
        let build = |take_then: bool| {
            let mut b = TraceBuilder::new(0x1000);
            b.if_else(take_then, 2, 3, |b| b.alu(2), |b| b.alu(3));
            b.alu(1); // join point
            b.finish()
        };
        let then_trace = build(true);
        let else_trace = build(false);
        // then: branch + 2 alu + jump + join-alu = 5.
        assert_eq!(then_trace.len(), 5);
        // else: branch + 3 alu + join-alu = 5.
        assert_eq!(else_trace.len(), 5);
        // Join PC identical on both paths.
        assert_eq!(then_trace.last().unwrap().pc, else_trace.last().unwrap().pc);
        // Different arm PCs.
        assert_ne!(then_trace[1].pc, else_trace[1].pc);
    }

    #[test]
    fn data_object_addressing() {
        let obj = DataObject::new(0x8000, 16, 4);
        assert_eq!(obj.len(), 16);
        assert_eq!(obj.elem(0).raw(), 0x8000);
        assert_eq!(obj.elem(3).raw(), 0x800C);
        assert_eq!(obj.elem(16).raw(), 0x8000, "wraps modulo length");
        assert_eq!(obj.size_bytes(), 64);
    }

    #[test]
    fn stream_ops_touch_every_element() {
        let obj = DataObject::new(0x8000, 8, 8);
        let mut b = TraceBuilder::new(0);
        b.stream_load(&obj);
        b.stream_store(&obj);
        let t = b.finish();
        assert_eq!(t.len(), 16);
        assert_eq!(t[0].data_addr().unwrap().raw(), 0x8000);
        assert_eq!(t[7].data_addr().unwrap().raw(), 0x8038);
    }

    #[test]
    fn pcs_advance_by_four() {
        let mut b = TraceBuilder::new(0x100);
        b.alu(3);
        let t = b.finish();
        assert_eq!(t[0].pc.raw(), 0x100);
        assert_eq!(t[1].pc.raw(), 0x104);
        assert_eq!(t[2].pc.raw(), 0x108);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn empty_object_panics() {
        DataObject::new(0, 0, 4);
    }
}
