//! Auxiliary single-kernel benchmarks.
//!
//! Experiment **E4** (average performance) and ablation **A1** (placement
//! policies) compare DET and RAND across more than one program; this module
//! packages small standalone kernels with fixed data layouts for that
//! purpose.

use crate::kernels;
use crate::trace::{DataObject, TraceBuilder};
use proxima_sim::{Inst, ValueClass};

/// A named standalone benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Streaming FIR filter over a 2 KB signal.
    Fir,
    /// 8×8 matrix multiply.
    Matmul,
    /// CRC over an 8 KB buffer.
    Crc,
    /// Calibration-table interpolation (FDIV-heavy).
    TableInterp,
    /// Vector normalization (FSQRT + FDIV).
    VecNorm,
    /// Pointer-chase-like strided reads across 32 KB (cache-hostile).
    StrideSweep,
}

impl Benchmark {
    /// All benchmarks in the suite.
    pub fn all() -> [Benchmark; 6] {
        [
            Benchmark::Fir,
            Benchmark::Matmul,
            Benchmark::Crc,
            Benchmark::TableInterp,
            Benchmark::VecNorm,
            Benchmark::StrideSweep,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Fir => "fir",
            Benchmark::Matmul => "matmul",
            Benchmark::Crc => "crc",
            Benchmark::TableInterp => "table-interp",
            Benchmark::VecNorm => "vec-norm",
            Benchmark::StrideSweep => "stride-sweep",
        }
    }

    /// Build the benchmark's instruction trace.
    pub fn trace(self) -> Vec<Inst> {
        let mut b = TraceBuilder::new(0x4010_0000);
        let base = 0x7000_0000u64;
        match self {
            Benchmark::Fir => {
                let input = DataObject::new(base, 512, 4);
                let coeffs = DataObject::new(base + 0x1000, 16, 4);
                let output = DataObject::new(base + 0x2000, 256, 4);
                kernels::fir_filter(&mut b, &input, &coeffs, &output, 16);
            }
            Benchmark::Matmul => {
                let a = DataObject::new(base, 64, 4);
                let m = DataObject::new(base + 0x1000, 64, 4);
                let c = DataObject::new(base + 0x2000, 64, 4);
                kernels::matmul(&mut b, &a, &m, &c, 8);
            }
            Benchmark::Crc => {
                let buf = DataObject::new(base, 2048, 4);
                kernels::crc(&mut b, &buf);
            }
            Benchmark::TableInterp => {
                let table = DataObject::new(base, 1024, 4);
                let queries = DataObject::new(base + 0x2000, 128, 4);
                let out = DataObject::new(base + 0x3000, 128, 4);
                kernels::table_interp(&mut b, &table, &queries, &out, ValueClass::Typical);
            }
            Benchmark::VecNorm => {
                let v = DataObject::new(base, 64, 4);
                let out = DataObject::new(base + 0x1000, 64, 4);
                // Repeat to give the benchmark some weight.
                b.loop_n(16, |b, _| {
                    kernels::vec_normalize(b, &v, &out, ValueClass::Typical);
                });
            }
            Benchmark::StrideSweep => {
                let buf = DataObject::new(base, 8192, 4); // 32 KB
                b.loop_n(4, |b, _| {
                    // Page-stride sweep: hostile to both cache and DTLB.
                    b.loop_n(64, |b, i| {
                        b.load(buf.elem(i * 1024));
                        b.alu(1);
                    });
                });
            }
        }
        b.finish()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{Platform, PlatformConfig};

    #[test]
    fn all_benchmarks_build_and_run() {
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        for bench in Benchmark::all() {
            let t = bench.trace();
            assert!(!t.is_empty(), "{bench}");
            let r = p.run(&t, 1);
            assert!(r.cycles as usize >= t.len(), "{bench}");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for bench in Benchmark::all() {
            assert_eq!(bench.trace(), bench.trace());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn stride_sweep_is_cache_hostile() {
        let mut p = Platform::new(PlatformConfig::deterministic());
        let sweep = p.run(&Benchmark::StrideSweep.trace(), 0);
        let crc = p.run(&Benchmark::Crc.trace(), 0);
        let sweep_miss = sweep.stats.dl1.1 as f64 / (sweep.stats.dl1.0 + sweep.stats.dl1.1) as f64;
        let crc_miss = crc.stats.dl1.1 as f64 / (crc.stats.dl1.0 + crc.stats.dl1.1) as f64;
        assert!(
            sweep_miss > crc_miss,
            "sweep {sweep_miss} vs crc {crc_miss}"
        );
    }
}
