//! A second space case study: a synthetic Attitude and Orbit Control
//! System (AOCS) application.
//!
//! Where the TVCA is a tight closed-loop actuator controller, an AOCS is
//! the spacecraft's attitude brain: quaternion kinematics, a Kalman-style
//! state estimator, star-tracker catalogue matching and wheel-command
//! generation. It stresses the platform differently — bigger data tables
//! (the star catalogue), longer matrix chains (the covariance update) and
//! more FSQRT (quaternion normalization) — so reproducing the paper's
//! claims on it demonstrates that the MBPTA result is not a TVCA
//! idiosyncrasy (experiment **E5**).
//!
//! Structure (one major cycle):
//!
//! 1. **gyro propagation** — quaternion integration + normalization;
//! 2. **star-tracker update** (every cycle in `Tracking`, twice in
//!    `Acquisition`) — catalogue window search + attitude correction;
//! 3. **estimator** — 6×6 covariance propagation and gain computation;
//! 4. **wheel commands** — torque distribution with divide-based scaling.
//!
//! Paths: [`AocsMode::Tracking`] (nominal), [`AocsMode::Acquisition`]
//! (double star processing, worst-class divides) and [`AocsMode::Safe`]
//! (sun-pointing fallback, shorter).

use crate::kernels;
use crate::trace::{DataObject, TraceBuilder};
use proxima_prng::{RandomSource, SplitMix64};
use proxima_sim::{Inst, ValueClass};

/// Operating mode of the AOCS — its execution paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AocsMode {
    /// Fine attitude tracking (nominal).
    #[default]
    Tracking,
    /// Attitude acquisition: extra star-tracker processing, worst-case
    /// divide operands.
    Acquisition,
    /// Safe mode: sun-pointing fallback (shortest path).
    Safe,
}

impl AocsMode {
    /// All execution paths.
    pub fn all() -> [AocsMode; 3] {
        [AocsMode::Tracking, AocsMode::Acquisition, AocsMode::Safe]
    }
}

impl std::fmt::Display for AocsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AocsMode::Tracking => "tracking",
            AocsMode::Acquisition => "acquisition",
            AocsMode::Safe => "safe",
        })
    }
}

/// AOCS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AocsConfig {
    /// Link-time layout identifier (same semantics as the TVCA's).
    pub layout_seed: u64,
    /// Star catalogue entries (default 4096 → a 16 KB table, filling the
    /// DL1: catalogue lines occupy every set, so the other objects always
    /// contend for ways — the cache pressure a real catalogue search has).
    pub catalogue_len: u64,
}

impl Default for AocsConfig {
    fn default() -> Self {
        AocsConfig {
            layout_seed: 0,
            catalogue_len: 4096,
        }
    }
}

/// Code segment bases.
const CODE_GYRO: u64 = 0x4800_0000;
const CODE_STAR: u64 = 0x4800_4000;
const CODE_EST: u64 = 0x4800_8000;
const CODE_WHEEL: u64 = 0x4800_C000;
/// Data segment base (separate from the TVCA's).
const DATA_BASE: u64 = 0x6800_0000;

/// The synthetic AOCS application.
///
/// # Examples
///
/// ```
/// use proxima_workload::aocs::{Aocs, AocsConfig, AocsMode};
///
/// let aocs = Aocs::new(AocsConfig::default());
/// let tracking = aocs.trace(AocsMode::Tracking);
/// let safe = aocs.trace(AocsMode::Safe);
/// assert!(tracking.len() > safe.len());
/// ```
#[derive(Debug, Clone)]
pub struct Aocs {
    config: AocsConfig,
    quat: DataObject,
    gyro_raw: DataObject,
    catalogue: DataObject,
    measurements: DataObject,
    covariance: DataObject,
    gain: DataObject,
    state: DataObject,
    wheel_cmd: DataObject,
    sun_vector: DataObject,
}

impl Aocs {
    /// Instantiate the application.
    pub fn new(config: AocsConfig) -> Self {
        // Window-aligned objects with a layout-seed stagger, as in the TVCA.
        let mut cursor = DATA_BASE;
        let mut obj_index = 0u64;
        let mut place = |len: u64, elem: u64| {
            let window = cursor.next_multiple_of(4096);
            let pad_lines = SplitMix64::new(config.layout_seed ^ obj_index.wrapping_mul(0x51ED))
                .next_u64()
                % 64;
            obj_index += 1;
            let base = window + pad_lines * 32;
            cursor = base + len * elem;
            DataObject::new(base, len, elem)
        };
        Aocs {
            quat: place(4, 4),
            gyro_raw: place(192, 4),
            catalogue: place(config.catalogue_len, 4),
            measurements: place(64, 4),
            covariance: place(36, 4),
            gain: place(36, 4),
            state: place(12, 4),
            wheel_cmd: place(8, 4),
            sun_vector: place(3, 4),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AocsConfig {
        &self.config
    }

    /// The enumerable execution paths.
    pub fn paths(&self) -> Vec<AocsMode> {
        AocsMode::all().to_vec()
    }

    /// Emit the instruction trace for `mode`: four consecutive control
    /// cycles, so estimator state evicted by catalogue traffic in one
    /// cycle is re-fetched in the next — the interleaved-reuse pattern
    /// whose cost depends on (randomized) placement.
    pub fn trace(&self, mode: AocsMode) -> Vec<Inst> {
        let mut b = TraceBuilder::new(CODE_GYRO);
        let class = if mode == AocsMode::Acquisition {
            ValueClass::Worst
        } else {
            ValueClass::Typical
        };

        b.loop_n(4, |b, _cycle| {
            self.gyro_propagation(b, class);
            match mode {
                AocsMode::Tracking => {
                    self.star_update(b, class);
                    self.estimator(b);
                    self.wheel_commands(b, class);
                }
                AocsMode::Acquisition => {
                    // Acquisition processes two star frames per cycle.
                    self.star_update(b, class);
                    self.star_update(b, class);
                    self.estimator(b);
                    self.wheel_commands(b, class);
                }
                AocsMode::Safe => {
                    // Sun-pointing fallback: no star processing.
                    b.call(CODE_WHEEL, |b| {
                        b.stream_load(&self.sun_vector);
                        kernels::vec_normalize(b, &self.sun_vector, &self.wheel_cmd, class);
                        b.loop_n(8, |b, i| {
                            b.load(self.wheel_cmd.elem(i));
                            b.alu(2);
                            b.store(self.wheel_cmd.elem(i));
                        });
                    });
                }
            }
        });
        b.finish()
    }

    /// Quaternion integration from gyro increments + normalization.
    fn gyro_propagation(&self, b: &mut TraceBuilder, class: ValueClass) {
        b.call(CODE_GYRO, |b| {
            b.stream_load(&self.gyro_raw);
            // Quaternion kinematics: 16 mul-adds per integration step.
            b.loop_n(16, |b, _| {
                b.load(self.quat.elem(0));
                b.fmul();
                b.fadd();
            });
            // Renormalize: the FSQRT at the heart of quaternion hygiene.
            kernels::vec_normalize(b, &self.quat, &self.quat, class);
        });
    }

    /// Star-tracker measurement processing: catalogue window search +
    /// attitude correction.
    fn star_update(&self, b: &mut TraceBuilder, class: ValueClass) {
        b.call(CODE_STAR, |b| {
            b.stream_load(&self.measurements);
            // Catalogue search: strided probes over the (large) table —
            // binary-search-like access pattern per measured star. The
            // probe sequence spreads across the whole catalogue so the
            // search churns many cache lines per frame.
            let n = self.catalogue.len();
            b.loop_n(32, |b, i| {
                let mut span = n / 2;
                let mut idx = (i.wrapping_mul(2654435761)) % n;
                while span > 1 {
                    b.load(self.catalogue.elem(idx));
                    b.alu(3); // compare magnitude/position
                    b.branch(i % 2 == 0);
                    span /= 2;
                    idx = (idx + span + i * 97) % n;
                }
            });
            // Attitude correction via table interpolation.
            kernels::table_interp(b, &self.catalogue, &self.measurements, &self.state, class);
        });
    }

    /// Covariance propagation and gain computation (6×6 chains).
    fn estimator(&self, b: &mut TraceBuilder) {
        b.call(CODE_EST, |b| {
            kernels::matmul(b, &self.covariance, &self.gain, &self.covariance, 6);
            kernels::pid_step(b, &self.state, &self.measurements, &self.gain, &self.state);
        });
    }

    /// Wheel torque distribution (divide-based scaling per wheel).
    fn wheel_commands(&self, b: &mut TraceBuilder, class: ValueClass) {
        b.call(CODE_WHEEL, |b| {
            b.loop_n(8, |b, i| {
                b.load(self.state.elem(i));
                b.fmul();
                b.fdiv(class); // torque scaling
                b.store(self.wheel_cmd.elem(i));
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_sim::{InstKind, Platform, PlatformConfig};

    #[test]
    fn traces_deterministic_per_mode() {
        let a = Aocs::new(AocsConfig::default());
        for mode in AocsMode::all() {
            assert_eq!(a.trace(mode), a.trace(mode), "{mode}");
        }
    }

    #[test]
    fn path_ordering_by_work() {
        let a = Aocs::new(AocsConfig::default());
        let len = |m| a.trace(m).len();
        assert!(len(AocsMode::Safe) < len(AocsMode::Tracking));
        assert!(len(AocsMode::Tracking) < len(AocsMode::Acquisition));
    }

    #[test]
    fn acquisition_uses_worst_class() {
        let a = Aocs::new(AocsConfig::default());
        let has_worst = |m: AocsMode| {
            a.trace(m).iter().any(|i| {
                matches!(
                    i.kind,
                    InstKind::FpDiv(ValueClass::Worst) | InstKind::FpSqrt(ValueClass::Worst)
                )
            })
        };
        assert!(!has_worst(AocsMode::Tracking));
        assert!(has_worst(AocsMode::Acquisition));
    }

    #[test]
    fn catalogue_spans_multiple_windows() {
        let a = Aocs::new(AocsConfig::default());
        // 4096 × 4 B = 16 KB = at least 4 alignment windows.
        let t = a.trace(AocsMode::Tracking);
        let catalogue_windows: std::collections::HashSet<u64> = t
            .iter()
            .filter_map(|i| i.data_addr())
            .filter(|d| {
                // The catalogue is the only multi-KB object.
                d.raw() >= DATA_BASE && d.raw() < DATA_BASE + 0x10_0000
            })
            .map(|d| d.raw() / 4096)
            .collect();
        assert!(catalogue_windows.len() >= 4, "{}", catalogue_windows.len());
    }

    #[test]
    fn jitters_on_rand_platform() {
        let a = Aocs::new(AocsConfig::default());
        let trace = a.trace(AocsMode::Tracking);
        let mut p = Platform::new(PlatformConfig::mbpta_compliant());
        let times: std::collections::HashSet<u64> =
            (0..10).map(|s| p.run(&trace, s).cycles).collect();
        assert!(times.len() > 1);
    }

    #[test]
    fn layout_seed_moves_data() {
        let a = Aocs::new(AocsConfig {
            layout_seed: 0,
            ..AocsConfig::default()
        });
        let b = Aocs::new(AocsConfig {
            layout_seed: 5,
            ..AocsConfig::default()
        });
        let ta = a.trace(AocsMode::Tracking);
        let tb = b.trace(AocsMode::Tracking);
        assert_eq!(ta.len(), tb.len());
        assert!(ta
            .iter()
            .zip(&tb)
            .any(|(x, y)| x.data_addr() != y.data_addr()));
    }

    #[test]
    fn code_and_data_in_own_regions() {
        let a = Aocs::new(AocsConfig::default());
        for mode in AocsMode::all() {
            for inst in a.trace(mode) {
                assert!(inst.pc.raw() >= CODE_GYRO && inst.pc.raw() < CODE_GYRO + 0x10_0000);
                if let Some(d) = inst.data_addr() {
                    assert!(d.raw() >= DATA_BASE);
                }
            }
        }
    }
}
