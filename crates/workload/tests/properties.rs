//! Property-based tests for the trace builder and workloads.

use proptest::prelude::*;
use proxima_sim::InstKind;
use proxima_workload::trace::{DataObject, TraceBuilder};
use proxima_workload::tvca::{ControlMode, Scale, Tvca, TvcaConfig};

proptest! {
    /// `loop_n` emits exactly iters × (body + 1) instructions, reuses PCs
    /// across iterations, and the final back-edge is the only untaken one.
    #[test]
    fn loop_structure(iters in 1u64..50, body_len in 1u64..20) {
        let mut b = TraceBuilder::new(0x1000);
        b.loop_n(iters, |b, _| b.alu(body_len));
        let t = b.finish();
        prop_assert_eq!(t.len() as u64, iters * (body_len + 1));
        // PC reuse between iterations.
        if iters > 1 {
            prop_assert_eq!(t[0].pc, t[(body_len + 1) as usize].pc);
        }
        let untaken = t
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Branch { taken: false }))
            .count();
        prop_assert_eq!(untaken, 1);
    }

    /// `if_else` joins at the same PC regardless of the branch direction
    /// and arm lengths.
    #[test]
    fn if_else_join_pc(then_len in 0u64..20, else_len in 0u64..20) {
        let build = |take_then: bool| {
            let mut b = TraceBuilder::new(0x2000);
            b.if_else(
                take_then,
                then_len,
                else_len,
                |b| b.alu(then_len),
                |b| b.alu(else_len),
            );
            b.alu(1);
            let t = b.finish();
            t.last().unwrap().pc
        };
        prop_assert_eq!(build(true), build(false));
    }

    /// DataObject element addressing stays within the object and respects
    /// the wrap-around semantics.
    #[test]
    fn object_addressing(base in 0u64..(1 << 40), len in 1u64..10_000, elem in 1u64..16, idx in any::<u64>()) {
        let obj = DataObject::new(base, len, elem);
        let a = obj.elem(idx).raw();
        prop_assert!(a >= base);
        prop_assert!(a < base + len * elem);
        prop_assert_eq!((a - base) % elem, 0);
    }

    /// Every TVCA path trace is deterministic and non-trivial at both
    /// scales, and data addresses never collide with code addresses.
    #[test]
    fn tvca_traces_well_formed(layout_seed in any::<u64>(), mode_idx in 0usize..4, small in any::<bool>()) {
        let mode = ControlMode::all()[mode_idx];
        let tvca = Tvca::new(TvcaConfig {
            scale: if small { Scale::Small } else { Scale::Full },
            layout_seed,
        });
        let t1 = tvca.trace(mode);
        let t2 = tvca.trace(mode);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(t1.len() > 100);
        for inst in &t1 {
            prop_assert!(inst.pc.raw() >= 0x4000_0000 && inst.pc.raw() < 0x5000_0000);
            if let Some(d) = inst.data_addr() {
                prop_assert!(d.raw() >= 0x6000_0000, "data below the data segment: {d}");
            }
        }
    }

    /// The call primitive always returns the cursor to the call site + 4.
    #[test]
    fn call_returns(callee in 0x8000u64..0x10_0000, body in 0u64..30) {
        let mut b = TraceBuilder::new(0x3000);
        b.alu(2);
        let before = b.pc();
        b.call(callee & !3, |b| b.alu(body));
        prop_assert_eq!(b.pc(), before + 4);
    }
}
