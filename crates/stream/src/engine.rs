//! The streaming [`Engine`] implementation: plugs [`StreamAnalyzer`]
//! into the multi-channel session core of `proxima-mbpta`.
//!
//! * [`StreamEngine`] adapts one analyzer to the
//!   [`Engine`] contract, projecting its
//!   [`PwcetSnapshot`]s into the session's
//!   [`EngineEstimate`] vocabulary
//!   and its final state into a [`Verdict`].
//! * [`StreamFactory`] creates one engine per session channel, all
//!   sharing one [`StreamConfig`].
//! * [`SessionStreamExt`] hangs `build_stream` / `build_stream_with` off
//!   [`SessionBuilder`], mirroring how the deprecated
//!   `PipelineStreamExt` extended `Pipeline`.
//!
//! The adapter adds nothing on the measurement path, so a single-channel
//! streaming session is **bit-identical** to driving a bare
//! [`StreamAnalyzer`] over the same feed (asserted by the session
//! acceptance tests).

use proxima_mbpta::engine::{
    fit_from_maxima, Engine, EngineEstimate, EngineFactory, EngineKind, IidEvidence,
    ObservationSummary, Provenance, Verdict,
};
use proxima_mbpta::session::{AnalysisSession, ChannelId};
use proxima_mbpta::{MbptaError, SessionBuilder};

use crate::analyzer::{PwcetSnapshot, StreamAnalyzer, StreamConfig};
use crate::monitor::{IidHealth, IidStatus};

/// Project the rolling monitor's health into the session-level i.i.d.
/// vocabulary.
pub(crate) fn iid_evidence(health: IidHealth) -> IidEvidence {
    IidEvidence::Rolling {
        healthy: match health.status {
            IidStatus::Warming => None,
            IidStatus::Healthy => Some(true),
            IidStatus::Suspect => Some(false),
        },
        ljung_box_p: health.ljung_box_p,
        runs_p: health.runs_p,
        window_len: health.window_len,
    }
}

/// Finish `analyzer` and assemble the session [`Verdict`] every
/// stream-backed engine shares: final refit, fit evidence recomputed
/// from the maxima buffer, sketch-exact summary, rolling i.i.d.
/// evidence. `provenance.converged` carries the analyzer's online
/// convergence state when `online_convergence` is set (a federated fold
/// has no online history and passes `false` → `None`).
pub(crate) fn finish_into_verdict(
    analyzer: &mut StreamAnalyzer,
    engine: EngineKind,
    online_convergence: bool,
) -> Result<Verdict, MbptaError> {
    let snapshot = analyzer.finish()?;
    let fit = fit_from_maxima(analyzer.maxima(), analyzer.config().block_size)?;
    Ok(Verdict {
        summary: ObservationSummary {
            n: snapshot.n,
            high_watermark: snapshot.high_watermark,
            mean: analyzer.sketch().mean(),
            detail: None,
        },
        iid: iid_evidence(analyzer.monitor().health()),
        fit,
        pwcet: snapshot.distribution,
        provenance: Provenance {
            engine,
            n: snapshot.n,
            converged: online_convergence.then_some(snapshot.converged),
            channel: None,
        },
    })
}

/// Project an analyzer snapshot into the session estimate vocabulary.
fn estimate_from_snapshot(snap: &PwcetSnapshot) -> EngineEstimate {
    EngineEstimate {
        n: snap.n,
        blocks: Some(snap.blocks),
        pwcet: snap.pwcet,
        distribution: snap.distribution,
        ci: snap.ci,
        convergence_delta: snap.convergence_delta,
        iid: Some(iid_evidence(snap.iid_status)),
        converged: snap.converged,
        high_watermark: snap.high_watermark,
    }
}

/// A bounded-memory streaming engine for one session channel: wraps a
/// [`StreamAnalyzer`] and speaks the session's [`Engine`] contract.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    analyzer: StreamAnalyzer,
}

impl StreamEngine {
    /// An engine running `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: StreamConfig) -> Result<Self, MbptaError> {
        Ok(StreamEngine {
            analyzer: StreamAnalyzer::new(config)?,
        })
    }

    /// The wrapped analyzer (sketch, monitor and maxima access).
    pub fn analyzer(&self) -> &StreamAnalyzer {
        &self.analyzer
    }

    /// Fold a **sealed federated checkpoint blob**
    /// ([`save_federated`](crate::persist::save_federated) format) into a
    /// live stream engine — the coordinator-side ingestion surface of
    /// the data-never-leaves-the-shard model: remote shards ship sealed
    /// analyzer state, never raw measurements.
    ///
    /// The blob's checksum/version are verified by
    /// [`load_federated`](crate::persist::load_federated), its stream
    /// configuration is checked against `expected` (a blob analysed
    /// under different settings must not fold silently), and the shards
    /// are folded with [`FederatedAnalyzer::merged`] — so the result is
    /// bit-identical at **any** shard count. The returned engine keeps
    /// accepting measurements; [`Engine::save_state`] on it yields
    /// engine-state bytes a session can
    /// [adopt](proxima_mbpta::session::AnalysisSession::adopt_channel).
    ///
    /// [`FederatedAnalyzer::merged`]: crate::federated::FederatedAnalyzer::merged
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Checkpoint`] for truncated, corrupted,
    /// wrong-magic/version or configuration-mismatched blobs.
    pub fn from_federated_blob(bytes: &[u8], expected: &StreamConfig) -> Result<Self, MbptaError> {
        let fed = crate::persist::load_federated(bytes)?;
        if fed.config().stream != *expected {
            return Err(MbptaError::checkpoint(
                "federated blob's stream configuration does not match the coordinator's",
            ));
        }
        Ok(StreamEngine {
            analyzer: fed.merged()?,
        })
    }
}

impl Engine for StreamEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Stream
    }

    fn push(&mut self, x: f64) -> Result<(), MbptaError> {
        // Snapshots are cached inside the analyzer; the session polls
        // them through `estimate`.
        self.analyzer.push(x).map(|_| ())
    }

    fn push_batch(&mut self, xs: &[f64]) -> Result<(), MbptaError> {
        self.analyzer.push_batch(xs).map(|_| ())
    }

    fn len(&self) -> usize {
        self.analyzer.len()
    }

    fn estimate(&mut self) -> Option<EngineEstimate> {
        self.analyzer.last_snapshot().map(estimate_from_snapshot)
    }

    fn quiet_horizon(&self) -> Option<usize> {
        // The cached snapshot and the convergence latch only move when a
        // refit checkpoint completes; everything strictly before the
        // next one is a quiet stretch.
        Some(self.analyzer.measurements_until_refit().saturating_sub(1))
    }

    fn converged(&self) -> bool {
        self.analyzer.converged()
    }

    fn finish(&mut self) -> Result<Verdict, MbptaError> {
        finish_into_verdict(&mut self.analyzer, EngineKind::Stream, true)
    }

    fn save_state(&self) -> Result<Vec<u8>, MbptaError> {
        use proxima_mbpta::persist::{seal, Encode, Writer, MAGIC_ENGINE};
        let mut w = Writer::new();
        EngineKind::Stream.encode(&mut w);
        self.analyzer.encode(&mut w);
        Ok(seal(MAGIC_ENGINE, w.into_bytes()))
    }
}

/// Creates a [`StreamEngine`] per session channel, all sharing one
/// [`StreamConfig`]. Every channel gets the same bootstrap seed — each
/// channel resamples its own maxima, so the intervals stay independent
/// and a single-channel session stays bit-identical to a bare analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFactory {
    config: StreamConfig,
}

impl StreamFactory {
    /// A factory for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: StreamConfig) -> Result<Self, MbptaError> {
        config.validate()?;
        Ok(StreamFactory { config })
    }

    /// The shared streaming configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }
}

impl EngineFactory for StreamFactory {
    type Engine = StreamEngine;

    fn create(&self, _channel: &ChannelId) -> Result<StreamEngine, MbptaError> {
        StreamEngine::new(self.config.clone())
    }

    fn restore(&self, _channel: &ChannelId, state: &[u8]) -> Result<StreamEngine, MbptaError> {
        use proxima_mbpta::persist::{unseal, Decode, Reader, MAGIC_ENGINE};
        let payload = unseal(state, MAGIC_ENGINE)?;
        let mut r = Reader::new(payload);
        let kind = EngineKind::decode(&mut r)?;
        if !matches!(kind, EngineKind::Stream) {
            return Err(MbptaError::checkpoint(format!(
                "checkpointed engine is `{kind}`, session expects `stream`"
            )));
        }
        let analyzer = StreamAnalyzer::decode(&mut r)?;
        r.finish()?;
        if *analyzer.config() != self.config {
            return Err(MbptaError::checkpoint(
                "checkpointed stream engine configuration does not match the session's",
            ));
        }
        Ok(StreamEngine { analyzer })
    }
}

/// Extension trait hanging the streaming session builders off
/// [`SessionBuilder`] (the batch crate cannot depend on this one; through
/// the facade prelude these read as builder methods).
pub trait SessionStreamExt: Sized {
    /// Build a session running one bounded-memory streaming engine per
    /// channel, deriving the [`StreamConfig`] from the builder's batch
    /// configuration ([`StreamConfig::from_mbpta`]) and its target
    /// cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the derived configuration
    /// is invalid.
    fn build_stream(self) -> Result<AnalysisSession<StreamFactory>, MbptaError>;

    /// Build a streaming session with explicit streaming knobs.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if `config` is invalid.
    fn build_stream_with(
        self,
        config: StreamConfig,
    ) -> Result<AnalysisSession<StreamFactory>, MbptaError>;
}

impl SessionStreamExt for SessionBuilder {
    fn build_stream(self) -> Result<AnalysisSession<StreamFactory>, MbptaError> {
        let config = StreamConfig {
            target_p: self.target_cutoff(),
            ..StreamConfig::from_mbpta(self.mbpta_config())
        };
        self.build_stream_with(config)
    }

    fn build_stream_with(
        self,
        config: StreamConfig,
    ) -> Result<AnalysisSession<StreamFactory>, MbptaError> {
        self.build_with(StreamFactory::new(config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_mbpta::session::Tagged;
    use proxima_mbpta::MbptaConfig;
    use rand::{Rng, SeedableRng};

    fn times(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    fn stream_config() -> StreamConfig {
        StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn single_channel_stream_session_is_bit_identical_to_bare_analyzer() {
        let data = times(3000, 1);

        let mut bare = StreamAnalyzer::new(stream_config()).unwrap();
        let bare_snaps = bare.extend(data.iter().copied()).unwrap();
        let bare_final = bare.finish().unwrap();

        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(1)
            .build_stream_with(stream_config())
            .unwrap();
        let mut session_snaps = Vec::new();
        for &x in &data {
            if let Some(s) = session.push(Tagged::new("only", x)).unwrap() {
                session_snaps.push(s);
            }
        }
        // The scheduler at period 1 re-emits exactly the analyzer's refit
        // snapshots: same count, same n, same pwcet bits.
        assert_eq!(session_snaps.len(), bare_snaps.len());
        for (s, b) in session_snaps.iter().zip(&bare_snaps) {
            assert_eq!(s.estimate.n, b.n);
            assert_eq!(s.estimate.pwcet, b.pwcet);
            assert_eq!(s.estimate.ci, b.ci);
        }
        let merged = session.merge();
        let verdict = merged.verdict("only").unwrap().as_ref().unwrap();
        assert_eq!(verdict.pwcet, bare_final.distribution);
        assert_eq!(
            verdict.budget_for(1e-12).unwrap(),
            bare_final.distribution.budget_for(1e-12).unwrap()
        );
        assert_eq!(verdict.summary.n, 3000);
        assert_eq!(verdict.provenance.engine, EngineKind::Stream);
        assert_eq!(verdict.provenance.converged, Some(bare_final.converged));
        assert_eq!(verdict.fit.gumbel, *bare_final.distribution.tail());
    }

    #[test]
    fn bad_value_quarantines_stream_channel() {
        let mut session = MbptaConfig::default()
            .session()
            .build_stream_with(stream_config())
            .unwrap();
        for &x in times(2000, 2).iter() {
            session.push(Tagged::new("good", x)).unwrap();
        }
        session.push(Tagged::new("bad", f64::NAN)).unwrap();
        session.push(Tagged::new("bad", 100.0)).unwrap(); // dropped
        let merged = session.merge();
        assert!(merged.verdict("good").unwrap().is_ok());
        let (id, err) = merged.failures().next().unwrap();
        assert_eq!(id.as_str(), "bad");
        assert!(matches!(err, MbptaError::Channel { .. }));
        assert_eq!(merged.channels()[1].dropped, 1);
    }

    #[test]
    fn stream_verdict_reports_rolling_iid() {
        let mut engine = StreamEngine::new(stream_config()).unwrap();
        for x in times(2000, 3) {
            engine.push(x).unwrap();
        }
        let verdict = engine.finish().unwrap();
        assert!(matches!(verdict.iid, IidEvidence::Rolling { .. }));
        assert!(verdict.iid.acceptable());
        assert!(verdict.summary.detail.is_none());
        assert!(verdict.summary.mean.is_some());
        assert!(verdict.fit.pot_cross_check.is_none());
        assert!(
            verdict.clone().into_report().is_none(),
            "stream verdicts have no batch view"
        );
    }

    #[test]
    fn builder_derives_stream_config_from_batch() {
        use proxima_mbpta::BlockSpec;
        let session = MbptaConfig {
            block: BlockSpec::Fixed(30),
            ..MbptaConfig::default()
        }
        .session()
        .target_p(1e-9)
        .build_stream()
        .unwrap();
        // Factory config is observable through a channel's engine.
        let mut session = session;
        {
            let mut ch = session.channel("probe").unwrap();
            ch.push(1.0);
        }
        let merged = session.merge();
        // Too little data: the channel fails, but with the derived knobs
        // (CampaignTooSmall mentions the 30-sized blocks × min_blocks).
        let (_, err) = merged.failures().next().unwrap();
        assert!(err.to_string().contains("campaign too small"));
    }

    #[test]
    fn invalid_stream_config_rejected_at_build() {
        let bad = StreamConfig {
            block_size: 0,
            ..StreamConfig::default()
        };
        assert!(MbptaConfig::default()
            .session()
            .build_stream_with(bad)
            .is_err());
    }
}
