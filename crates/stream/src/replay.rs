//! Measurement sources that feed a [`StreamAnalyzer`].
//!
//! Two sources cover the deployment shapes:
//!
//! * [`TraceReplay`] — run an instruction trace (built with
//!   [`proxima_workload::trace::TraceBuilder`] or taken from the TVCA) on
//!   a simulated MBPTA-compliant platform, one measurement per `next()`.
//!   Per-run seeds come from the master seed's SplitMix64 stream — the
//!   same seeds [`CampaignRunner`](proxima_mbpta::CampaignRunner) uses —
//!   so streaming a trace observes **exactly** the measurement vector a
//!   batch campaign with the same master seed produces.
//! * [`LineSource`] — parse the one-time-per-line interchange format
//!   (blank lines and `#` comments skipped) incrementally from any
//!   reader, without materializing the campaign first. Built on
//!   [`ByteLines`], the zero-copy line walker: lines are parsed as byte
//!   slices straight out of the reader's buffer, never copied into an
//!   intermediate `String`.
//!
//! [`StreamAnalyzer`]: crate::analyzer::StreamAnalyzer

use std::io::BufRead;
use std::sync::Arc;

use proxima_prng::SplitMix64;
use proxima_sim::{Inst, Platform, PlatformConfig};
use proxima_workload::tvca::{ControlMode, Tvca, TvcaConfig};

/// Replays a measurement campaign lazily: each `next()` is one fresh run
/// of the trace on the platform (flushed caches, new seed — the paper's
/// protocol), yielding its execution time in cycles.
///
/// # Examples
///
/// ```
/// use proxima_sim::{Inst, PlatformConfig};
/// use proxima_stream::replay::TraceReplay;
///
/// let trace: Vec<Inst> = (0..100)
///     .map(|i| Inst::load(0x100 + 4 * (i % 16), 0x10_0000 + 4096 * (i % 40)))
///     .collect();
/// let times: Vec<f64> =
///     TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, 50, 7).collect();
/// assert_eq!(times.len(), 50);
/// assert!(times.iter().all(|&t| t > 0.0));
/// ```
#[derive(Debug)]
pub struct TraceReplay {
    platform: Platform,
    /// Shared, not owned: shard replays of one campaign all read the
    /// same trace ([`Self::new_shared`]).
    trace: Arc<[Inst]>,
    master_seed: u64,
    next_run: u64,
    runs: u64,
}

impl TraceReplay {
    /// Replay `runs` executions of `trace` on a fresh platform built from
    /// `config`, seeding run `i` with the `i`-th element of
    /// `master_seed`'s SplitMix64 stream.
    pub fn new(config: PlatformConfig, trace: Vec<Inst>, runs: usize, master_seed: u64) -> Self {
        TraceReplay::new_shared(config, trace.into(), runs, master_seed)
    }

    /// [`Self::new`] over an already-shared trace — per-shard replays of
    /// one campaign clone the `Arc`, not the instructions.
    pub fn new_shared(
        config: PlatformConfig,
        trace: Arc<[Inst]>,
        runs: usize,
        master_seed: u64,
    ) -> Self {
        TraceReplay {
            platform: Platform::new(config),
            trace,
            master_seed,
            next_run: 0,
            runs: runs as u64,
        }
    }

    /// Convenience: replay a TVCA path on the MBPTA-compliant platform —
    /// the simulator-driven source of `mbpta stream --simulate`.
    pub fn tvca(mode: ControlMode, tvca_config: TvcaConfig, runs: usize, master_seed: u64) -> Self {
        let tvca = Tvca::new(tvca_config);
        TraceReplay::new(
            PlatformConfig::mbpta_compliant(),
            tvca.trace(mode),
            runs,
            master_seed,
        )
    }

    /// Start the replay at run `start` (0-based) instead of run 0,
    /// yielding runs `start..runs`. Seeds still come from the same
    /// master stream — `SplitMix64::stream_seed` is an O(1) random
    /// access — so shard replays over disjoint ranges reproduce exactly
    /// the runs a single full replay yields, without fast-forwarding.
    #[must_use]
    pub fn starting_at(mut self, start: u64) -> Self {
        self.next_run = start.min(self.runs);
        self
    }

    /// Runs already replayed.
    pub fn replayed(&self) -> u64 {
        self.next_run
    }

    /// Total runs this source will produce.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

impl Iterator for TraceReplay {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.next_run >= self.runs {
            return None;
        }
        let seed = SplitMix64::stream_seed(self.master_seed, self.next_run);
        self.next_run += 1;
        Some(self.platform.run(&self.trace, seed).cycles as f64)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.runs - self.next_run) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceReplay {}

/// Why a [`LineSource`] could not yield a measurement: transport failure
/// versus malformed data. Conflating the two would send an operator
/// debugging their rig's values when the pipe broke.
#[derive(Debug)]
pub enum LineSourceError {
    /// The underlying reader failed (disk fault, closed pipe, bad UTF-8).
    Io(std::io::Error),
    /// A non-blank, non-comment line did not parse as a number.
    Parse {
        /// 1-based line number in the feed (comments and blank lines
        /// counted), so a bad line in a million-line feed is locatable.
        line_no: u64,
        /// The offending line, whitespace-trimmed.
        line: String,
    },
}

impl std::fmt::Display for LineSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineSourceError::Io(e) => write!(f, "measurement stream read failed: {e}"),
            LineSourceError::Parse { line_no, line } => {
                write!(f, "unparsable measurement line {line_no}: `{line}`")
            }
        }
    }
}

impl std::error::Error for LineSourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LineSourceError::Io(e) => Some(e),
            LineSourceError::Parse { .. } => None,
        }
    }
}

/// Zero-copy line walker over any [`BufRead`]: hands each complete line
/// to a closure as a byte slice borrowed straight from the reader's
/// internal buffer — no intermediate `String` (or `Vec`) per line. A
/// small carry buffer is touched only when a line straddles a buffer
/// refill or the input ends without a trailing newline.
///
/// This is the ingestion path under [`LineSource`] and the CLI's tagged
/// feed; it is public so other line-oriented formats can reuse it.
///
/// # Examples
///
/// ```
/// use proxima_stream::replay::ByteLines;
///
/// let mut lines = ByteLines::new("a\nbb\nccc".as_bytes());
/// let mut lens = Vec::new();
/// while let Some(len) = lines.next_line(|_, bytes| bytes.len()).unwrap() {
///     lens.push(len);
/// }
/// assert_eq!(lens, vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct ByteLines<R> {
    reader: R,
    /// Spill-over for lines that straddle a `fill_buf` boundary; empty on
    /// the fast path.
    carry: Vec<u8>,
    line_no: u64,
}

impl<R: BufRead> ByteLines<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        ByteLines {
            reader,
            carry: Vec::new(),
            line_no: 0,
        }
    }

    /// Apply `f` to the next complete line — `(1-based line number, line
    /// bytes without the trailing newline)` — and return its result.
    /// `Ok(None)` means end of input. The slice is only valid inside the
    /// closure; copy out what must outlive the call.
    pub fn next_line<T>(&mut self, f: impl FnOnce(u64, &[u8]) -> T) -> std::io::Result<Option<T>> {
        loop {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                // EOF. A final line without a trailing newline sits in
                // the carry buffer.
                if self.carry.is_empty() {
                    return Ok(None);
                }
                self.line_no += 1;
                let out = f(self.line_no, &self.carry);
                self.carry.clear();
                return Ok(Some(out));
            }
            match buf.iter().position(|&b| b == b'\n') {
                None => {
                    let n = buf.len();
                    self.carry.extend_from_slice(buf);
                    self.reader.consume(n);
                }
                Some(pos) => {
                    self.line_no += 1;
                    let out = if self.carry.is_empty() {
                        f(self.line_no, &buf[..pos])
                    } else {
                        self.carry.extend_from_slice(&buf[..pos]);
                        let out = f(self.line_no, &self.carry);
                        self.carry.clear();
                        out
                    };
                    self.reader.consume(pos + 1);
                    return Ok(Some(out));
                }
            }
        }
    }
}

/// What one measurement line held, classified while its bytes are still
/// borrowed from the reader's buffer.
enum LineOutcome {
    /// Blank line or `#` comment.
    Skip,
    Value(f64),
    Bad(LineSourceError),
}

fn classify(line_no: u64, bytes: &[u8]) -> LineOutcome {
    let trimmed = bytes.trim_ascii();
    if trimmed.is_empty() || trimmed[0] == b'#' {
        return LineOutcome::Skip;
    }
    let Ok(text) = std::str::from_utf8(trimmed) else {
        // The previous String-based reader surfaced invalid UTF-8 as an
        // I/O error; keep the transport-vs-data split unchanged.
        return LineOutcome::Bad(LineSourceError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("stream did not contain valid UTF-8 (line {line_no})"),
        )));
    };
    match text.parse::<f64>() {
        Ok(v) => LineOutcome::Value(v),
        Err(_) => LineOutcome::Bad(LineSourceError::Parse {
            line_no,
            line: text.to_string(),
        }),
    }
}

/// Incremental reader of the one-time-per-line measurement format: yields
/// each parsed value as it is read, skipping blank lines and `#` comments.
/// Parsing is zero-copy — each line is read as bytes in place via
/// [`ByteLines`], with no intermediate `String` per line — so feeding a
/// million-line file allocates nothing on the per-measurement path.
///
/// # Examples
///
/// ```
/// use proxima_stream::replay::LineSource;
///
/// let data = "# cycles\n100\n105.5\n\n103\n";
/// let times: Result<Vec<f64>, _> = LineSource::new(data.as_bytes()).collect();
/// assert_eq!(times.unwrap(), vec![100.0, 105.5, 103.0]);
/// ```
///
/// A malformed line reports its position in the feed:
///
/// ```
/// use proxima_stream::replay::LineSource;
///
/// let err = LineSource::new("# header\n100\noops\n".as_bytes())
///     .collect::<Result<Vec<f64>, _>>()
///     .unwrap_err();
/// assert_eq!(err.to_string(), "unparsable measurement line 3: `oops`");
/// ```
#[derive(Debug)]
pub struct LineSource<R> {
    lines: ByteLines<R>,
}

impl<R: BufRead> LineSource<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        LineSource {
            lines: ByteLines::new(reader),
        }
    }
}

impl<R: BufRead> Iterator for LineSource<R> {
    type Item = Result<f64, LineSourceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.lines.next_line(classify) {
                Err(e) => return Some(Err(LineSourceError::Io(e))),
                Ok(None) => return None,
                Ok(Some(LineOutcome::Skip)) => continue,
                Ok(Some(LineOutcome::Value(v))) => return Some(Ok(v)),
                Ok(Some(LineOutcome::Bad(e))) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_mbpta::CampaignRunner;

    fn striding_loads(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::load(
                    0x100 + 4 * (i as u64 % 16),
                    0x10_0000 + 4096 * (i as u64 % 40),
                )
            })
            .collect()
    }

    #[test]
    fn replay_matches_campaign_runner_bit_for_bit() {
        // The replay source must observe the same measurement vector as a
        // batch campaign: same per-run SplitMix64 seeds, same platform
        // protocol.
        let trace = striding_loads(200);
        let runner = CampaignRunner::new(PlatformConfig::mbpta_compliant()).with_jobs(1);
        let batch = runner.run(&trace, 60, 99).unwrap();
        let streamed: Vec<f64> =
            TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, 60, 99).collect();
        assert_eq!(batch.times(), &streamed[..]);
    }

    #[test]
    fn replay_is_exact_size() {
        let replay = TraceReplay::new(PlatformConfig::mbpta_compliant(), striding_loads(50), 30, 1);
        assert_eq!(replay.len(), 30);
        assert_eq!(replay.runs(), 30);
        let times: Vec<f64> = replay.collect();
        assert_eq!(times.len(), 30);
    }

    #[test]
    fn offset_replay_reproduces_the_suffix_of_a_full_replay() {
        let trace = striding_loads(150);
        let full: Vec<f64> =
            TraceReplay::new(PlatformConfig::mbpta_compliant(), trace.clone(), 60, 42).collect();
        let suffix: Vec<f64> = TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, 60, 42)
            .starting_at(40)
            .collect();
        assert_eq!(&full[40..], &suffix[..]);
        // Clamped past the end: empty.
        let empty: Vec<f64> =
            TraceReplay::new(PlatformConfig::mbpta_compliant(), striding_loads(10), 5, 1)
                .starting_at(99)
                .collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn tvca_replay_produces_positive_times() {
        let times: Vec<f64> =
            TraceReplay::tvca(ControlMode::Nominal, TvcaConfig::default(), 20, 5).collect();
        assert_eq!(times.len(), 20);
        assert!(times.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn line_source_parses_and_skips() {
        let data = "# header\n\n1\n  2.5 \n# mid\n3\n";
        let vals: Result<Vec<f64>, _> = LineSource::new(data.as_bytes()).collect();
        assert_eq!(vals.unwrap(), vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn line_source_reports_garbage_with_the_offending_line() {
        let mut src = LineSource::new("1\nabc\n2\n".as_bytes());
        assert_eq!(src.next().unwrap().unwrap(), 1.0);
        let err = src.next().unwrap().unwrap_err();
        assert!(
            matches!(&err, LineSourceError::Parse { line_no: 2, line } if line == "abc"),
            "{err:?}"
        );
        assert_eq!(err.to_string(), "unparsable measurement line 2: `abc`");
        assert_eq!(src.next().unwrap().unwrap(), 2.0);
        assert!(src.next().is_none());
    }

    #[test]
    fn line_source_survives_lines_straddling_buffer_refills() {
        // A 4-byte BufRead buffer forces every multi-digit line through
        // the carry path; the parsed stream must be unchanged, and the
        // final unterminated line must still be yielded.
        let data = "# a long comment line\n123456\n\n7.25\n99999999";
        let tiny = std::io::BufReader::with_capacity(4, data.as_bytes());
        let vals: Result<Vec<f64>, _> = LineSource::new(tiny).collect();
        assert_eq!(vals.unwrap(), vec![123456.0, 7.25, 99999999.0]);
    }

    #[test]
    fn unterminated_final_line_parses_with_correct_line_number() {
        // The last line of a feed often arrives without a trailing
        // newline (truncated file, `printf` without `\n`, a pipe cut at
        // the writer). It must parse like any other line, and ByteLines
        // must hand the closure its true 1-based position.
        let data = "1\n2\n3.5";
        let vals: Result<Vec<f64>, _> = LineSource::new(data.as_bytes()).collect();
        assert_eq!(vals.unwrap(), vec![1.0, 2.0, 3.5]);

        let mut lines = ByteLines::new(data.as_bytes());
        let mut seen = Vec::new();
        while let Some(item) = lines
            .next_line(|no, bytes| (no, String::from_utf8_lossy(bytes).into_owned()))
            .unwrap()
        {
            seen.push(item);
        }
        assert_eq!(
            seen,
            vec![(1, "1".into()), (2, "2".into()), (3, "3.5".into())],
            "the unterminated final line is line 3, not 0 or 2"
        );
    }

    #[test]
    fn bad_unterminated_final_line_reports_its_line_number() {
        // A garbage final line without a trailing newline must surface
        // as a Parse error carrying the same 1-based line number the
        // terminated spelling would report.
        let err = LineSource::new("1\n2\nbogus".as_bytes())
            .collect::<Result<Vec<f64>, _>>()
            .unwrap_err();
        assert!(
            matches!(&err, LineSourceError::Parse { line_no: 3, line } if line == "bogus"),
            "{err:?}"
        );
        assert_eq!(err.to_string(), "unparsable measurement line 3: `bogus`");
    }

    #[test]
    fn bad_unterminated_final_line_straddling_refills_keeps_its_number() {
        // Same property when the final line crosses fill_buf boundaries:
        // a 4-byte buffer forces `bogus-value` through the carry path in
        // chunks, and EOF (not a newline) terminates it. The error must
        // still name line 4 and carry the reassembled text.
        let data = "# head\n10\n20\nbogus-value";
        let tiny = std::io::BufReader::with_capacity(4, data.as_bytes());
        let err = LineSource::new(tiny)
            .collect::<Result<Vec<f64>, _>>()
            .unwrap_err();
        assert!(
            matches!(&err, LineSourceError::Parse { line_no: 4, line } if line == "bogus-value"),
            "{err:?}"
        );
    }

    #[test]
    fn line_numbers_count_comments_and_blanks() {
        // Line 5 is the bad one: comment, value, blank, value, garbage.
        let data = "# h\n1\n\n2\nnope\n";
        let err = LineSource::new(data.as_bytes())
            .collect::<Result<Vec<f64>, _>>()
            .unwrap_err();
        assert!(
            matches!(&err, LineSourceError::Parse { line_no: 5, line } if line == "nope"),
            "{err:?}"
        );
    }

    #[test]
    fn byte_lines_walks_raw_lines_with_numbers() {
        let mut lines = ByteLines::new("a\n\nbb".as_bytes());
        let mut seen = Vec::new();
        while let Some(item) = lines
            .next_line(|no, bytes| (no, String::from_utf8_lossy(bytes).into_owned()))
            .unwrap()
        {
            seen.push(item);
        }
        assert_eq!(
            seen,
            vec![(1, "a".into()), (2, String::new()), (3, "bb".into())]
        );
    }

    #[test]
    fn line_source_distinguishes_io_failure() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut src = LineSource::new(std::io::BufReader::new(FailingReader));
        let err = src.next().unwrap().unwrap_err();
        assert!(matches!(err, LineSourceError::Io(_)));
        assert!(err.to_string().contains("disk on fire"));
    }
}
