//! Federated sharded streaming: independent per-shard analyzers whose
//! mergeable states fold into one verdict.
//!
//! At production scale one campaign's runs land on many shards — one per
//! measurement host, per thread, per trace partition — and no single
//! observer sees every measurement. The federated quantile-estimation
//! shape solves this without centralizing the raw stream: every shard
//! maintains its own bounded [`StreamAnalyzer`] state (quantile sketch,
//! rolling i.i.d. window, block-maxima buffer), and a coordinator folds
//! the shard states at finish time:
//!
//! * sketches merge with the additive `ε₁+ε₂` rank-error guarantee
//!   ([`QuantileSketch::merge`](crate::sketch::QuantileSketch::merge)) —
//!   at one common per-shard `ε` the union stays within `ε·n`;
//! * block-maxima buffers concatenate in shard order — with shard
//!   boundaries aligned to the block size (this module aligns them), the
//!   folded buffer is **bit-identical** to the single-stream buffer, so
//!   the folded Gumbel fit and pWCET are bit-identical too, at every
//!   shard count;
//! * rolling i.i.d. windows fold into exactly the single monitor's
//!   window ([`IidMonitor::merge`](crate::monitor::IidMonitor::merge)).
//!
//! [`FederatedAnalyzer`] manages the shards and the fold;
//! [`FederatedEngine`]/[`FederatedFactory`] plug it into the
//! multi-channel session core so a session channel is backed by shards
//! transparently (`mbpta session --shards N` is the CLI form). Shards are
//! fed **contiguous run ranges**: shard `s` owns measurements
//! `[s·L, (s+1)·L)` (the last shard also takes any overflow), matching
//! how a real campaign splits its run indices across hosts — and because
//! per-run seeds come from the master seed's SplitMix64 stream (O(1)
//! random access), a shard can replay its range independently without
//! fast-forwarding through anyone else's ([`FederatedAnalyzer::ingest_trace`]).

use proxima_mbpta::engine::{Engine, EngineEstimate, EngineFactory, EngineKind, Verdict};
use proxima_mbpta::session::{AnalysisSession, ChannelId};
use proxima_mbpta::{MbptaError, SessionBuilder};
use proxima_sim::{Inst, PlatformConfig};

use crate::analyzer::{PwcetSnapshot, StreamAnalyzer, StreamConfig};
use crate::engine::finish_into_verdict;
use crate::replay::TraceReplay;

/// Blocks per shard when [`FederatedConfig::shard_len`] is left at 0.
const DEFAULT_SHARD_BLOCKS: usize = 100;

/// Configuration of a federated (sharded) streaming analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedConfig {
    /// The per-shard streaming configuration (every shard runs the same
    /// one — merging requires it).
    pub stream: StreamConfig,
    /// Number of independent shards (≥ 1).
    pub shards: usize,
    /// Measurements routed to each shard before moving to the next;
    /// rounded **up** to a multiple of the block size so every shard
    /// boundary is a block boundary (`0` = 100 blocks). The last shard
    /// absorbs any overflow beyond `shards × shard_len`.
    pub shard_len: usize,
}

impl FederatedConfig {
    /// A federated configuration over `shards` shards of `stream`, with
    /// shard length chosen automatically.
    pub fn new(stream: StreamConfig, shards: usize) -> Self {
        FederatedConfig {
            stream,
            shards,
            shard_len: 0,
        }
    }

    /// Balance `total` expected measurements across the shards: the
    /// shard length becomes `⌈total / shards⌉` rounded up to a block
    /// multiple, so every shard gets a near-equal contiguous range.
    #[must_use]
    pub fn balanced_for(mut self, total: usize) -> Self {
        self.shard_len = total.div_ceil(self.shards.max(1));
        self
    }

    /// The effective (block-aligned) shard length.
    pub fn effective_shard_len(&self) -> usize {
        let block = self.stream.block_size.max(1);
        let len = if self.shard_len == 0 {
            DEFAULT_SHARD_BLOCKS * block
        } else {
            self.shard_len
        };
        len.div_ceil(block) * block
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the per-shard stream
    /// configuration is invalid or `shards` is zero.
    pub fn validate(&self) -> Result<(), MbptaError> {
        self.stream.validate()?;
        if self.shards == 0 {
            return Err(MbptaError::InvalidConfig {
                what: "federated analysis needs at least one shard",
            });
        }
        Ok(())
    }
}

/// A sharded streaming analyzer: N independent [`StreamAnalyzer`]s over
/// contiguous ranges of one measurement stream, folded on demand.
///
/// # Examples
///
/// ```
/// use proxima_stream::{FederatedAnalyzer, FederatedConfig, StreamAnalyzer, StreamConfig};
/// use rand::{Rng, SeedableRng};
///
/// let stream = StreamConfig {
///     block_size: 25,
///     refit_every_blocks: 4,
///     ..StreamConfig::default()
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let data: Vec<f64> = (0..4000)
///     .map(|_| 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0)
///     .collect();
///
/// let config = FederatedConfig::new(stream.clone(), 4).balanced_for(data.len());
/// let mut federated = FederatedAnalyzer::new(config)?;
/// for &x in &data {
///     federated.push(x)?;
/// }
/// let sharded = federated.finish()?;
///
/// let mut single = StreamAnalyzer::new(stream)?;
/// single.extend(data.iter().copied())?;
/// let unsharded = single.finish()?;
/// // Aligned shard boundaries make the fold exact, not just close.
/// assert_eq!(sharded.pwcet, unsharded.pwcet);
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FederatedAnalyzer {
    pub(crate) config: FederatedConfig,
    pub(crate) shards: Vec<StreamAnalyzer>,
    pub(crate) shard_len: usize,
    pub(crate) n: usize,
}

impl FederatedAnalyzer {
    /// Create the per-shard analyzers for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: FederatedConfig) -> Result<Self, MbptaError> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|_| StreamAnalyzer::new(config.stream.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let shard_len = config.effective_shard_len();
        Ok(FederatedAnalyzer {
            config,
            shards,
            shard_len,
            n: 0,
        })
    }

    /// The federated configuration.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }

    /// The per-shard analyzers, in shard (= stream) order.
    pub fn shards(&self) -> &[StreamAnalyzer] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The effective (block-aligned) measurements-per-shard length.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Measurements ingested across all shards.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` before the first measurement.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact high watermark across all shards, if any measurement
    /// arrived.
    pub fn high_watermark(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(StreamAnalyzer::high_watermark)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// `true` once every shard that received data has converged (and at
    /// least one has). Convergence of the *fold* is not tracked online —
    /// shards stream independently; per-shard stability is the federated
    /// proxy.
    ///
    /// **Caveat:** a shard can only converge on the data it sees. With a
    /// shard length below the per-shard convergence horizon
    /// (`min_blocks + stable_snapshots × refit_every_blocks` blocks),
    /// shards never converge and this stays `false` — so
    /// convergence-gated stopping depends on the shard geometry, unlike
    /// the fold itself. The CLI therefore rejects `--shards` together
    /// with `--stop-on-converged`; size `shard_len` generously if you
    /// gate on this from the library.
    pub fn converged(&self) -> bool {
        let mut fed = 0;
        for shard in &self.shards {
            if shard.is_empty() {
                continue;
            }
            if !shard.converged() {
                return false;
            }
            fed += 1;
        }
        fed > 0
    }

    /// The shard the next measurement is routed to.
    fn active_shard(&self) -> usize {
        (self.n / self.shard_len).min(self.shards.len() - 1)
    }

    /// Measurements this analyzer can ingest before its observable
    /// outputs ([`converged`](Self::converged), per-shard snapshots) can
    /// next change: strictly before the active shard's next refit
    /// checkpoint, and never across a shard handoff (a freshly fed shard
    /// flips the convergence verdict).
    pub(crate) fn quiet_horizon(&self) -> usize {
        let s = self.active_shard();
        let shard_h = self.shards[s].measurements_until_refit().saturating_sub(1);
        if s == self.shards.len() - 1 {
            shard_h
        } else {
            shard_h.min((s + 1) * self.shard_len - self.n)
        }
    }

    /// Ingest one measurement into its shard. Returns the shard's
    /// snapshot when this measurement completed one of its refit
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// Same as [`StreamAnalyzer::push`].
    pub fn push(&mut self, x: f64) -> Result<Option<PwcetSnapshot>, MbptaError> {
        let s = self.active_shard();
        let snap = self.shards[s].push(x)?;
        self.n += 1;
        Ok(snap)
    }

    /// Bulk-ingest a slice of measurements, splitting it at the shard
    /// boundaries so each contiguous piece takes its shard's amortized
    /// [`StreamAnalyzer::push_batch`] path. Snapshots come back in the
    /// order the itemized loop would have emitted them, and the analyzer
    /// state — every shard — is bit-identical to it at every batch split.
    ///
    /// # Errors
    ///
    /// Same as [`Self::push`]: ingestion stops at the first non-finite or
    /// negative value, with everything before it ingested.
    pub fn push_batch(&mut self, xs: &[f64]) -> Result<Vec<PwcetSnapshot>, MbptaError> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < xs.len() {
            let s = self.active_shard();
            let take = if s == self.shards.len() - 1 {
                xs.len() - i
            } else {
                ((s + 1) * self.shard_len - self.n).min(xs.len() - i)
            };
            let before = self.shards[s].len();
            let result = self.shards[s].push_batch(&xs[i..i + take]);
            // The shard ingested exactly the prefix before any bad value;
            // mirror that into the routing count before propagating.
            self.n += self.shards[s].len() - before;
            out.extend(result?);
            i += take;
        }
        Ok(out)
    }

    /// Replay `runs` executions of `trace` on the simulated platform,
    /// each shard measuring its own contiguous run range **in parallel**
    /// (one thread per shard). Run `i` is seeded with the `i`-th element
    /// of `master_seed`'s SplitMix64 stream — an O(1) random access — so
    /// every shard starts mid-stream without replaying anyone else's
    /// runs, and the union is bit-identical to a serial replay.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the analyzer already
    /// holds measurements (ranges are assigned from run 0), or a shard's
    /// ingest error.
    pub fn ingest_trace(
        &mut self,
        platform: PlatformConfig,
        trace: &[Inst],
        runs: usize,
        master_seed: u64,
    ) -> Result<(), MbptaError> {
        if self.n != 0 {
            return Err(MbptaError::InvalidConfig {
                what: "parallel trace ingest needs a fresh federated analyzer",
            });
        }
        let shard_len = self.shard_len;
        let last = self.shards.len() - 1;
        // One shared copy of the trace; shard replays clone the Arc.
        let trace: std::sync::Arc<[Inst]> = trace.to_vec().into();
        // proxima-lint: allow(no-thread-spawn-outside-sharding) -- each scoped
        // worker owns one shard and results are folded in shard index
        // order, so scheduling cannot reach the output.
        let outcomes: Vec<Result<(), MbptaError>> = std::thread::scope(|scope| {
            let workers: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(s, analyzer)| {
                    let start = (s * shard_len).min(runs);
                    let end = if s == last {
                        runs
                    } else {
                        ((s + 1) * shard_len).min(runs)
                    };
                    let platform = platform.clone();
                    let trace = trace.clone();
                    scope.spawn(move || {
                        let replay = TraceReplay::new_shared(platform, trace, end, master_seed)
                            .starting_at(start as u64);
                        for x in replay {
                            analyzer.push(x)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            workers
                .into_iter()
                // proxima-lint: allow(no-lib-panic) -- join() only errs if
                // the worker itself panicked; this re-raises that panic, it
                // does not introduce a new failure mode.
                .map(|w| w.join().expect("shard worker panicked"))
                .collect()
        });
        outcomes.into_iter().collect::<Result<(), _>>()?;
        self.n = runs;
        Ok(())
    }

    /// Fold the shard states into one analyzer, as if a single
    /// [`StreamAnalyzer`] had ingested the whole stream in order. Shard
    /// boundaries are block-aligned by construction, so the folded
    /// block-maxima buffer — and every fit on it — is bit-identical to
    /// the single stream's at **any** shard count.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if a shard fold fails
    /// (cannot happen for states built through this type's own routing).
    pub fn merged(&self) -> Result<StreamAnalyzer, MbptaError> {
        let mut merged = self.shards[0].clone();
        merged.reset_progress();
        for shard in &self.shards[1..] {
            merged.merge(shard)?;
        }
        Ok(merged)
    }

    /// Fold the shards and force a final refit over the union.
    ///
    /// # Errors
    ///
    /// Same as [`StreamAnalyzer::finish`] on the folded state.
    pub fn finish(&mut self) -> Result<PwcetSnapshot, MbptaError> {
        self.merged()?.finish()
    }
}

/// A session engine backed by a [`FederatedAnalyzer`]: the channel's
/// measurements are routed to per-shard analyzers and folded at
/// [`Engine::finish`].
///
/// Federated engines emit **no intermediate estimates** — the global
/// estimate exists only at fold time (shards stream independently; a
/// coordinator folds once), which also keeps session reports independent
/// of the shard count. [`Engine::converged`] reports per-shard stability
/// ([`FederatedAnalyzer::converged`] — see its caveat on shard sizing
/// before gating anything on it).
#[derive(Debug, Clone)]
pub struct FederatedEngine {
    analyzer: FederatedAnalyzer,
}

impl FederatedEngine {
    /// An engine running `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: FederatedConfig) -> Result<Self, MbptaError> {
        Ok(FederatedEngine {
            analyzer: FederatedAnalyzer::new(config)?,
        })
    }

    /// The wrapped sharded analyzer.
    pub fn analyzer(&self) -> &FederatedAnalyzer {
        &self.analyzer
    }
}

impl Engine for FederatedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Federated
    }

    fn push(&mut self, x: f64) -> Result<(), MbptaError> {
        self.analyzer.push(x).map(|_| ())
    }

    fn push_batch(&mut self, xs: &[f64]) -> Result<(), MbptaError> {
        self.analyzer.push_batch(xs).map(|_| ())
    }

    fn len(&self) -> usize {
        self.analyzer.len()
    }

    fn estimate(&mut self) -> Option<EngineEstimate> {
        // No online global estimate: per-shard snapshots describe shard
        // prefixes, not the union, and emitting them would make session
        // output depend on the shard count.
        None
    }

    fn quiet_horizon(&self) -> Option<usize> {
        Some(self.analyzer.quiet_horizon())
    }

    fn converged(&self) -> bool {
        self.analyzer.converged()
    }

    fn finish(&mut self) -> Result<Verdict, MbptaError> {
        let mut merged = self.analyzer.merged()?;
        // The fold is final by construction; there is no online
        // convergence history for the union (provenance.converged stays
        // `None`).
        finish_into_verdict(&mut merged, EngineKind::Federated, false)
    }

    fn save_state(&self) -> Result<Vec<u8>, MbptaError> {
        use proxima_mbpta::persist::{seal, Encode, Writer, MAGIC_ENGINE};
        let mut w = Writer::new();
        EngineKind::Federated.encode(&mut w);
        self.analyzer.encode(&mut w);
        Ok(seal(MAGIC_ENGINE, w.into_bytes()))
    }
}

/// Creates a [`FederatedEngine`] per session channel, all sharing one
/// [`FederatedConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedFactory {
    config: FederatedConfig,
}

impl FederatedFactory {
    /// A factory for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: FederatedConfig) -> Result<Self, MbptaError> {
        config.validate()?;
        Ok(FederatedFactory { config })
    }

    /// The shared federated configuration.
    pub fn config(&self) -> &FederatedConfig {
        &self.config
    }
}

impl EngineFactory for FederatedFactory {
    type Engine = FederatedEngine;

    fn create(&self, _channel: &ChannelId) -> Result<FederatedEngine, MbptaError> {
        FederatedEngine::new(self.config.clone())
    }

    fn restore(&self, _channel: &ChannelId, state: &[u8]) -> Result<FederatedEngine, MbptaError> {
        use proxima_mbpta::persist::{unseal, Decode, Reader, MAGIC_ENGINE};
        let payload = unseal(state, MAGIC_ENGINE)?;
        let mut r = Reader::new(payload);
        let kind = EngineKind::decode(&mut r)?;
        if !matches!(kind, EngineKind::Federated) {
            return Err(MbptaError::checkpoint(format!(
                "checkpointed engine is `{kind}`, session expects `federated`"
            )));
        }
        let analyzer = FederatedAnalyzer::decode(&mut r)?;
        r.finish()?;
        if *analyzer.config() != self.config {
            return Err(MbptaError::checkpoint(
                "checkpointed federated engine configuration does not match the session's",
            ));
        }
        Ok(FederatedEngine { analyzer })
    }
}

/// Extension trait hanging the federated session builders off
/// [`SessionBuilder`] (mirrors
/// [`SessionStreamExt`](crate::engine::SessionStreamExt)).
pub trait SessionFederatedExt: Sized {
    /// Build a session running one federated (sharded) streaming engine
    /// per channel, deriving the per-shard [`StreamConfig`] from the
    /// builder's batch configuration and target cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the derived configuration
    /// is invalid.
    fn build_federated(
        self,
        shards: usize,
    ) -> Result<AnalysisSession<FederatedFactory>, MbptaError>;

    /// Build a federated session with explicit knobs.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if `config` is invalid.
    fn build_federated_with(
        self,
        config: FederatedConfig,
    ) -> Result<AnalysisSession<FederatedFactory>, MbptaError>;
}

impl SessionFederatedExt for SessionBuilder {
    fn build_federated(
        self,
        shards: usize,
    ) -> Result<AnalysisSession<FederatedFactory>, MbptaError> {
        let stream = StreamConfig {
            target_p: self.target_cutoff(),
            ..StreamConfig::from_mbpta(self.mbpta_config())
        };
        self.build_federated_with(FederatedConfig::new(stream, shards))
    }

    fn build_federated_with(
        self,
        config: FederatedConfig,
    ) -> Result<AnalysisSession<FederatedFactory>, MbptaError> {
        self.build_with(FederatedFactory::new(config)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxima_mbpta::session::Tagged;
    use proxima_mbpta::MbptaConfig;
    use rand::{Rng, SeedableRng};

    fn times(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    fn stream_config() -> StreamConfig {
        StreamConfig {
            block_size: 25,
            refit_every_blocks: 4,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn config_validation_and_alignment() {
        let base = FederatedConfig::new(stream_config(), 4);
        assert!(base.validate().is_ok());
        assert_eq!(base.effective_shard_len(), 100 * 25);
        assert!(FederatedConfig::new(stream_config(), 0).validate().is_err());
        let bad_stream = FederatedConfig::new(
            StreamConfig {
                block_size: 0,
                ..StreamConfig::default()
            },
            2,
        );
        assert!(bad_stream.validate().is_err());
        // 1000 measurements over 3 shards at block 25: ⌈1000/3⌉ = 334,
        // aligned up to 350.
        let balanced = FederatedConfig::new(stream_config(), 3).balanced_for(1000);
        assert_eq!(balanced.effective_shard_len(), 350);
    }

    #[test]
    fn routing_fills_shards_contiguously_and_overflows_to_the_last() {
        let config = FederatedConfig {
            stream: stream_config(),
            shards: 3,
            shard_len: 50,
        };
        let mut fed = FederatedAnalyzer::new(config).unwrap();
        for x in times(200, 1) {
            fed.push(x).unwrap();
        }
        assert_eq!(fed.len(), 200);
        let lens: Vec<usize> = fed.shards().iter().map(StreamAnalyzer::len).collect();
        assert_eq!(lens, vec![50, 50, 100], "last shard takes the overflow");
    }

    #[test]
    fn federated_push_batch_is_bit_identical_to_itemized_push() {
        let data = times(2_000, 17);
        for shards in [1usize, 3, 4] {
            let config = FederatedConfig {
                stream: stream_config(),
                shards,
                shard_len: 500,
            };
            let mut itemized = FederatedAnalyzer::new(config.clone()).unwrap();
            let mut itemized_snaps = Vec::new();
            for &x in &data {
                itemized_snaps.extend(itemized.push(x).unwrap());
            }
            let reference = crate::persist::save_federated(&itemized);
            // Splits off, on and straddling the shard boundaries.
            for chunk in [1, 13, 500, 501, 1_250, data.len()] {
                let mut batched = FederatedAnalyzer::new(config.clone()).unwrap();
                let mut snaps = Vec::new();
                for piece in data.chunks(chunk) {
                    snaps.extend(batched.push_batch(piece).unwrap());
                }
                assert_eq!(
                    snaps, itemized_snaps,
                    "shards {shards} chunk {chunk} snapshots diverged"
                );
                assert_eq!(
                    crate::persist::save_federated(&batched),
                    reference,
                    "shards {shards} chunk {chunk} checkpoint bytes diverged"
                );
            }
        }
    }

    #[test]
    fn federated_push_batch_error_leaves_itemized_state() {
        let config = FederatedConfig {
            stream: stream_config(),
            shards: 3,
            shard_len: 50,
        };
        let mut poisoned = times(130, 18);
        poisoned.push(f64::NAN);
        poisoned.extend(times(20, 19));
        let mut itemized = FederatedAnalyzer::new(config.clone()).unwrap();
        for &x in &poisoned {
            if itemized.push(x).is_err() {
                break;
            }
        }
        let mut batched = FederatedAnalyzer::new(config).unwrap();
        assert!(batched.push_batch(&poisoned).is_err());
        assert_eq!(batched.len(), 130);
        assert_eq!(
            crate::persist::save_federated(&batched),
            crate::persist::save_federated(&itemized)
        );
    }

    #[test]
    fn sharded_finish_is_bit_identical_to_single_stream_at_any_shard_count() {
        let data = times(4000, 2);
        let mut single = StreamAnalyzer::new(stream_config()).unwrap();
        single.extend(data.iter().copied()).unwrap();
        let single_final = single.finish().unwrap();

        for shards in [1usize, 2, 4, 7] {
            let config = FederatedConfig::new(stream_config(), shards).balanced_for(data.len());
            let mut fed = FederatedAnalyzer::new(config).unwrap();
            for &x in &data {
                fed.push(x).unwrap();
            }
            let merged = fed.merged().unwrap();
            assert_eq!(merged.maxima(), single.maxima(), "shards={shards}");
            assert_eq!(
                merged.high_watermark(),
                single.high_watermark(),
                "shards={shards}"
            );
            assert_eq!(
                merged.monitor().health(),
                single.monitor().health(),
                "shards={shards}"
            );
            let snap = fed.finish().unwrap();
            assert_eq!(snap.pwcet, single_final.pwcet, "shards={shards}");
            assert_eq!(snap.distribution, single_final.distribution);
            assert_eq!(snap.n, single_final.n);
        }
    }

    #[test]
    fn parallel_trace_ingest_matches_serial_routing() {
        use proxima_workload::tvca::{ControlMode, Tvca, TvcaConfig};
        let tvca = Tvca::new(TvcaConfig::default());
        let trace = tvca.trace(ControlMode::Nominal);
        let config = FederatedConfig::new(stream_config(), 3).balanced_for(900);

        let mut parallel = FederatedAnalyzer::new(config.clone()).unwrap();
        parallel
            .ingest_trace(PlatformConfig::mbpta_compliant(), &trace, 900, 77)
            .unwrap();

        let mut serial = FederatedAnalyzer::new(config).unwrap();
        for x in TraceReplay::new(PlatformConfig::mbpta_compliant(), trace, 900, 77) {
            serial.push(x).unwrap();
        }
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.shards().iter().zip(serial.shards()) {
            assert_eq!(p.len(), s.len());
            assert_eq!(p.maxima(), s.maxima());
            assert_eq!(p.high_watermark(), s.high_watermark());
        }
        assert_eq!(
            parallel.finish().unwrap().pwcet,
            serial.finish().unwrap().pwcet
        );
        // Re-ingesting on a used analyzer is rejected.
        let tvca2 = Tvca::new(TvcaConfig::default());
        assert!(parallel
            .ingest_trace(
                PlatformConfig::mbpta_compliant(),
                &tvca2.trace(ControlMode::Nominal),
                100,
                1
            )
            .is_err());
    }

    #[test]
    fn converged_tracks_every_fed_shard() {
        let config = FederatedConfig {
            stream: StreamConfig {
                refit_every_blocks: 2,
                ..stream_config()
            },
            shards: 4,
            shard_len: 3000,
        };
        let mut fed = FederatedAnalyzer::new(config).unwrap();
        assert!(!fed.converged(), "empty analyzer has no verdict");
        for x in times(3000, 3) {
            fed.push(x).unwrap();
        }
        // Shard 0 saw a long stationary stream and converged; empty
        // shards do not block the verdict.
        assert!(fed.converged());
        // A shard that only warmed up blocks convergence again.
        for x in times(100, 4) {
            fed.push(x).unwrap();
        }
        assert!(!fed.converged());
    }

    #[test]
    fn federated_session_channel_matches_bare_fold() {
        let data = times(3000, 5);
        let config = FederatedConfig::new(stream_config(), 4).balanced_for(data.len());

        let mut session = MbptaConfig::default()
            .session()
            .build_federated_with(config.clone())
            .unwrap();
        for &x in &data {
            session.push(Tagged::new("only", x)).unwrap();
        }
        let merged = session.merge();
        let verdict = merged.verdict("only").unwrap().as_ref().unwrap();

        let mut bare = FederatedAnalyzer::new(config).unwrap();
        for &x in &data {
            bare.push(x).unwrap();
        }
        let snap = bare.finish().unwrap();
        assert_eq!(verdict.pwcet, snap.distribution);
        assert_eq!(verdict.summary.n, data.len());
        assert_eq!(verdict.summary.high_watermark, snap.high_watermark);
        assert_eq!(verdict.provenance.engine, EngineKind::Federated);
        assert_eq!(verdict.provenance.converged, None);
    }

    #[test]
    fn federated_engine_emits_no_intermediate_estimates() {
        let mut session = MbptaConfig::default()
            .session()
            .snapshot_every(1)
            .build_federated_with(FederatedConfig::new(stream_config(), 2))
            .unwrap();
        for x in times(2000, 6) {
            let snap = session.push(Tagged::new("only", x)).unwrap();
            assert!(snap.is_none(), "federated channels must stay silent");
        }
        assert!(session.merge().all_ok());
    }

    #[test]
    fn bad_value_quarantines_federated_channel() {
        let mut session = MbptaConfig::default()
            .session()
            .build_federated_with(FederatedConfig::new(stream_config(), 2))
            .unwrap();
        for x in times(2000, 7) {
            session.push(Tagged::new("good", x)).unwrap();
        }
        session.push(Tagged::new("bad", f64::NAN)).unwrap();
        let merged = session.merge();
        assert!(merged.verdict("good").unwrap().is_ok());
        assert!(merged.verdict("bad").unwrap().is_err());
    }

    #[test]
    fn build_federated_derives_stream_knobs_from_builder() {
        use proxima_mbpta::BlockSpec;
        let session = MbptaConfig {
            block: BlockSpec::Fixed(30),
            ..MbptaConfig::default()
        }
        .session()
        .target_p(1e-9)
        .build_federated(2);
        assert!(session.is_ok());
        assert!(MbptaConfig::default().session().build_federated(0).is_err());
    }
}
