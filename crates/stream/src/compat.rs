//! The crate's deprecation surface, maintained in one place (the
//! streaming counterpart of `proxima_mbpta::compat`).
//!
//! Deprecated pre-session entry points live here with their single
//! `#[allow(deprecated)]` wiring and the regression tests pinning them
//! to the supported path; the crate root re-exports them so old import
//! paths (`proxima_stream::PipelineStreamExt`) keep compiling. New
//! deprecations go in this module, not next to the code they shadow.

use proxima_mbpta::{MbptaError, Pipeline};

use crate::analyzer::{StreamAnalyzer, StreamConfig};

/// Extension trait hanging the streaming entry point off the batch
/// [`Pipeline`]: `Pipeline::new(config).stream()` is how callers moved
/// from batch to incremental analysis before the session API.
///
/// Deprecated: use [`SessionStreamExt`](crate::engine::SessionStreamExt)
/// on [`SessionBuilder`](proxima_mbpta::SessionBuilder) —
/// `config.session().build_stream()` — which serves any number of
/// channels behind the same vocabulary. These methods remain as thin
/// shims over the same [`StreamAnalyzer`].
#[deprecated(
    since = "0.2.0",
    note = "use `SessionStreamExt::build_stream` on `SessionBuilder` \
            (`config.session().build_stream()`)"
)]
pub trait PipelineStreamExt {
    /// A streaming analyzer matching this pipeline's configuration (block
    /// size and significance level carry over).
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the derived configuration
    /// is invalid.
    fn stream(&self) -> Result<StreamAnalyzer, MbptaError>;

    /// A streaming analyzer with explicit streaming knobs.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if `config` is invalid.
    fn stream_with(&self, config: StreamConfig) -> Result<StreamAnalyzer, MbptaError>;
}

#[allow(deprecated)] // the shim impl must survive until the trait is removed
impl PipelineStreamExt for Pipeline {
    fn stream(&self) -> Result<StreamAnalyzer, MbptaError> {
        StreamAnalyzer::new(StreamConfig::from_mbpta(self.config()))
    }

    fn stream_with(&self, config: StreamConfig) -> Result<StreamAnalyzer, MbptaError> {
        StreamAnalyzer::new(config)
    }
}

#[cfg(test)]
#[allow(deprecated)] // regression coverage for the deprecated shim
mod tests {
    use super::*;
    use proxima_mbpta::{BlockSpec, MbptaConfig};

    #[test]
    fn pipeline_ext_derives_matching_block() {
        let p = Pipeline::new(MbptaConfig {
            block: BlockSpec::Fixed(25),
            ..MbptaConfig::default()
        });
        let a = p.stream().unwrap();
        assert_eq!(a.config().block_size, 25);
        let auto = Pipeline::new(MbptaConfig::default());
        assert_eq!(auto.stream().unwrap().config().block_size, 100);
        let custom = auto
            .stream_with(StreamConfig {
                block_size: 30,
                ..StreamConfig::default()
            })
            .unwrap();
        assert_eq!(custom.config().block_size, 30);
    }
}
