//! Incremental MBPTA: ingest measurements online, refit the tail
//! periodically, emit a stream of pWCET snapshots.
//!
//! [`StreamAnalyzer`] is the streaming counterpart of the batch
//! [`analyze`](proxima_mbpta::analyze) pipeline. It holds **bounded state
//! only**:
//!
//! * a quantile [`Sketch`] for high-watermark / ECDF queries — the GK
//!   summary ([`QuantileSketch`], `O((1/ε)·log(εn))`) or the KLL summary
//!   ([`crate::kll::KllSketch`], `O(1/ε)`), selected by
//!   [`StreamConfig::sketch`];
//! * an [`IidMonitor`] window — `O(W)`;
//! * the running maximum of the current block — `O(1)`;
//! * the block-maxima buffer the Gumbel is refitted on — `O(n/B)`, the
//!   same vector the batch pipeline extracts, grown one entry per block.
//!
//! Every `refit_every_blocks` completed blocks it refits the Gumbel
//! (`fit_gumbel`, PWM + MLE — the exact fitting path of
//! `proxima_mbpta::evt_fit`) and emits a [`PwcetSnapshot`]. Because the
//! maxima buffer is identical to what [`block_maxima`] extracts from the
//! full vector, the final snapshot of a fully streamed trace **equals the
//! batch result bit for bit** at the same fixed block size.
//!
//! Convergence follows the criterion of
//! [`proxima_mbpta::convergence`]: consecutive snapshot estimates at the
//! reference cutoff must stay within `rel_tol` for `stable_snapshots`
//! checkpoints; [`StreamConfig::from_convergence`] maps a
//! [`ConvergenceConfig`] onto the streaming knobs directly.
//!
//! # Bulk ingestion
//!
//! [`StreamAnalyzer::push_batch`] ingests a slice in one call and is
//! **bit-identical** to pushing the values one by one — same snapshots,
//! same refit points, same checkpoint bytes — while amortizing sketch
//! compaction and monitor maintenance over each batch (the cost model
//! is laid out in `docs/PERFORMANCE.md`):
//!
//! ```
//! use proxima_stream::{StreamAnalyzer, StreamConfig};
//!
//! let config = StreamConfig {
//!     block_size: 25,
//!     refit_every_blocks: 4,
//!     ..StreamConfig::default()
//! };
//! let times: Vec<f64> = (0..600).map(|i| 1e5 + f64::from(i % 97)).collect();
//!
//! let mut itemized = StreamAnalyzer::new(config.clone())?;
//! let mut snaps_itemized = Vec::new();
//! for &x in &times {
//!     snaps_itemized.extend(itemized.push(x)?);
//! }
//! let mut batched = StreamAnalyzer::new(config)?;
//! let snaps_batched = batched.push_batch(&times)?;
//!
//! assert_eq!(snaps_batched, snaps_itemized);
//! assert_eq!(batched.len(), itemized.len());
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```

use proxima_mbpta::confidence::{interval_from_maxima, BudgetInterval};
use proxima_mbpta::convergence::ConvergenceConfig;
use proxima_mbpta::{BlockSpec, MbptaConfig, MbptaError, Pwcet};
use proxima_prng::SplitMix64;
use proxima_stats::evt::fit_gumbel;
use proxima_stats::StatsError;

use crate::monitor::{IidHealth, IidMonitor};
use crate::sketch::{Sketch, SketchKind};

#[cfg(doc)]
use crate::sketch::QuantileSketch;
#[cfg(doc)]
use proxima_stats::evt::block_maxima;

/// Per-snapshot bootstrap confidence-interval settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapSpec {
    /// Confidence level (e.g. 0.95).
    pub level: f64,
    /// Bootstrap resamples per snapshot.
    pub resamples: usize,
    /// Master seed; snapshot `k` resamples from the `k`-th element of its
    /// SplitMix64 stream, so every snapshot's interval is deterministic.
    pub seed: u64,
}

impl Default for BootstrapSpec {
    fn default() -> Self {
        BootstrapSpec {
            level: 0.95,
            resamples: 200,
            seed: 0x5EED_C0DE,
        }
    }
}

/// Configuration of the streaming analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Block size `B` for block-maxima extraction (fixed: streaming cannot
    /// re-scan for automatic selection).
    pub block_size: usize,
    /// Refit and emit a snapshot every `K` completed blocks.
    pub refit_every_blocks: usize,
    /// The per-run exceedance cutoff the estimate is tracked at.
    pub target_p: f64,
    /// Relative tolerance between consecutive snapshot estimates.
    pub rel_tol: f64,
    /// Consecutive within-tolerance snapshots required to declare
    /// convergence.
    pub stable_snapshots: usize,
    /// Complete blocks required before the first fit.
    pub min_blocks: usize,
    /// Significance level of the rolling i.i.d. diagnostics.
    pub alpha: f64,
    /// Window length of the i.i.d. monitor.
    pub monitor_window: usize,
    /// Rank-error bound of the quantile sketch.
    pub sketch_epsilon: f64,
    /// Which quantile-sketch algorithm to maintain (`--sketch {gk,kll}`):
    /// GK for a deterministic worst-case bound, KLL for smaller
    /// summaries whose error does not grow with federation depth.
    pub sketch: SketchKind,
    /// Per-snapshot bootstrap interval; `None` skips the bootstrap.
    pub bootstrap: Option<BootstrapSpec>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            block_size: 50,
            refit_every_blocks: 5,
            target_p: 1e-12,
            rel_tol: 0.01,
            stable_snapshots: 3,
            min_blocks: 10,
            alpha: 0.05,
            monitor_window: 500,
            sketch_epsilon: 0.001,
            sketch: SketchKind::Gk,
            bootstrap: Some(BootstrapSpec::default()),
        }
    }
}

impl StreamConfig {
    /// Derive streaming knobs from the batch convergence criterion: the
    /// reference cutoff, tolerance and stability count carry over; the
    /// checkpoint step becomes the refit period in blocks.
    pub fn from_convergence(c: &ConvergenceConfig) -> Self {
        let block_size = fixed_block_size(&c.block);
        StreamConfig {
            block_size,
            refit_every_blocks: (c.step / block_size).max(1),
            target_p: c.reference_cutoff,
            rel_tol: c.rel_tol,
            stable_snapshots: c.stable_checkpoints,
            min_blocks: (c.min_runs / block_size).max(2),
            ..StreamConfig::default()
        }
    }

    /// Derive streaming knobs from a batch [`MbptaConfig`]: a fixed block
    /// carries over (an automatic spec falls back to its largest
    /// candidate) along with the significance level.
    pub fn from_mbpta(c: &MbptaConfig) -> Self {
        StreamConfig {
            block_size: fixed_block_size(&c.block),
            alpha: c.alpha,
            ..StreamConfig::default()
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] for a zero block size / refit
    /// period, a cutoff outside `(0, 1)`, a non-positive tolerance, fewer
    /// than 2 minimum blocks, or a sketch epsilon outside `(0, 0.5)`.
    pub fn validate(&self) -> Result<(), MbptaError> {
        if self.block_size == 0 {
            return Err(MbptaError::InvalidConfig {
                what: "stream block size must be non-zero",
            });
        }
        if self.refit_every_blocks == 0 {
            return Err(MbptaError::InvalidConfig {
                what: "refit period must be at least one block",
            });
        }
        if !(self.target_p > 0.0 && self.target_p < 1.0) {
            return Err(MbptaError::InvalidConfig {
                what: "target exceedance probability must be in (0, 1)",
            });
        }
        if self.rel_tol <= 0.0 || !self.rel_tol.is_finite() {
            return Err(MbptaError::InvalidConfig {
                what: "convergence tolerance must be positive",
            });
        }
        if self.min_blocks < 2 {
            return Err(MbptaError::InvalidConfig {
                what: "need at least 2 blocks before the first fit",
            });
        }
        if !(self.sketch_epsilon > 0.0 && self.sketch_epsilon < 0.5) {
            return Err(MbptaError::InvalidConfig {
                what: "sketch epsilon must be in (0, 0.5)",
            });
        }
        Ok(())
    }
}

/// Pin a batch block policy to the fixed size streaming requires: a fixed
/// block carries over; an automatic spec falls back to its largest
/// candidate (streaming cannot re-scan the data to select).
fn fixed_block_size(block: &BlockSpec) -> usize {
    match block {
        BlockSpec::Fixed(b) => (*b).max(1),
        BlockSpec::Auto(candidates) => candidates.iter().copied().max().unwrap_or(50).max(1),
    }
}

/// One emitted pWCET estimate with its context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PwcetSnapshot {
    /// Measurements ingested when the snapshot was taken.
    pub n: usize,
    /// Complete blocks (= block maxima) the fit used.
    pub blocks: usize,
    /// The pWCET budget at the configured `target_p`.
    pub pwcet: f64,
    /// The full fitted pWCET distribution, for queries at other cutoffs.
    pub distribution: Pwcet,
    /// Bootstrap confidence interval for `pwcet`, when configured and the
    /// resampling succeeded.
    pub ci: Option<BudgetInterval>,
    /// Relative change versus the previous snapshot's estimate (`None` on
    /// the first snapshot).
    pub convergence_delta: Option<f64>,
    /// Rolling i.i.d. diagnostics at snapshot time.
    pub iid_status: IidHealth,
    /// `true` once the convergence criterion has been met (latched).
    pub converged: bool,
    /// Exact high watermark observed so far.
    pub high_watermark: f64,
}

/// The streaming MBPTA analyzer.
///
/// # Examples
///
/// ```
/// use proxima_stream::{StreamAnalyzer, StreamConfig};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut analyzer = StreamAnalyzer::new(StreamConfig {
///     block_size: 25,
///     refit_every_blocks: 4,
///     ..StreamConfig::default()
/// })?;
/// let mut last = None;
/// for _ in 0..5_000 {
///     let x = 2e5 + (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() * 150.0;
///     if let Some(snap) = analyzer.push(x)? {
///         last = Some(snap);
///     }
/// }
/// let snap = last.expect("5000 samples produce snapshots");
/// assert!(snap.pwcet > snap.high_watermark);
/// assert!(analyzer.converged());
/// # Ok::<(), proxima_mbpta::MbptaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamAnalyzer {
    pub(crate) config: StreamConfig,
    pub(crate) sketch: Sketch,
    pub(crate) monitor: IidMonitor,
    pub(crate) n: usize,
    pub(crate) current_block_max: f64,
    pub(crate) current_block_len: usize,
    pub(crate) maxima: Vec<f64>,
    pub(crate) blocks_since_refit: usize,
    pub(crate) snapshots: usize,
    pub(crate) last_estimate: Option<f64>,
    pub(crate) stable_run: usize,
    pub(crate) converged_at: Option<usize>,
    pub(crate) last_fit_error: Option<MbptaError>,
    pub(crate) last_snapshot: Option<PwcetSnapshot>,
}

impl StreamAnalyzer {
    /// Create an analyzer for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the configuration is
    /// invalid.
    pub fn new(config: StreamConfig) -> Result<Self, MbptaError> {
        config.validate()?;
        let sketch =
            Sketch::new(config.sketch, config.sketch_epsilon).map_err(MbptaError::Stats)?;
        let monitor = IidMonitor::new(config.monitor_window, config.alpha);
        Ok(StreamAnalyzer {
            config,
            sketch,
            monitor,
            n: 0,
            current_block_max: f64::NEG_INFINITY,
            current_block_len: 0,
            maxima: Vec::new(),
            blocks_since_refit: 0,
            snapshots: 0,
            last_estimate: None,
            stable_run: 0,
            converged_at: None,
            last_fit_error: None,
            last_snapshot: None,
        })
    }

    /// The analyzer's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Measurements ingested so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` before the first measurement.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Complete blocks accumulated so far.
    pub fn blocks(&self) -> usize {
        self.maxima.len()
    }

    /// Exact high watermark, if any measurement arrived.
    pub fn high_watermark(&self) -> Option<f64> {
        self.sketch.max()
    }

    /// The bounded-memory quantile sketch, for ECDF / quantile queries
    /// over everything ingested so far.
    pub fn sketch(&self) -> &Sketch {
        &self.sketch
    }

    /// The rolling i.i.d. monitor.
    pub fn monitor(&self) -> &IidMonitor {
        &self.monitor
    }

    /// Snapshots emitted so far.
    pub fn snapshots_emitted(&self) -> usize {
        self.snapshots
    }

    /// `true` once the convergence criterion has been met.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// The ingest count at which convergence was first declared.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// The block-maxima buffer accumulated so far — identical to what
    /// the batch pipeline's `block_maxima` extracts from the full vector
    /// at the same fixed block size.
    pub fn maxima(&self) -> &[f64] {
        &self.maxima
    }

    /// The most recent emitted snapshot, if any — the cached estimate a
    /// session engine exposes between refits.
    pub fn last_snapshot(&self) -> Option<&PwcetSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// The last refit failure, if the most recent checkpoint could not fit
    /// (e.g. degenerate maxima); the stream keeps running and retries at
    /// the next checkpoint.
    pub fn last_fit_error(&self) -> Option<&MbptaError> {
        self.last_fit_error.as_ref()
    }

    /// Ingest one measurement. Returns a snapshot when this measurement
    /// completed a refit checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::Stats`] for a non-finite or negative value
    /// (the measurement protocol cannot produce those; a corrupted stream
    /// must not silently skew the tail).
    pub fn push(&mut self, x: f64) -> Result<Option<PwcetSnapshot>, MbptaError> {
        if !x.is_finite() || x < 0.0 {
            return Err(MbptaError::Stats(StatsError::NonFiniteData));
        }
        self.n += 1;
        self.sketch.insert(x);
        self.monitor.push(x);
        self.current_block_max = self.current_block_max.max(x);
        self.current_block_len += 1;
        if self.current_block_len < self.config.block_size {
            return Ok(None);
        }
        // Block complete.
        self.maxima.push(self.current_block_max);
        self.current_block_max = f64::NEG_INFINITY;
        self.current_block_len = 0;
        self.blocks_since_refit += 1;
        if self.maxima.len() < self.config.min_blocks
            || self.blocks_since_refit < self.config.refit_every_blocks
        {
            return Ok(None);
        }
        self.blocks_since_refit = 0;
        Ok(self.refit())
    }

    /// Ingest a batch of measurements, collecting every snapshot emitted
    /// along the way.
    ///
    /// # Errors
    ///
    /// Same as [`Self::push`]; ingestion stops at the first bad value.
    pub fn extend(
        &mut self,
        xs: impl IntoIterator<Item = f64>,
    ) -> Result<Vec<PwcetSnapshot>, MbptaError> {
        let mut out = Vec::new();
        for x in xs {
            if let Some(snap) = self.push(x)? {
                out.push(snap);
            }
        }
        Ok(out)
    }

    /// Bulk-ingest a slice of measurements, collecting every snapshot a
    /// per-item [`push`](Self::push) loop would have emitted.
    ///
    /// The analyzer afterwards is **bit-identical** to the itemized loop
    /// at every batch split — same sketch tuples, monitor window, block
    /// maxima and snapshot sequence — but the sketch and monitor are
    /// maintained in amortized chunks: the batch is cut exactly at the
    /// refit checkpoints, so each refit still observes the state as of
    /// its own measurement, and everything between two checkpoints goes
    /// through [`QuantileSketch::insert_batch`] /
    /// [`IidMonitor::push_batch`](crate::monitor::IidMonitor::push_batch).
    ///
    /// # Errors
    ///
    /// Same as [`Self::push`]: ingestion stops at the first non-finite or
    /// negative value. Everything before the bad value is ingested,
    /// leaving the analyzer exactly where the itemized loop would stop.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_stream::analyzer::{StreamAnalyzer, StreamConfig};
    ///
    /// let config = StreamConfig::default();
    /// let xs: Vec<f64> = (0..3_000).map(|i| 1e5 + ((i * 37) % 500) as f64).collect();
    ///
    /// let mut batched = StreamAnalyzer::new(config.clone())?;
    /// let mut itemized = StreamAnalyzer::new(config)?;
    /// let snaps = batched.push_batch(&xs)?;
    /// assert_eq!(snaps, itemized.extend(xs.iter().copied())?);
    /// assert_eq!(batched.len(), itemized.len());
    /// # Ok::<(), proxima_mbpta::MbptaError>(())
    /// ```
    pub fn push_batch(&mut self, xs: &[f64]) -> Result<Vec<PwcetSnapshot>, MbptaError> {
        let (valid, bad) = match xs.iter().position(|&x| !x.is_finite() || x < 0.0) {
            Some(i) => (&xs[..i], true),
            None => (xs, false),
        };
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < valid.len() {
            let to_refit = self.measurements_until_refit();
            let chunk = &valid[i..(i + to_refit).min(valid.len())];
            i += chunk.len();
            self.ingest_chunk(chunk);
            if chunk.len() == to_refit {
                self.blocks_since_refit = 0;
                if let Some(snap) = self.refit() {
                    out.push(snap);
                }
            }
        }
        if bad {
            return Err(MbptaError::Stats(StatsError::NonFiniteData));
        }
        Ok(out)
    }

    /// Measurements until the next refit checkpoint fires, given the
    /// current partial block and refit cadence — where the bulk path must
    /// cut its next chunk (and how far a session can bulk-ingest before
    /// this analyzer's estimate can change).
    pub(crate) fn measurements_until_refit(&self) -> usize {
        let to_block = self.config.block_size - self.current_block_len;
        let k = self
            .config
            .min_blocks
            .saturating_sub(self.maxima.len())
            .max(
                self.config
                    .refit_every_blocks
                    .saturating_sub(self.blocks_since_refit),
            )
            .max(1);
        (k - 1) * self.config.block_size + to_block
    }

    /// Ingest a pre-validated chunk that never crosses a refit checkpoint:
    /// bulk sketch/monitor maintenance, per-block maxima folded in
    /// arrival order.
    fn ingest_chunk(&mut self, chunk: &[f64]) {
        self.n += chunk.len();
        self.sketch.insert_batch(chunk);
        self.monitor.push_batch(chunk);
        let mut i = 0usize;
        while i < chunk.len() {
            let take = (self.config.block_size - self.current_block_len).min(chunk.len() - i);
            for &x in &chunk[i..i + take] {
                self.current_block_max = self.current_block_max.max(x);
            }
            self.current_block_len += take;
            i += take;
            if self.current_block_len == self.config.block_size {
                self.maxima.push(self.current_block_max);
                self.current_block_max = f64::NEG_INFINITY;
                self.current_block_len = 0;
                self.blocks_since_refit += 1;
            }
        }
    }

    /// Fold another analyzer that observed the **continuation** of this
    /// stream: the merged state is what a single analyzer would hold
    /// after ingesting this analyzer's measurements followed by
    /// `other`'s.
    ///
    /// * the quantile sketches merge under their algorithm's federated
    ///   guarantee — the `ε₁+ε₂` additive rank bound for GK
    ///   ([`QuantileSketch::merge`]), depth-independent error for KLL
    ///   ([`crate::kll::KllSketch::merge`]) — and count, sum and the
    ///   high watermark stay exact either way;
    /// * the block-maxima buffers concatenate, and `other`'s trailing
    ///   partial block carries over — so when `other` started at a block
    ///   boundary the merged buffer is **bit-identical** to the single
    ///   stream's, and so is every Gumbel refit on it;
    /// * the rolling i.i.d. monitors fold windows ([`IidMonitor::merge`]).
    ///
    /// Convergence/snapshot bookkeeping is reset: convergence is a
    /// property of one observer's snapshot history, and neither shard's
    /// history is the merged stream's. Call [`Self::finish`] (or keep
    /// streaming) after merging.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::InvalidConfig`] if the two configurations
    /// differ, or if this analyzer holds a partial block (its stream must
    /// sit on a block boundary — `other`'s block maxima were extracted
    /// relative to its own start, and a partial block in between would
    /// shift every one of them).
    pub fn merge(&mut self, other: &StreamAnalyzer) -> Result<(), MbptaError> {
        if other.n == 0 {
            return Ok(());
        }
        if self.config != other.config {
            return Err(MbptaError::InvalidConfig {
                what: "stream merge requires identical stream configurations",
            });
        }
        if self.current_block_len != 0 {
            return Err(MbptaError::InvalidConfig {
                what: "stream merge requires the left analyzer to sit on a block boundary",
            });
        }
        // Config equality above implies equal sketch kinds, so this can
        // only be Ok — but the kind check stays typed, not assumed.
        self.sketch
            .merge(&other.sketch)
            .map_err(MbptaError::Stats)?;
        self.monitor.merge(&other.monitor);
        self.maxima.extend_from_slice(&other.maxima);
        self.current_block_max = other.current_block_max;
        self.current_block_len = other.current_block_len;
        self.n += other.n;
        self.reset_progress();
        Ok(())
    }

    /// Drop the snapshot/convergence bookkeeping (used after a merge: the
    /// per-shard snapshot histories do not describe the merged stream).
    pub(crate) fn reset_progress(&mut self) {
        self.blocks_since_refit = 0;
        self.snapshots = 0;
        self.last_estimate = None;
        self.stable_run = 0;
        self.converged_at = None;
        self.last_fit_error = None;
        self.last_snapshot = None;
    }

    /// Force a final refit over everything ingested so far (trailing
    /// partial blocks are discarded, exactly like the batch pipeline).
    /// If the stream ended exactly on a checkpoint, the checkpoint's
    /// snapshot is returned as-is — refitting the identical maxima buffer
    /// would add no information but would double-count a zero delta into
    /// the convergence criterion.
    ///
    /// # Errors
    ///
    /// Returns [`MbptaError::CampaignTooSmall`] if fewer than
    /// `min_blocks` blocks completed, or the underlying fit error.
    pub fn finish(&mut self) -> Result<PwcetSnapshot, MbptaError> {
        if self.maxima.len() < self.config.min_blocks {
            return Err(MbptaError::CampaignTooSmall {
                needed: self.config.min_blocks * self.config.block_size,
                got: self.n,
            });
        }
        if let Some(snap) = self.last_snapshot {
            if snap.blocks == self.maxima.len() {
                return Ok(snap);
            }
        }
        self.blocks_since_refit = 0;
        match self.refit() {
            Some(snap) => Ok(snap),
            None => Err(self
                .last_fit_error
                .clone()
                .unwrap_or(MbptaError::Stats(StatsError::DegenerateSample))),
        }
    }

    /// Refit the Gumbel on the maxima buffer and assemble a snapshot.
    /// A failed fit is recorded and skipped — the stream retries at the
    /// next checkpoint.
    fn refit(&mut self) -> Option<PwcetSnapshot> {
        // PWM on an all-equal maxima vector can produce a spurious
        // beta ≈ 1e-13 from rounding; reject it outright rather than emit
        // a point-mass tail.
        if self.maxima.iter().all(|&m| m == self.maxima[0]) {
            self.last_fit_error = Some(MbptaError::Stats(StatsError::DegenerateSample));
            return None;
        }
        let fit = fit_gumbel(&self.maxima)
            .map_err(MbptaError::Stats)
            .and_then(|gumbel| {
                let pwcet = Pwcet::new(gumbel, self.config.block_size);
                let budget = pwcet.budget_for(self.config.target_p)?;
                Ok((pwcet, budget))
            });
        let (pwcet, budget) = match fit {
            Ok(ok) => ok,
            Err(e) => {
                self.last_fit_error = Some(e);
                return None;
            }
        };
        self.last_fit_error = None;
        let convergence_delta = self
            .last_estimate
            .map(|prev| ((budget - prev) / prev).abs());
        match convergence_delta {
            Some(delta) if delta <= self.config.rel_tol => self.stable_run += 1,
            Some(_) => self.stable_run = 0,
            None => {}
        }
        if self.converged_at.is_none() && self.stable_run >= self.config.stable_snapshots {
            self.converged_at = Some(self.n);
        }
        self.last_estimate = Some(budget);
        let ci = self.config.bootstrap.as_ref().and_then(|spec| {
            interval_from_maxima(
                &self.maxima,
                self.config.block_size,
                budget,
                self.config.target_p,
                spec.level,
                spec.resamples,
                SplitMix64::stream_seed(spec.seed, self.snapshots as u64),
                1,
            )
            .ok()
        });
        self.snapshots += 1;
        let snap = PwcetSnapshot {
            n: self.n,
            blocks: self.maxima.len(),
            pwcet: budget,
            distribution: pwcet,
            ci,
            convergence_delta,
            iid_status: self.monitor.health(),
            converged: self.converged_at.is_some(),
            // proxima-lint: allow(no-lib-panic) -- snapshot emission is
            // gated on n > 0 earlier in this function, so max() is Some.
            high_watermark: self.sketch.max().expect("n > 0 at any snapshot"),
        };
        self.last_snapshot = Some(snap);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IidStatus;
    use rand::{Rng, SeedableRng};

    fn times(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| 1e5 + (0..8).map(|_| rng.gen::<f64>()).sum::<f64>() * 100.0)
            .collect()
    }

    fn fixed_config(block: usize, every: usize) -> StreamConfig {
        StreamConfig {
            block_size: block,
            refit_every_blocks: every,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(StreamConfig::default().validate().is_ok());
        for bad in [
            StreamConfig {
                block_size: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                refit_every_blocks: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                target_p: 0.0,
                ..StreamConfig::default()
            },
            StreamConfig {
                rel_tol: 0.0,
                ..StreamConfig::default()
            },
            StreamConfig {
                min_blocks: 1,
                ..StreamConfig::default()
            },
            StreamConfig {
                sketch_epsilon: 0.7,
                ..StreamConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn push_batch_is_bit_identical_to_itemized_push() {
        let stream = times(4_000, 21);
        let mut itemized = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        let itemized_snaps = itemized.extend(stream.iter().copied()).unwrap();
        let reference = crate::persist::save_analyzer(&itemized);
        // Splits off, on and straddling block and refit boundaries.
        for chunk in [1, 7, 25, 100, 101, 1_000, stream.len()] {
            let mut batched = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
            let mut snaps = Vec::new();
            for piece in stream.chunks(chunk) {
                snaps.extend(batched.push_batch(piece).unwrap());
            }
            assert_eq!(snaps, itemized_snaps, "chunk {chunk} snapshots diverged");
            assert_eq!(
                crate::persist::save_analyzer(&batched),
                reference,
                "chunk {chunk} checkpoint bytes diverged"
            );
        }
    }

    #[test]
    fn push_batch_stops_at_first_bad_value_like_itemized() {
        let mut stream = times(1_234, 22);
        stream.push(f64::NAN);
        stream.extend(times(100, 23));
        let mut itemized = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        assert!(itemized.extend(stream.iter().copied()).is_err());
        let mut batched = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        assert!(batched.push_batch(&stream).is_err());
        // Both ingested exactly the prefix before the bad value.
        assert_eq!(batched.len(), 1_234);
        assert_eq!(
            crate::persist::save_analyzer(&batched),
            crate::persist::save_analyzer(&itemized)
        );
        // A negative measurement is rejected the same way.
        assert!(batched.push_batch(&[1.0, -3.0]).is_err());
        assert_eq!(batched.len(), 1_235);
    }

    #[test]
    fn snapshots_at_refit_cadence() {
        let mut a = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        let snaps = a.extend(times(5000, 1)).unwrap();
        // First snapshot needs min_blocks=10 blocks (250 samples) AND a
        // multiple of the 4-block cadence; then one every 100 samples.
        assert!(!snaps.is_empty());
        for pair in snaps.windows(2) {
            assert_eq!(pair[1].n - pair[0].n, 4 * 25);
        }
        assert_eq!(a.snapshots_emitted(), snaps.len());
    }

    #[test]
    fn final_snapshot_matches_batch_fit_exactly() {
        // The maxima buffer equals block_maxima(times, B), so the final
        // fitted distribution is the batch one bit for bit.
        let data = times(5000, 2);
        let mut a = StreamAnalyzer::new(fixed_config(50, 2)).unwrap();
        a.extend(data.iter().copied()).unwrap();
        let streamed = a.finish().unwrap();

        let maxima = proxima_stats::evt::block_maxima(&data, 50).unwrap();
        let gumbel = fit_gumbel(&maxima).unwrap();
        let batch = Pwcet::new(gumbel, 50);
        assert_eq!(
            streamed.pwcet,
            batch.budget_for(1e-12).unwrap(),
            "streaming and batch budgets must agree exactly"
        );
        assert_eq!(streamed.distribution, batch);
        assert_eq!(streamed.blocks, maxima.len());
    }

    #[test]
    fn stationary_stream_converges() {
        let mut a = StreamAnalyzer::new(fixed_config(25, 2)).unwrap();
        a.extend(times(6000, 3)).unwrap();
        assert!(a.converged(), "stationary stream should converge");
        assert!(a.converged_at().unwrap() <= 6000);
    }

    #[test]
    fn convergence_delta_tracks_previous_snapshot() {
        let mut a = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        let snaps = a.extend(times(4000, 4)).unwrap();
        assert!(snaps[0].convergence_delta.is_none());
        for pair in snaps.windows(2) {
            let expected = ((pair[1].pwcet - pair[0].pwcet) / pair[0].pwcet).abs();
            let got = pair[1].convergence_delta.unwrap();
            assert!((got - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn bootstrap_ci_brackets_estimate_and_is_deterministic() {
        let data = times(3000, 5);
        let run = || {
            let mut a = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
            a.extend(data.iter().copied()).unwrap();
            a.finish().unwrap()
        };
        let s1 = run();
        let s2 = run();
        let ci = s1.ci.expect("bootstrap on by default");
        assert!(ci.lower <= s1.pwcet && s1.pwcet <= ci.upper);
        assert_eq!(s1.ci, s2.ci, "same data, same seeds, same interval");
    }

    #[test]
    fn finish_on_checkpoint_boundary_reuses_snapshot() {
        // Checkpoints fall at blocks 10, 14, 18, … (first refit waits for
        // min_blocks = 10, then every 4). 2950 samples at block 25 give
        // 118 blocks — exactly a checkpoint — so finish() must return
        // that snapshot unchanged: no extra refit, no zero-delta pumped
        // into the stability counter.
        let mut a = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        let snaps = a.extend(times(2950, 9)).unwrap();
        let emitted_before = a.snapshots_emitted();
        let last = *snaps.last().unwrap();
        assert_eq!(last.blocks, 118);
        let fin = a.finish().unwrap();
        assert_eq!(fin, last);
        assert_eq!(a.snapshots_emitted(), emitted_before);
        // Off-boundary: new blocks since the last checkpoint do refit.
        let mut b = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        b.extend(times(3000, 9)).unwrap(); // 120 blocks, checkpoint at 118
        let emitted = b.snapshots_emitted();
        let fin = b.finish().unwrap();
        assert_eq!(fin.blocks, 120);
        assert_eq!(b.snapshots_emitted(), emitted + 1);
    }

    #[test]
    fn merge_of_aligned_shards_is_bit_identical_to_single_stream() {
        let data = times(4000, 11);
        let config = fixed_config(25, 4);
        let mut single = StreamAnalyzer::new(config.clone()).unwrap();
        single.extend(data.iter().copied()).unwrap();
        let single_final = single.finish().unwrap();

        // Four contiguous shards, each a multiple of the block size.
        let mut merged = StreamAnalyzer::new(config.clone()).unwrap();
        for chunk in data.chunks(1000) {
            let mut shard = StreamAnalyzer::new(config.clone()).unwrap();
            shard.extend(chunk.iter().copied()).unwrap();
            merged.merge(&shard).unwrap();
        }
        assert_eq!(merged.len(), single.len());
        assert_eq!(merged.maxima(), single.maxima());
        assert_eq!(merged.high_watermark(), single.high_watermark());
        assert_eq!(merged.monitor().health(), single.monitor().health());
        let merged_final = merged.finish().unwrap();
        assert_eq!(merged_final.pwcet, single_final.pwcet);
        assert_eq!(merged_final.distribution, single_final.distribution);
        assert_eq!(merged_final.blocks, single_final.blocks);
        assert_eq!(merged_final.high_watermark, single_final.high_watermark);
    }

    #[test]
    fn merge_carries_the_trailing_partial_block() {
        // 1010 samples at block 25: the shard split 1000 + 10 leaves a
        // 10-sample partial block that must keep filling after the merge.
        let data = times(1010, 12);
        let config = fixed_config(25, 4);
        let mut merged = StreamAnalyzer::new(config.clone()).unwrap();
        merged.extend(data[..1000].iter().copied()).unwrap();
        let mut tail = StreamAnalyzer::new(config.clone()).unwrap();
        tail.extend(data[1000..].iter().copied()).unwrap();
        merged.merge(&tail).unwrap();
        assert_eq!(merged.blocks(), 40);
        // 15 more samples complete the straddling block.
        let extra = times(15, 13);
        merged.extend(extra.iter().copied()).unwrap();
        assert_eq!(merged.blocks(), 41);
        let mut single = StreamAnalyzer::new(config).unwrap();
        single.extend(data.iter().copied()).unwrap();
        single.extend(extra.iter().copied()).unwrap();
        assert_eq!(merged.maxima(), single.maxima());
    }

    #[test]
    fn merge_rejects_misaligned_left_and_foreign_config() {
        let config = fixed_config(25, 4);
        let mut left = StreamAnalyzer::new(config.clone()).unwrap();
        left.extend(times(30, 14)).unwrap(); // 5 samples into block 2
        let mut right = StreamAnalyzer::new(config.clone()).unwrap();
        right.extend(times(50, 15)).unwrap();
        assert!(matches!(
            left.merge(&right),
            Err(MbptaError::InvalidConfig { .. })
        ));
        // Merging an empty right side is a no-op even off-boundary.
        let empty = StreamAnalyzer::new(config).unwrap();
        left.merge(&empty).unwrap();
        assert_eq!(left.len(), 30);
        // Config mismatch is rejected up front.
        let mut aligned = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        aligned.extend(times(25, 16)).unwrap();
        let foreign = {
            let mut a = StreamAnalyzer::new(fixed_config(50, 4)).unwrap();
            a.extend(times(50, 17)).unwrap();
            a
        };
        assert!(matches!(
            aligned.merge(&foreign),
            Err(MbptaError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn merge_resets_convergence_bookkeeping() {
        let config = fixed_config(25, 2);
        let mut left = StreamAnalyzer::new(config.clone()).unwrap();
        left.extend(times(5000, 18)).unwrap();
        assert!(left.converged());
        let mut right = StreamAnalyzer::new(config).unwrap();
        right.extend(times(500, 19)).unwrap();
        left.merge(&right).unwrap();
        assert!(!left.converged(), "per-shard convergence must not leak");
        assert_eq!(left.snapshots_emitted(), 0);
        assert!(left.last_snapshot().is_none());
        // finish() refits the merged buffer from scratch.
        let snap = left.finish().unwrap();
        assert_eq!(snap.blocks, 220);
        assert_eq!(snap.n, 5500);
    }

    #[test]
    fn rejects_bad_measurements() {
        let mut a = StreamAnalyzer::new(StreamConfig::default()).unwrap();
        assert!(a.push(f64::NAN).is_err());
        assert!(a.push(f64::INFINITY).is_err());
        assert!(a.push(-1.0).is_err());
        assert!(a.push(100.0).unwrap().is_none());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn finish_on_short_stream_errors() {
        let mut a = StreamAnalyzer::new(StreamConfig::default()).unwrap();
        a.extend((0..40).map(|i| 100.0 + i as f64)).unwrap();
        assert!(matches!(
            a.finish(),
            Err(MbptaError::CampaignTooSmall { .. })
        ));
    }

    #[test]
    fn degenerate_blocks_skip_snapshot_but_stream_survives() {
        let mut a = StreamAnalyzer::new(fixed_config(10, 1)).unwrap();
        // 200 constant samples: every checkpoint fit degenerates.
        for _ in 0..200 {
            a.push(500.0).unwrap();
        }
        assert_eq!(a.snapshots_emitted(), 0);
        assert!(a.last_fit_error().is_some());
        // Real variation afterwards un-sticks the stream.
        let snaps = a.extend(times(2000, 6)).unwrap();
        assert!(!snaps.is_empty());
        assert!(a.last_fit_error().is_none());
    }

    #[test]
    fn suspect_stream_is_reported_not_fatal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut level = 0.0f64;
        let data: Vec<f64> = (0..3000)
            .map(|_| {
                level = 0.97 * level + rng.gen::<f64>();
                1e5 + 500.0 * level
            })
            .collect();
        let mut a = StreamAnalyzer::new(fixed_config(25, 4)).unwrap();
        let snaps = a.extend(data).unwrap();
        assert!(!snaps.is_empty(), "snapshots still flow");
        assert!(
            snaps
                .iter()
                .any(|s| s.iid_status.status == IidStatus::Suspect),
            "autocorrelated stream must be flagged"
        );
    }

    #[test]
    fn memory_is_bounded_by_sketch_window_and_maxima() {
        let mut a = StreamAnalyzer::new(fixed_config(50, 5)).unwrap();
        a.extend(times(20_000, 8)).unwrap();
        assert_eq!(a.blocks(), 20_000 / 50);
        assert!(a.sketch().tuples() < 4_000, "{}", a.sketch().tuples());
        assert!(a.monitor().len() <= a.config().monitor_window);
    }

    #[test]
    fn from_convergence_maps_fields() {
        let c = ConvergenceConfig::default();
        let s = StreamConfig::from_convergence(&c);
        assert_eq!(s.block_size, 25);
        assert_eq!(s.refit_every_blocks, 10); // step 250 / block 25
        assert_eq!(s.target_p, c.reference_cutoff);
        assert_eq!(s.rel_tol, c.rel_tol);
        assert_eq!(s.stable_snapshots, c.stable_checkpoints);
        assert_eq!(s.min_blocks, 20); // min_runs 500 / block 25
    }
}
