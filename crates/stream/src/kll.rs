//! Mergeable KLL quantile sketch with deterministic compaction.
//!
//! [`KllSketch`] is the KLL summary of Karnin, Lang & Liberty (FOCS
//! 2016): a stack of *compactors*, where level `h` stores items that
//! each represent `2^h` observations. When a level fills, its buffer is
//! sorted and every other item is promoted one level up — halving the
//! item count while preserving total weight — so the whole structure
//! holds `O((1/ε)·c/(1-c))` items **independent of `n`**, with `c = 2/3`
//! the capacity decay between levels.
//!
//! Where the GK summary ([`QuantileSketch`](crate::sketch::QuantileSketch))
//! degrades additively under repeated merges (`ε₁n₁ + ε₂n₂` over a merge
//! tree), KLL's compaction error is a zero-mean random walk: merging two
//! KLL sketches costs no more than ingesting the union directly, which
//! is exactly the property the federated fold
//! ([`FederatedAnalyzer`](crate::FederatedAnalyzer)) and the serve
//! layer's sealed-blob MERGE lean on. See `docs/PERFORMANCE.md` for the
//! measured space/error comparison under merge depth.
//!
//! # Determinism
//!
//! Classic KLL flips a fair coin per compaction to decide whether the
//! odd- or even-indexed survivors are promoted. Ambient entropy would
//! make checkpoints, resumes and shard merges irreproducible, so the
//! coin stream here is **derived from the sketch's own state**: flip `i`
//! is bit 0 of [`SplitMix64::stream_seed`]`(seed(ε), i)`, where the
//! master seed is a pure function of the configured `ε` and `i` is a
//! persisted flip counter. Same state, same coins — inserts, batches,
//! merges and checkpoint round-trips are bit-identical at every shard
//! and worker count, and a resumed sketch continues exactly where the
//! checkpointed one left off.
//!
//! The exact minimum, maximum (the MBPTA *high watermark*), count and
//! sum are tracked exactly on the side, like the GK sketch: the
//! watermark must never be approximated.

use proxima_prng::SplitMix64;
use proxima_stats::StatsError;

use crate::sketch::scaled_eps_count_ceil;

/// Capacity decay numerator/denominator between adjacent levels
/// (`c = 2/3`, the standard KLL choice).
const DECAY_NUM: usize = 2;
const DECAY_DEN: usize = 3;

/// Smallest per-level buffer the schedule bottoms out at.
const MIN_LEVEL_CAPACITY: usize = 2;

/// Domain-separation constant folded into the coin-stream seed so the
/// flips are decorrelated from every other SplitMix64 stream in the
/// system (campaign seeds, bootstrap seeds, …).
const COIN_DOMAIN: u64 = 0x4B4C_4C53_4B45_5443; // "KLLSKETC"

/// An ε-approximate mergeable KLL quantile sketch over `f64`
/// observations, with deterministic compaction.
///
/// # Examples
///
/// ```
/// use proxima_stream::kll::KllSketch;
///
/// let mut s = KllSketch::new(0.01)?;
/// for i in 0..10_000 {
///     s.insert(i as f64);
/// }
/// let med = s.quantile(0.5)?;
/// assert!((med / 5000.0 - 1.0).abs() < 0.05);
/// assert_eq!(s.max(), Some(9999.0)); // exact side statistic
/// assert!(s.tuples() < 2_000); // bounded memory, not 10k points
/// # Ok::<(), proxima_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KllSketch {
    pub(crate) epsilon: f64,
    /// Level `h` holds items of weight `2^h`; at least one level always
    /// exists, and the top level is non-empty whenever `n > 0`.
    pub(crate) compactors: Vec<Vec<f64>>,
    pub(crate) n: u64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    pub(crate) sum: f64,
    /// Compaction coin flips consumed so far — persisted, so a restored
    /// sketch continues the exact coin stream of the original.
    pub(crate) coins_used: u64,
    /// Cumulative compaction work (sorted / promoted item slots) — a
    /// machine-independent cost counter, mirroring the GK sketch's.
    /// Not part of the logical state: excluded from equality and never
    /// persisted.
    pub(crate) maintenance_ops: u64,
}

/// Equality is over the logical sketch state only; the
/// [`maintenance_ops`](KllSketch::maintenance_ops) work counter is
/// bookkeeping about *how* the state was reached, not part of it (the
/// batched and itemized ingest paths must compare equal).
impl PartialEq for KllSketch {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon == other.epsilon
            && self.compactors == other.compactors
            && self.n == other.n
            && self.min == other.min
            && self.max == other.max
            && self.sum == other.sum
            && self.coins_used == other.coins_used
    }
}

impl KllSketch {
    /// Create a sketch targeting rank error `epsilon` (e.g. `0.001`
    /// keeps every quantile within ±0.1% of the true rank with high
    /// probability over the coin stream — the KLL guarantee is
    /// probabilistic where GK's is worst-case; the top-level capacity
    /// `k = ⌈4/ε⌉` puts the ~`2.3/k^0.94` empirical 99th-percentile
    /// error comfortably inside `ε`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < epsilon < 0.5`.
    pub fn new(epsilon: f64) -> Result<Self, StatsError> {
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(StatsError::InvalidArgument {
                what: "sketch epsilon must be in (0, 0.5)",
            });
        }
        Ok(KllSketch {
            epsilon,
            compactors: vec![Vec::new()],
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            coins_used: 0,
            maintenance_ops: 0,
        })
    }

    /// The configured rank-error target.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations ingested.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of summary items currently held across all compactor
    /// levels — the memory footprint (each item is one bare `f64`,
    /// versus 24 bytes per GK tuple).
    pub fn tuples(&self) -> usize {
        self.compactors.iter().map(Vec::len).sum()
    }

    /// Number of compactor levels currently allocated.
    pub fn levels(&self) -> usize {
        self.compactors.len()
    }

    /// Bytes of summary payload currently held (`8` per stored item) —
    /// the space axis of the GK-vs-KLL comparison in
    /// `docs/PERFORMANCE.md`.
    pub fn summary_bytes(&self) -> usize {
        self.tuples() * std::mem::size_of::<f64>()
    }

    /// Exact minimum observed, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Exact maximum observed — the campaign's high watermark.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Exact running mean, if any observation arrived.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.sum / self.n as f64)
    }

    /// The `⌈εn⌉` rank-error target at the current `n`, computed exactly
    /// in integer arithmetic (no `f64` round-trip, no silent cast
    /// saturation — the same discipline as
    /// [`QuantileSketch::rank_error_bound`](crate::sketch::QuantileSketch::rank_error_bound)).
    /// KLL's bound is probabilistic over the coin stream where GK's is
    /// worst-case.
    pub fn rank_error_bound(&self) -> u64 {
        scaled_eps_count_ceil(self.epsilon, self.n)
    }

    /// Cumulative compaction operations (item slots sorted or promoted)
    /// since construction — the machine-independent work counter shared
    /// with the ingest benches. Resets to zero on checkpoint restore and
    /// never participates in equality.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }

    /// Top-level capacity `k = ⌈4/ε⌉`, floored at 8. Derived from
    /// `epsilon` on demand (never stored), so merged sketches — which
    /// adopt the looser `ε` — stay self-consistent by construction.
    fn k(&self) -> usize {
        let k = (4.0 / self.epsilon).ceil();
        if k >= usize::MAX as f64 {
            usize::MAX
        } else {
            (k as usize).max(8)
        }
    }

    /// Capacity of `level` under the geometric schedule: the top level
    /// holds `k` items and each level below holds `⌈2/3⌉` of the one
    /// above, floored at [`MIN_LEVEL_CAPACITY`]. Integer arithmetic
    /// only — capacities must be identical on every host a checkpoint
    /// travels to.
    fn capacity(&self, level: usize) -> usize {
        let depth = self.compactors.len() - 1 - level;
        let mut cap = self.k();
        for _ in 0..depth {
            cap = (cap * DECAY_NUM)
                .div_ceil(DECAY_DEN)
                .max(MIN_LEVEL_CAPACITY);
        }
        cap.max(MIN_LEVEL_CAPACITY)
    }

    /// The master seed of the compaction coin stream — a pure function
    /// of the sketch's configured state, never ambient entropy.
    fn coin_seed(&self) -> u64 {
        COIN_DOMAIN ^ self.epsilon.to_bits()
    }

    /// Draw the next compaction coin: 0 promotes even-indexed
    /// survivors, 1 odd-indexed. O(1) random access into the stream
    /// keeps batched ingest, merges and resumed runs on the identical
    /// flip sequence.
    fn next_coin(&mut self) -> usize {
        let flip = SplitMix64::stream_seed(self.coin_seed(), self.coins_used);
        self.coins_used += 1;
        (flip & 1) as usize
    }

    /// Fold one observation into the exact side statistics.
    fn observe(&mut self, x: f64) {
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
    }

    /// Ingest one observation. Non-finite values are ignored by the
    /// sketch proper (the analyzer validates before inserting), exactly
    /// like the GK sketch.
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.observe(x);
        self.compactors[0].push(x);
        if self.compactors[0].len() >= self.capacity(0) {
            self.maintain();
        }
    }

    /// Bulk-ingest a slice of observations. The resulting sketch is
    /// **bit-identical** to folding [`insert`](Self::insert) over the
    /// slice at every batch split: compaction only ever sees the sorted
    /// level buffer plus the deterministic coin stream, so filling
    /// level 0 chunk-wise to the same compaction points reproduces the
    /// itemized state exactly. Unlike the GK sketch — whose itemized
    /// path pays a mid-list shift per insert — KLL ingestion is already
    /// amortized, so the [`maintenance_ops`](Self::maintenance_ops)
    /// counter advances identically on both paths.
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_stream::kll::KllSketch;
    ///
    /// let mut batched = KllSketch::new(0.01)?;
    /// let mut itemized = KllSketch::new(0.01)?;
    /// let xs: Vec<f64> = (0..5_000).map(|i| ((i * 37) % 1000) as f64).collect();
    /// batched.insert_batch(&xs);
    /// for &x in &xs {
    ///     itemized.insert(x);
    /// }
    /// assert_eq!(batched, itemized);
    /// # Ok::<(), proxima_stats::StatsError>(())
    /// ```
    pub fn insert_batch(&mut self, xs: &[f64]) {
        let mut i = 0usize;
        while i < xs.len() {
            // Fill level 0 up to the exact item count at which the
            // itemized path would compact, then compact.
            let room = self
                .capacity(0)
                .saturating_sub(self.compactors[0].len())
                .max(1);
            let mut taken = 0usize;
            while i < xs.len() && taken < room {
                let x = xs[i];
                i += 1;
                // Non-finite values are ignored and do not advance the
                // fill point, exactly as in `insert`.
                if x.is_finite() {
                    self.observe(x);
                    self.compactors[0].push(x);
                    taken += 1;
                }
            }
            if self.compactors[0].len() >= self.capacity(0) {
                self.maintain();
            }
        }
    }

    /// Uniform bulk-ingest spelling shared with the monitor/analyzer/
    /// session layers; identical to [`insert_batch`](Self::insert_batch).
    pub fn push_batch(&mut self, xs: &[f64]) {
        self.insert_batch(xs);
    }

    /// Compact the lowest over-capacity level until every level is
    /// within capacity. Deterministic: the scan order is fixed and each
    /// compaction consumes exactly one coin from the persisted stream.
    fn maintain(&mut self) {
        loop {
            let over =
                (0..self.compactors.len()).find(|&h| self.compactors[h].len() >= self.capacity(h));
            match over {
                Some(h) => self.compact_level(h),
                None => break,
            }
        }
    }

    /// Sort level `h`, keep the smallest item in place when the count
    /// is odd, and promote every other remaining item (offset chosen by
    /// the deterministic coin) to level `h + 1`. Total weight is
    /// conserved: `2m` items of weight `2^h` become `m` of weight
    /// `2^{h+1}`.
    fn compact_level(&mut self, h: usize) {
        if h + 1 == self.compactors.len() {
            // A new top level shrinks every capacity below it; the
            // maintain loop re-checks from the bottom.
            self.compactors.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.compactors[h]);
        if buf.len() < 2 {
            // A single stranded item cannot pair; leave it in place
            // (only reachable if capacities bottomed out at the floor).
            self.compactors[h] = buf;
            return;
        }
        buf.sort_unstable_by(f64::total_cmp);
        let m = buf.len();
        // Cost model: one O(m log m) sort plus one promotion pass.
        self.maintenance_ops += m as u64 * u64::from((m - 1).ilog2() + 2);
        let keep = m % 2;
        let offset = self.next_coin();
        for idx in ((keep + offset)..m).step_by(2) {
            self.compactors[h + 1].push(buf[idx]);
        }
        if keep == 1 {
            self.compactors[h].push(buf[0]);
        }
    }

    /// Fold another sketch into this one, as if every observation the
    /// other sketch summarized had been inserted here.
    ///
    /// The exact side statistics (count, sum, min, max) merge exactly.
    /// Compactor levels concatenate level-wise and over-capacity levels
    /// recompact — the merged summary is no larger, and no less
    /// accurate, than a single sketch fed the union would be, so the
    /// error does **not** accumulate with merge-tree depth the way the
    /// GK additive bound does. The merged `epsilon()` is `max(ε₁, ε₂)`
    /// (the looser target wins, matching the GK merge contract), and
    /// the compaction coins continue on this sketch's persisted stream,
    /// keeping the merge a pure function of the two operand states.
    pub fn merge(&mut self, other: &KllSketch) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.epsilon = self.epsilon.max(other.epsilon);
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (h, level) in other.compactors.iter().enumerate() {
            self.maintenance_ops += level.len() as u64;
            self.compactors[h].extend_from_slice(level);
        }
        self.maintain();
    }

    /// The value at quantile `phi ∈ [0, 1]`, within the `εn` rank
    /// target. The boundary quantiles `phi = 0` and `phi = 1` return
    /// the **exact** tracked minimum / maximum side statistics, never a
    /// summary item's estimate.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidArgument`] for `phi` outside `[0, 1]`;
    /// * [`StatsError::InsufficientData`] on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&phi) {
            return Err(StatsError::InvalidArgument {
                what: "quantile level must be in [0, 1]",
            });
        }
        if self.n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        if phi <= 0.0 {
            return Ok(self.min);
        }
        if phi >= 1.0 {
            return Ok(self.max);
        }
        let target = (phi * self.n as f64).ceil().max(1.0) as u64;
        let mut items = self.weighted_items();
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut acc = 0u64;
        for (v, w) in items {
            acc += w;
            if acc >= target {
                return Ok(v);
            }
        }
        // Total stored weight equals n, so the walk always reaches the
        // target; this line is unreachable but must not panic.
        Ok(self.max)
    }

    /// Approximate rank of `x`: how many observations are ≤ `x`, within
    /// the `εn` target.
    pub fn rank(&self, x: f64) -> u64 {
        self.weighted_items()
            .iter()
            .filter(|(v, _)| *v <= x)
            .map(|&(_, w)| w)
            .sum()
    }

    /// Approximate empirical CDF at `x`: `rank(x) / n` (0 on an empty
    /// sketch).
    pub fn ecdf(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rank(x) as f64 / self.n as f64
    }

    /// Approximate empirical survival `1 − F̂(x)` — the observed-tail
    /// side of a pWCET plot.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.ecdf(x)
    }

    /// Every stored item with its level weight `2^h`. Levels never
    /// exceed 63 for any reachable `n ≤ u64::MAX` (level `h` only
    /// exists once `2^h` observations have been promoted into it).
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut items = Vec::with_capacity(self.tuples());
        for (h, level) in self.compactors.iter().enumerate() {
            let w = 1u64 << (h as u32).min(63);
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items
    }

    /// Total stored weight — the decode-time consistency check:
    /// compaction conserves weight exactly, so this always equals `n`
    /// for any reachable state.
    pub(crate) fn stored_weight(&self) -> u128 {
        self.compactors
            .iter()
            .enumerate()
            .map(|(h, level)| (level.len() as u128) << (h as u32).min(127))
            .sum()
    }

    /// `true` when every level respects its capacity and the top level
    /// is non-empty (or the sketch is a single empty level) — the shape
    /// every reachable state has, enforced again at decode time.
    pub(crate) fn shape_is_canonical(&self) -> bool {
        if self.compactors.is_empty() || self.compactors.len() > 64 {
            return false;
        }
        if (0..self.compactors.len()).any(|h| self.compactors[h].len() >= self.capacity(h)) {
            return false;
        }
        match self.compactors.last() {
            Some(top) => self.compactors.len() == 1 || !top.is_empty(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect()
    }

    fn observed_rank_error(sketch: &KllSketch, sorted: &[f64]) -> f64 {
        let n = sorted.len() as f64;
        [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999]
            .iter()
            .map(|&phi| {
                let est = sketch.quantile(phi).unwrap();
                let rank = sorted.partition_point(|&v| v <= est) as f64;
                (rank - phi * n).abs()
            })
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(KllSketch::new(0.0).is_err());
        assert!(KllSketch::new(0.5).is_err());
        assert!(KllSketch::new(-0.1).is_err());
        assert!(KllSketch::new(0.01).is_ok());
    }

    #[test]
    fn empty_sketch_behaviour() {
        let s = KllSketch::new(0.01).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert!(s.quantile(0.5).is_err());
        assert_eq!(s.ecdf(10.0), 0.0);
        assert!(s.shape_is_canonical());
    }

    #[test]
    fn exact_extremes_and_mean() {
        let mut s = KllSketch::new(0.05).unwrap();
        for x in [5.0, 1.0, 9.0, 3.0] {
            s.insert(x);
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn non_finite_inserts_ignored() {
        let mut s = KllSketch::new(0.01).unwrap();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert!(s.is_empty());
        s.insert(1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
    }

    #[test]
    fn quantiles_within_rank_error_on_shuffled_stream() {
        let eps = 0.01;
        let n = 20_000usize;
        let values = uniform(n, 1);
        let mut s = KllSketch::new(eps).unwrap();
        for &x in &values {
            s.insert(x);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let err = observed_rank_error(&s, &sorted);
        assert!(
            err <= eps * n as f64 + 1.0,
            "rank err {err} > {}",
            eps * n as f64
        );
    }

    #[test]
    fn memory_stays_bounded_and_independent_of_n() {
        let mut s = KllSketch::new(0.01).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut footprints = Vec::new();
        for round in 0..5 {
            for _ in 0..20_000 {
                s.insert(rng.gen::<f64>());
            }
            footprints.push(s.tuples());
            assert!(s.shape_is_canonical(), "round {round} broke the shape");
        }
        // k = ceil(4/0.01) = 400; the geometric schedule converges to
        // ~3k items (the footprint oscillates with level fills but must
        // stay under that cap at every multiple of n — 100k inserts
        // retaining < 1.4k items is the whole point).
        let cap = 3 * 400 + 2 * 64;
        for (round, &t) in footprints.iter().enumerate() {
            assert!(t < cap, "round {round}: {t} items >= {cap}");
        }
    }

    #[test]
    fn weight_is_conserved_through_compaction_and_merge() {
        let mut a = KllSketch::new(0.02).unwrap();
        let mut b = KllSketch::new(0.02).unwrap();
        for &x in &uniform(7_777, 3) {
            a.insert(x);
        }
        b.insert_batch(&uniform(3_333, 4));
        assert_eq!(a.stored_weight(), u128::from(a.len()));
        assert_eq!(b.stored_weight(), u128::from(b.len()));
        a.merge(&b);
        assert_eq!(a.len(), 7_777 + 3_333);
        assert_eq!(a.stored_weight(), u128::from(a.len()));
        assert!(a.shape_is_canonical());
    }

    #[test]
    fn batch_insert_is_bit_identical_to_itemized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let streams: Vec<Vec<f64>> = vec![
            (0..5_000).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect(),
            (0..5_000).map(|i| i as f64).collect(),
            (0..5_000).rev().map(|i| i as f64).collect(),
            (0..5_000)
                .map(|i| if i % 10 == 0 { 2.0 } else { 1.0 })
                .collect(),
            vec![42.0; 3_000],
        ];
        for (k, stream) in streams.iter().enumerate() {
            for eps in [0.001, 0.01, 0.2] {
                let mut itemized = KllSketch::new(eps).unwrap();
                for &x in stream {
                    itemized.insert(x);
                }
                for chunk in [stream.len(), 1, 7, 499, 500, 501] {
                    let mut batched = KllSketch::new(eps).unwrap();
                    for piece in stream.chunks(chunk) {
                        batched.insert_batch(piece);
                    }
                    assert_eq!(
                        batched, itemized,
                        "stream {k} eps {eps} chunk {chunk} diverged"
                    );
                    assert_eq!(
                        batched.maintenance_ops(),
                        itemized.maintenance_ops(),
                        "KLL ingest is amortized on both paths"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_insert_skips_non_finite_like_itemized() {
        let stream = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY];
        let mut itemized = KllSketch::new(0.01).unwrap();
        for &x in &stream {
            itemized.insert(x);
        }
        let mut batched = KllSketch::new(0.01).unwrap();
        batched.insert_batch(&stream);
        assert_eq!(batched, itemized);
        assert_eq!(batched.len(), 3);
        let before = batched.clone();
        batched.insert_batch(&[f64::NAN, f64::INFINITY]);
        assert_eq!(batched, before);
    }

    #[test]
    fn merge_side_stats_are_exact() {
        let mut a = KllSketch::new(0.01).unwrap();
        let mut b = KllSketch::new(0.01).unwrap();
        for x in [5.0, 1.0, 9.0] {
            a.insert(x);
        }
        for x in [2.0, 12.0] {
            b.insert(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(12.0));
        assert_eq!(a.mean(), Some(29.0 / 5.0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut filled = KllSketch::new(0.01).unwrap();
        for i in 0..500 {
            filled.insert(i as f64);
        }
        let reference = filled.clone();
        filled.merge(&KllSketch::new(0.01).unwrap());
        assert_eq!(filled, reference);
        let mut empty = KllSketch::new(0.01).unwrap();
        empty.merge(&reference);
        assert_eq!(empty, reference);
    }

    #[test]
    fn merge_takes_the_looser_epsilon() {
        let mut tight = KllSketch::new(0.001).unwrap();
        let mut loose = KllSketch::new(0.05).unwrap();
        tight.insert(1.0);
        loose.insert(2.0);
        tight.merge(&loose);
        assert_eq!(tight.epsilon(), 0.05);
    }

    #[test]
    fn merged_quantiles_within_rank_error() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut values: Vec<f64> = Vec::with_capacity(n);
        // Four shards with disjoint value regimes — the worst case for
        // a naive merge.
        let mut shards: Vec<KllSketch> = (0..4).map(|_| KllSketch::new(eps).unwrap()).collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            for _ in 0..n / 4 {
                let x = 1e5 * (s + 1) as f64 + 1e4 * rng.gen::<f64>();
                values.push(x);
                shard.insert(x);
            }
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.len(), n as u64);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let err = observed_rank_error(&merged, &values);
        assert!(
            err <= eps * n as f64 + 1.0,
            "rank err {err} > {}",
            eps * n as f64
        );
    }

    #[test]
    fn merge_order_is_deterministic_and_reproducible() {
        let data = uniform(12_000, 8);
        let build = || {
            let mut shards: Vec<KllSketch> = Vec::new();
            for chunk in data.chunks(1_500) {
                let mut s = KllSketch::new(0.01).unwrap();
                s.insert_batch(chunk);
                shards.push(s);
            }
            let mut folded = shards.remove(0);
            for s in &shards {
                folded.merge(s);
            }
            folded
        };
        // Same operand states, same coins, same result — bit for bit.
        assert_eq!(build(), build());
    }

    #[test]
    fn boundary_quantiles_return_exact_extremes() {
        let mut s = KllSketch::new(0.05).unwrap();
        s.insert_batch(&uniform(10_000, 9));
        assert_eq!(s.quantile(0.0).unwrap(), s.min().unwrap());
        assert_eq!(s.quantile(1.0).unwrap(), s.max().unwrap());
    }

    #[test]
    fn ecdf_and_survival_are_complementary() {
        let mut s = KllSketch::new(0.01).unwrap();
        for i in 0..1000 {
            s.insert(i as f64);
        }
        let f = s.ecdf(500.0);
        assert!((f - 0.5).abs() < 0.03, "F(500)={f}");
        assert!((s.survival(500.0) + f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_heavy_stream_is_fine() {
        let mut s = KllSketch::new(0.01).unwrap();
        for i in 0..10_000 {
            s.insert(if i % 10 == 0 { 2.0 } else { 1.0 });
        }
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
        assert_eq!(s.max(), Some(2.0));
    }
}
