//! Streaming MBPTA: online ingestion, sketch-based tail tracking, and
//! incremental pWCET refit.
//!
//! The batch pipeline (`proxima_mbpta::analyze`) needs the full
//! measurement vector in memory and answers only once the campaign ends.
//! This crate analyses a campaign **while it runs**, in bounded memory:
//!
//! * [`StreamAnalyzer`] ingests measurements one at a time (or in
//!   batches), maintains a quantile sketch — [GK](sketch::QuantileSketch)
//!   or [KLL](kll::KllSketch), selected by [`SketchKind`](sketch::SketchKind)
//!   — for high-watermark/ECDF queries, rolling i.i.d. diagnostics
//!   ([`monitor::IidMonitor`]: online autocorrelation + runs-test
//!   windows), and an incremental block-maxima buffer; every `K` new
//!   blocks it refits the Gumbel tail and emits a [`PwcetSnapshot`] until
//!   the batch convergence criterion stabilizes.
//! * [`replay::TraceReplay`] streams a simulated platform run-by-run with
//!   the same SplitMix64 per-run seeds as the batch campaign engine, and
//!   [`replay::LineSource`] streams the measurement-file format — so both
//!   existing traces and live rigs plug straight in.
//! * [`engine::StreamEngine`] plugs the analyzer into the multi-channel
//!   session core ([`proxima_mbpta::session`]):
//!   `config.session().build_stream()` (via [`SessionStreamExt`]) serves
//!   one bounded-memory engine per timing channel.
//! * The analyzer state is **mergeable** — quantile sketch
//!   ([`QuantileSketch::merge`](sketch::QuantileSketch::merge), `ε₁+ε₂`
//!   rank error), block-maxima buffer and rolling i.i.d. window all fold
//!   — so shards of one campaign can stream independently and combine:
//!   [`federated::FederatedAnalyzer`] runs N per-shard analyzers over
//!   contiguous block-aligned run ranges and folds them at finish into a
//!   pWCET **bit-identical** to the single-stream one;
//!   `config.session().build_federated(n)` (via [`SessionFederatedExt`])
//!   backs a session channel with shards transparently.
//!
//! # Examples
//!
//! Stream a simulated campaign through a session and watch the estimate
//! settle:
//!
//! ```
//! use proxima_mbpta::session::Tagged;
//! use proxima_mbpta::MbptaConfig;
//! use proxima_stream::replay::TraceReplay;
//! use proxima_stream::{SessionStreamExt, StreamConfig};
//! use proxima_workload::tvca::{ControlMode, TvcaConfig};
//!
//! let mut session = MbptaConfig::default()
//!     .session()
//!     .snapshot_every(1)
//!     .build_stream_with(StreamConfig {
//!         block_size: 25,
//!         refit_every_blocks: 4,
//!         ..StreamConfig::default()
//!     })?;
//! let source = TraceReplay::tvca(ControlMode::Nominal, TvcaConfig::default(), 800, 7);
//! let mut snapshots = 0;
//! for x in source {
//!     if let Some(snapshot) = session.push(Tagged::new("nominal", x))? {
//!         assert!(snapshot.estimate.pwcet > snapshot.estimate.high_watermark);
//!         snapshots += 1;
//!     }
//! }
//! assert!(snapshots > 0);
//! assert!(session.merge().all_ok());
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod compat;
pub mod engine;
pub mod federated;
pub mod kll;
pub mod monitor;
pub mod persist;
pub mod replay;
pub mod sketch;

pub use analyzer::{BootstrapSpec, PwcetSnapshot, StreamAnalyzer, StreamConfig};
// Every deprecated shim is defined (and tested) in [`compat`]; this is
// the single re-export keeping the old import path alive.
#[allow(deprecated)]
pub use compat::PipelineStreamExt;
pub use engine::{SessionStreamExt, StreamEngine, StreamFactory};
pub use federated::{
    FederatedAnalyzer, FederatedConfig, FederatedEngine, FederatedFactory, SessionFederatedExt,
};
pub use kll::KllSketch;
pub use monitor::{IidHealth, IidMonitor, IidStatus};
pub use replay::{ByteLines, LineSource, LineSourceError, TraceReplay};
pub use sketch::{QuantileSketch, Sketch, SketchKind};
