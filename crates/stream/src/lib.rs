//! Streaming MBPTA: online ingestion, sketch-based tail tracking, and
//! incremental pWCET refit.
//!
//! The batch pipeline (`proxima_mbpta::analyze`) needs the full
//! measurement vector in memory and answers only once the campaign ends.
//! This crate analyses a campaign **while it runs**, in bounded memory:
//!
//! * [`StreamAnalyzer`] ingests measurements one at a time (or in
//!   batches), maintains a [GK quantile sketch](sketch::QuantileSketch)
//!   for high-watermark/ECDF queries, rolling i.i.d. diagnostics
//!   ([`monitor::IidMonitor`]: online autocorrelation + runs-test
//!   windows), and an incremental block-maxima buffer; every `K` new
//!   blocks it refits the Gumbel tail and emits a [`PwcetSnapshot`] until
//!   the batch convergence criterion stabilizes.
//! * [`replay::TraceReplay`] streams a simulated platform run-by-run with
//!   the same SplitMix64 per-run seeds as the batch campaign engine, and
//!   [`replay::LineSource`] streams the measurement-file format — so both
//!   existing traces and live rigs plug straight in.
//! * [`PipelineStreamExt`] hangs the entry point off the batch
//!   [`Pipeline`](proxima_mbpta::Pipeline):
//!   `Pipeline::new(config).stream()`.
//!
//! # Examples
//!
//! Stream a simulated campaign and watch the estimate settle:
//!
//! ```
//! use proxima_mbpta::{MbptaConfig, Pipeline};
//! use proxima_stream::replay::TraceReplay;
//! use proxima_stream::{PipelineStreamExt, StreamConfig};
//! use proxima_workload::tvca::{ControlMode, TvcaConfig};
//!
//! let mut analyzer = Pipeline::new(MbptaConfig::default())
//!     .stream_with(StreamConfig {
//!         block_size: 25,
//!         refit_every_blocks: 4,
//!         ..StreamConfig::default()
//!     })?;
//! let source = TraceReplay::tvca(ControlMode::Nominal, TvcaConfig::default(), 800, 7);
//! for x in source {
//!     if let Some(snapshot) = analyzer.push(x)? {
//!         assert!(snapshot.pwcet > snapshot.high_watermark);
//!     }
//! }
//! assert!(analyzer.snapshots_emitted() > 0);
//! # Ok::<(), proxima_mbpta::MbptaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod monitor;
pub mod replay;
pub mod sketch;

pub use analyzer::{BootstrapSpec, PipelineStreamExt, PwcetSnapshot, StreamAnalyzer, StreamConfig};
pub use monitor::{IidHealth, IidMonitor, IidStatus};
pub use replay::{LineSource, LineSourceError, TraceReplay};
pub use sketch::QuantileSketch;
