//! Bounded-memory streaming quantile sketch (Greenwald–Khanna).
//!
//! The batch pipeline holds the full measurement vector in memory; a
//! streaming deployment cannot. [`QuantileSketch`] summarizes an unbounded
//! stream of execution times in `O((1/ε)·log(εn))` space while answering
//! rank and quantile queries with additive rank error at most `εn` — the
//! classic GK summary (Greenwald & Khanna, SIGMOD 2001), the same family of
//! non-parametric streaming quantile estimators used by the federated
//! quantile literature.
//!
//! The exact minimum, maximum (the *high watermark* — load-bearing for
//! MBPTA reporting), count and sum are tracked exactly on the side: they
//! cost O(1) and the watermark must never be approximated.
//!
//! Sketches are **mergeable** ([`QuantileSketch::merge`]): two summaries
//! built over disjoint shards of one stream combine into a summary of the
//! union with the standard additive rank-error guarantee — a merged
//! sketch answers any rank query within `ε₁n₁ + ε₂n₂`, which at equal
//! per-shard `ε` is exactly `ε·(n₁+n₂)`. This is the federated
//! quantile-estimation shape: shards sketch independently, a coordinator
//! folds the sketches.
//!
//! GK is one of two sketch algorithms behind the [`Sketch`] dispatch
//! enum: [`SketchKind`] selects between GK and the KLL summary
//! ([`crate::kll::KllSketch`]), which trades GK's worst-case bound for
//! a probabilistic one that does **not** degrade with merge-tree depth.

use proxima_stats::StatsError;

use crate::kll::KllSketch;

/// Exact `⌊2^log2_scale · ε · n⌋` in integer arithmetic.
///
/// The obvious `(2.0 * ε * n as f64).floor() as u64` loses precision
/// once `n` exceeds 2⁵³ (the `u64 → f64` conversion rounds) and the
/// final cast saturates silently at the `f64` edge — both bugs for the
/// GK invariant, which needs the *exact* floor. Instead, decompose the
/// (finite, positive) `ε` into an integer mantissa and a power of two,
/// so `ε·n` becomes one exact `u128` multiply and a shift.
pub(crate) fn scaled_eps_count_floor(epsilon: f64, n: u64, log2_scale: u32) -> u64 {
    let (floor, _) = scaled_eps_count_parts(epsilon, n, log2_scale);
    floor
}

/// Exact `⌈2^log2_scale·ε·n⌉` with `log2_scale = 0`, i.e. `⌈εn⌉` — the
/// quantile-query slack — in the same checked integer arithmetic as
/// [`scaled_eps_count_floor`].
pub(crate) fn scaled_eps_count_ceil(epsilon: f64, n: u64) -> u64 {
    let (floor, exact) = scaled_eps_count_parts(epsilon, n, 0);
    if exact {
        floor
    } else {
        floor.saturating_add(1)
    }
}

/// `(⌊2^log2_scale·ε·n⌋, was the product an exact integer)` for a
/// finite `ε ∈ (0, 1)` and `log2_scale ∈ {0, 1}` (so the result always
/// fits in `u64`; saturates defensively rather than wrapping if ever
/// called outside that envelope).
fn scaled_eps_count_parts(epsilon: f64, n: u64, log2_scale: u32) -> (u64, bool) {
    if n == 0 || epsilon <= 0.0 || !epsilon.is_finite() {
        return (0, true);
    }
    // ε = mantissa · 2^exp exactly (IEEE-754 binary64).
    let bits = epsilon.to_bits();
    let raw_exp = ((bits >> 52) & 0x7FF) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (mantissa, exp) = if raw_exp == 0 {
        (frac, -1074i64) // subnormal
    } else {
        (frac | (1u64 << 52), raw_exp - 1075)
    };
    // mantissa ≤ 2^53 and n ≤ 2^64, so the product fits in u128.
    let product = mantissa as u128 * n as u128;
    // 2^log2_scale·ε·n = product · 2^(exp + log2_scale); for ε < 1 the
    // exponent is at most -52, so the shift is always a right shift.
    let shift = -(exp + i64::from(log2_scale));
    if shift <= 0 {
        let shifted = product << ((-shift) as u32).min(127);
        return (u64::try_from(shifted).unwrap_or(u64::MAX), true);
    }
    if shift >= 128 {
        return (0, product == 0);
    }
    let shift = shift as u32;
    let floor = product >> shift;
    let exact = product & ((1u128 << shift) - 1) == 0;
    (u64::try_from(floor).unwrap_or(u64::MAX), exact)
}

/// One GK summary tuple: a stored value `v` covering `g` observations, with
/// rank uncertainty `delta`.
///
/// With `r_min(i) = Σ_{j≤i} g_j` and `r_max(i) = r_min(i) + delta_i`, the
/// true rank of `v` lies in `[r_min, r_max]`; the GK invariant keeps
/// `g_i + delta_i ≤ ⌊2εn⌋ + 1` so any rank query is answerable within `εn`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Tuple {
    pub(crate) v: f64,
    pub(crate) g: u64,
    pub(crate) delta: u64,
}

/// An ε-approximate streaming quantile sketch over `f64` observations.
///
/// # Examples
///
/// ```
/// use proxima_stream::sketch::QuantileSketch;
///
/// let mut s = QuantileSketch::new(0.01)?;
/// for i in 0..10_000 {
///     s.insert(i as f64);
/// }
/// let med = s.quantile(0.5)?;
/// assert!((med / 5000.0 - 1.0).abs() < 0.05);
/// assert_eq!(s.max(), Some(9999.0));
/// assert!(s.tuples() < 600); // bounded memory, not 10k points
/// # Ok::<(), proxima_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    pub(crate) epsilon: f64,
    pub(crate) tuples: Vec<Tuple>,
    pub(crate) n: u64,
    pub(crate) inserts_since_compress: u64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    pub(crate) sum: f64,
    /// Cumulative tuple-maintenance work (shifted/merged/sorted tuple
    /// slots) — a machine-independent cost counter for the ingest
    /// benches. Not part of the sketch's logical state: excluded from
    /// equality and never persisted.
    pub(crate) maintenance_ops: u64,
}

/// Equality is over the logical sketch state only; the
/// [`maintenance_ops`](QuantileSketch::maintenance_ops) work counter is
/// bookkeeping about *how* the state was reached, not part of it (the
/// batched and itemized ingest paths must compare equal).
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon == other.epsilon
            && self.tuples == other.tuples
            && self.n == other.n
            && self.inserts_since_compress == other.inserts_since_compress
            && self.min == other.min
            && self.max == other.max
            && self.sum == other.sum
    }
}

impl QuantileSketch {
    /// Create a sketch with rank-error bound `epsilon` (e.g. `0.001` keeps
    /// every quantile within ±0.1% of the true rank).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < epsilon < 0.5`.
    pub fn new(epsilon: f64) -> Result<Self, StatsError> {
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(StatsError::InvalidArgument {
                what: "sketch epsilon must be in (0, 0.5)",
            });
        }
        Ok(QuantileSketch {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            inserts_since_compress: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            maintenance_ops: 0,
        })
    }

    /// The configured rank-error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations ingested.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of summary tuples currently held — the memory footprint.
    pub fn tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Exact minimum observed, if any.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Exact maximum observed — the campaign's high watermark.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Exact running mean, if any observation arrived.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.sum / self.n as f64)
    }

    /// The `⌊2εn⌋` rank-error band of the GK invariant at the current
    /// `n` — every tuple keeps `g + delta ≤ ⌊2εn⌋ + 1`, so any rank
    /// query is answerable within `εn`.
    ///
    /// Computed exactly in integer arithmetic: the earlier
    /// `(2.0 * ε * n as f64).floor() as u64` spelling lost precision
    /// past `n = 2⁵³` and saturated silently at the cast, which would
    /// let the invariant drift at large `n`.
    pub fn rank_error_bound(&self) -> u64 {
        scaled_eps_count_floor(self.epsilon, self.n, 1)
    }

    /// Internal alias for [`rank_error_bound`](Self::rank_error_bound),
    /// under the GK literature's name for the quantity.
    fn band(&self) -> u64 {
        self.rank_error_bound()
    }

    /// The smallest insert count at which the periodic compress fires —
    /// the integer form of the `inserts as f64 >= 1/(2ε)` trigger, so the
    /// batch path can cut its segments at exactly the itemized
    /// compression points.
    fn compress_threshold(&self) -> u64 {
        let limit = 1.0 / (2.0 * self.epsilon);
        let mut k = limit.ceil() as u64;
        // Defend the float edge: k must be the *smallest* integer whose
        // f64 image clears the trigger.
        while k > 1 && (k - 1) as f64 >= limit {
            k -= 1;
        }
        k.max(1)
    }

    /// Ingest one observation. Non-finite values are ignored by the sketch
    /// proper (the analyzer validates before inserting).
    pub fn insert(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        // Position of the first tuple with v >= x.
        let pos = self.tuples.partition_point(|t| t.v < x);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New extreme values have exact rank.
            0
        } else {
            self.band().saturating_sub(1)
        };
        // Cost model: the mid-list insert shifts every tuple behind it.
        self.maintenance_ops += (self.tuples.len() - pos) as u64 + 1;
        self.tuples.insert(pos, Tuple { v: x, g: 1, delta });
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.epsilon) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Bulk-ingest a slice of observations, maintaining the summary in
    /// amortized chunks: each segment between two compression points is
    /// sorted once and sort-merged into the tuple list in a single pass,
    /// instead of `len` binary-searched mid-list inserts.
    ///
    /// The resulting sketch is **bit-identical** to folding
    /// [`insert`](Self::insert) over the slice — every tuple, counter and
    /// side statistic, at every batch split — so checkpoints, merges and
    /// the `εn` rank bound are untouched; only the maintenance cost
    /// changes (see [`maintenance_ops`](Self::maintenance_ops)).
    ///
    /// # Examples
    ///
    /// ```
    /// use proxima_stream::sketch::QuantileSketch;
    ///
    /// let mut batched = QuantileSketch::new(0.01)?;
    /// let mut itemized = QuantileSketch::new(0.01)?;
    /// let xs: Vec<f64> = (0..5_000).map(|i| ((i * 37) % 1000) as f64).collect();
    /// batched.insert_batch(&xs);
    /// for &x in &xs {
    ///     itemized.insert(x);
    /// }
    /// assert_eq!(batched, itemized);
    /// # Ok::<(), proxima_stats::StatsError>(())
    /// ```
    pub fn insert_batch(&mut self, xs: &[f64]) {
        let threshold = self.compress_threshold();
        let mut seg: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while i < xs.len() {
            // A segment ends exactly where the itemized path would have
            // compressed; `max(1)` keeps progress if a decoded counter
            // somehow sits at/past the threshold (itemized would then
            // compress after one more insert).
            let room = threshold
                .saturating_sub(self.inserts_since_compress)
                .max(1)
                .min(xs.len() as u64) as usize;
            seg.clear();
            while i < xs.len() && seg.len() < room {
                let x = xs[i];
                i += 1;
                // Non-finite values are ignored and do not advance the
                // compression counter, exactly as in `insert`.
                if x.is_finite() {
                    seg.push(x);
                }
            }
            if seg.is_empty() {
                break;
            }
            self.insert_segment(&seg);
            self.inserts_since_compress += seg.len() as u64;
            if self.inserts_since_compress >= threshold {
                self.compress();
                self.inserts_since_compress = 0;
            }
        }
    }

    /// Uniform bulk-ingest spelling shared with the monitor/analyzer/
    /// session layers; identical to [`insert_batch`](Self::insert_batch).
    pub fn push_batch(&mut self, xs: &[f64]) {
        self.insert_batch(xs);
    }

    /// Sort-merge one all-finite segment (never spanning a compression
    /// point) into the tuple list, reproducing the per-item insert state
    /// exactly: each element's `delta` is fixed by whether it was a new
    /// extreme *at its own arrival* (against both the pre-existing tuples
    /// and the earlier elements of the segment) and by `band(n)` at its
    /// own `n`; ties land before equal-valued earlier arrivals, as
    /// `partition_point` places them.
    fn insert_segment(&mut self, seg: &[f64]) {
        // Running extremes of the evolving tuple list: `pos == 0` in the
        // itemized path means `x <= tuples[0].v`, `pos == len` means
        // `x > tuples.last().v`.
        let mut lo = self.tuples.first().map_or(f64::INFINITY, |t| t.v);
        let mut hi = self.tuples.last().map_or(f64::NEG_INFINITY, |t| t.v);
        // (value, arrival index, delta)
        let mut entries: Vec<(f64, usize, u64)> = Vec::with_capacity(seg.len());
        for (seq, &x) in seg.iter().enumerate() {
            self.n += 1;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
            self.sum += x;
            let delta = if x <= lo || x > hi {
                0
            } else {
                self.band().saturating_sub(1)
            };
            lo = lo.min(x);
            hi = hi.max(x);
            entries.push((x, seq, delta));
        }
        // Later arrivals sort before earlier ones at equal values: a
        // repeated insert lands at the partition point, *before* the
        // equal-valued tuple already present.
        entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let old = std::mem::take(&mut self.tuples);
        let m = entries.len();
        // Cost model: one O(m log m) sort plus one linear merge pass.
        self.maintenance_ops +=
            (old.len() + m) as u64 + m as u64 * u64::from((m.max(2) - 1).ilog2() + 1);
        let mut merged = Vec::with_capacity(old.len() + m);
        let mut j = 0usize;
        for t in old {
            while j < m && entries[j].0 <= t.v {
                let (v, _, delta) = entries[j];
                merged.push(Tuple { v, g: 1, delta });
                j += 1;
            }
            merged.push(t);
        }
        for &(v, _, delta) in &entries[j..] {
            merged.push(Tuple { v, g: 1, delta });
        }
        self.tuples = merged;
    }

    /// Merge adjacent tuples whose combined coverage still satisfies the GK
    /// invariant, sweeping from the tail (standard GK compress), in one
    /// backward pass.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let band = self.band();
        self.maintenance_ops += self.tuples.len() as u64;
        let old = std::mem::take(&mut self.tuples);
        let mut rev: Vec<Tuple> = Vec::with_capacity(old.len());
        // Never merge away the first or last tuple: they pin min/max
        // ranks. `right` is the rightmost not-yet-emitted survivor, so a
        // run of small tuples chains into it exactly as the classic
        // remove()-based sweep does.
        let mut right = old[old.len() - 1];
        for i in (1..old.len() - 1).rev() {
            let merged_g = old[i].g + right.g;
            if merged_g + right.delta <= band {
                right.g = merged_g;
            } else {
                rev.push(right);
                right = old[i];
            }
        }
        rev.push(right);
        rev.push(old[0]);
        rev.reverse();
        self.tuples = rev;
    }

    /// Cumulative tuple-maintenance operations (slots shifted, merged or
    /// sorted) since construction — the machine-independent work counter
    /// the ingest benches compare batched vs itemized ingest on. Resets
    /// to zero on checkpoint restore and never participates in equality.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }

    /// Fold another sketch into this one, as if every observation the
    /// other sketch summarized had been inserted here.
    ///
    /// The exact side statistics (count, sum, min, max) merge exactly.
    /// For the summary tuples the standard additive guarantee holds: the
    /// merged sketch answers rank queries within `ε₁n₁ + ε₂n₂`, so
    /// merging shards built at one common `ε` preserves `ε·n` over the
    /// union — and the bound is transitive over any merge tree. The
    /// merged `epsilon()` is `max(ε₁, ε₂)`, which dominates the additive
    /// bound (`ε₁n₁ + ε₂n₂ ≤ max(ε₁,ε₂)·(n₁+n₂)`).
    ///
    /// Each tuple keeps its coverage `g` and widens its `delta` by the
    /// rank uncertainty the *other* summary contributes at that value: if
    /// the next not-yet-merged tuple of the other summary is `(g', Δ')`,
    /// the true count of other-stream observations below the merged value
    /// can swing by `g' + Δ' − 1`. Summing `r_min`/`r_max` bounds this
    /// way is the classic GK merge.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.epsilon = self.epsilon.max(other.epsilon);
        let a = std::mem::take(&mut self.tuples);
        let b = &other.tuples;
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let from_a = j >= b.len() || (i < a.len() && a[i].v <= b[j].v);
            let (t, peer) = if from_a {
                let t = a[i];
                i += 1;
                (t, b.get(j))
            } else {
                let t = b[j];
                j += 1;
                (t, a.get(i))
            };
            // The next unconsumed peer tuple has a value ≥ t.v; the peer
            // stream's rank at t.v is pinned only to within its spread.
            let spread = peer.map_or(0, |p| p.g + p.delta - 1);
            merged.push(Tuple {
                v: t.v,
                g: t.g,
                delta: t.delta + spread,
            });
        }
        self.tuples = merged;
        self.compress();
        self.inserts_since_compress = 0;
    }

    /// The value at quantile `phi ∈ [0, 1]`, within `εn` rank error.
    /// The boundary quantiles `phi = 0` and `phi = 1` return the
    /// **exact** tracked minimum / maximum side statistics, never a
    /// tuple's within-slack estimate (the scan below is allowed to stop
    /// up to `εn` ranks early, which for `phi = 1` could surface an
    /// interior value in place of the high watermark).
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidArgument`] for `phi` outside `[0, 1]`;
    /// * [`StatsError::InsufficientData`] on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Result<f64, StatsError> {
        if !(0.0..=1.0).contains(&phi) {
            return Err(StatsError::InvalidArgument {
                what: "quantile level must be in [0, 1]",
            });
        }
        if self.n == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        if phi <= 0.0 {
            return Ok(self.min);
        }
        if phi >= 1.0 {
            return Ok(self.max);
        }
        let target = (phi * self.n as f64).ceil().max(1.0) as u64;
        let slack = scaled_eps_count_ceil(self.epsilon, self.n);
        let mut r_min = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            let r_max = r_min + t.delta;
            if target <= r_min + slack && r_max <= target + slack {
                return Ok(t.v);
            }
        }
        // proxima-lint: allow(no-lib-panic) -- the n == 0 guard above
        // returned InsufficientData, so the sketch holds at least one tuple.
        Ok(self.tuples.last().expect("non-empty sketch").v)
    }

    /// Approximate rank of `x`: how many observations are ≤ `x`, within
    /// `εn`.
    pub fn rank(&self, x: f64) -> u64 {
        let mut r_min = 0u64;
        let mut last_covered = 0u64;
        for t in &self.tuples {
            r_min += t.g;
            if t.v <= x {
                last_covered = r_min;
            } else {
                break;
            }
        }
        last_covered
    }

    /// Approximate empirical CDF at `x`: `rank(x) / n` (0 on an empty
    /// sketch).
    pub fn ecdf(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.rank(x) as f64 / self.n as f64
    }

    /// Approximate empirical survival `1 − F̂(x)` — the observed-tail side
    /// of a pWCET plot.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.ecdf(x)
    }
}

/// Which quantile-sketch algorithm an analyzer maintains — the
/// `--sketch {gk,kll}` choice, threaded through
/// [`StreamConfig`](crate::analyzer::StreamConfig), the session layer
/// and the persist codec.
///
/// Both kinds sit behind the same [`Sketch`] surface and the same
/// merge/checkpoint contracts; they differ in the error guarantee and
/// in how that guarantee behaves under federation:
///
/// * [`Gk`](SketchKind::Gk) — deterministic worst-case `εn` rank bound,
///   but merge error accumulates additively over a merge tree;
/// * [`Kll`](SketchKind::Kll) — probabilistic `εn` bound (over a
///   deterministic, state-seeded coin stream), merge error does **not**
///   grow with tree depth, and summaries are several times smaller at
///   equal observed error (see `docs/PERFORMANCE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchKind {
    /// Greenwald–Khanna ([`QuantileSketch`]) — the default.
    #[default]
    Gk,
    /// KLL ([`KllSketch`]).
    Kll,
}

impl SketchKind {
    /// The CLI spelling (`"gk"` / `"kll"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SketchKind::Gk => "gk",
            SketchKind::Kll => "kll",
        }
    }
}

impl std::fmt::Display for SketchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SketchKind {
    type Err = StatsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gk" => Ok(SketchKind::Gk),
            "kll" => Ok(SketchKind::Kll),
            _ => Err(StatsError::InvalidArgument {
                what: "sketch kind must be 'gk' or 'kll'",
            }),
        }
    }
}

/// A quantile sketch of either algorithm behind one dispatch surface.
///
/// The analyzer, federated fold, session and serve layers hold a
/// `Sketch` and never branch on the algorithm themselves; every method
/// forwards to the selected summary. Merging is only defined between
/// sketches of the same kind — config equality gates every merge path
/// (analyzer, federated, sealed-blob MERGE), so a kind mismatch is a
/// typed error, never a silent coercion.
#[derive(Debug, Clone, PartialEq)]
pub enum Sketch {
    /// A Greenwald–Khanna summary.
    Gk(QuantileSketch),
    /// A KLL summary.
    Kll(KllSketch),
}

impl Sketch {
    /// Create an empty sketch of `kind` targeting rank error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < epsilon < 0.5`.
    pub fn new(kind: SketchKind, epsilon: f64) -> Result<Self, StatsError> {
        match kind {
            SketchKind::Gk => QuantileSketch::new(epsilon).map(Sketch::Gk),
            SketchKind::Kll => KllSketch::new(epsilon).map(Sketch::Kll),
        }
    }

    /// Which algorithm this sketch runs.
    pub fn kind(&self) -> SketchKind {
        match self {
            Sketch::Gk(_) => SketchKind::Gk,
            Sketch::Kll(_) => SketchKind::Kll,
        }
    }

    /// The configured rank-error target.
    pub fn epsilon(&self) -> f64 {
        match self {
            Sketch::Gk(s) => s.epsilon(),
            Sketch::Kll(s) => s.epsilon(),
        }
    }

    /// Number of observations ingested.
    pub fn len(&self) -> u64 {
        match self {
            Sketch::Gk(s) => s.len(),
            Sketch::Kll(s) => s.len(),
        }
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of summary items currently held (GK tuples or KLL
    /// compactor items) — the memory footprint.
    pub fn tuples(&self) -> usize {
        match self {
            Sketch::Gk(s) => s.tuples(),
            Sketch::Kll(s) => s.tuples(),
        }
    }

    /// Exact minimum observed, if any.
    pub fn min(&self) -> Option<f64> {
        match self {
            Sketch::Gk(s) => s.min(),
            Sketch::Kll(s) => s.min(),
        }
    }

    /// Exact maximum observed — the campaign's high watermark.
    pub fn max(&self) -> Option<f64> {
        match self {
            Sketch::Gk(s) => s.max(),
            Sketch::Kll(s) => s.max(),
        }
    }

    /// Exact running mean, if any observation arrived.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Sketch::Gk(s) => s.mean(),
            Sketch::Kll(s) => s.mean(),
        }
    }

    /// The rank-error bound at the current `n`, in exact integer
    /// arithmetic: `⌊2εn⌋` (worst-case) for GK, `⌈εn⌉` (probabilistic)
    /// for KLL.
    pub fn rank_error_bound(&self) -> u64 {
        match self {
            Sketch::Gk(s) => s.rank_error_bound(),
            Sketch::Kll(s) => s.rank_error_bound(),
        }
    }

    /// Cumulative maintenance operations since construction (see the
    /// per-algorithm docs); machine-independent, excluded from equality,
    /// resets on checkpoint restore.
    pub fn maintenance_ops(&self) -> u64 {
        match self {
            Sketch::Gk(s) => s.maintenance_ops(),
            Sketch::Kll(s) => s.maintenance_ops(),
        }
    }

    /// Ingest one observation (non-finite values are ignored).
    pub fn insert(&mut self, x: f64) {
        match self {
            Sketch::Gk(s) => s.insert(x),
            Sketch::Kll(s) => s.insert(x),
        }
    }

    /// Bulk-ingest a slice; bit-identical to itemized
    /// [`insert`](Self::insert) at every batch split, for both kinds.
    pub fn insert_batch(&mut self, xs: &[f64]) {
        match self {
            Sketch::Gk(s) => s.insert_batch(xs),
            Sketch::Kll(s) => s.insert_batch(xs),
        }
    }

    /// Uniform bulk-ingest spelling; identical to
    /// [`insert_batch`](Self::insert_batch).
    pub fn push_batch(&mut self, xs: &[f64]) {
        self.insert_batch(xs);
    }

    /// Fold another sketch of the **same kind** into this one.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] on a kind mismatch. The
    /// analyzer/federated/serve merge paths all verify config equality
    /// (which includes the kind) first, so they can never hit it.
    pub fn merge(&mut self, other: &Sketch) -> Result<(), StatsError> {
        match (self, other) {
            (Sketch::Gk(a), Sketch::Gk(b)) => {
                a.merge(b);
                Ok(())
            }
            (Sketch::Kll(a), Sketch::Kll(b)) => {
                a.merge(b);
                Ok(())
            }
            _ => Err(StatsError::InvalidArgument {
                what: "cannot merge quantile sketches of different kinds",
            }),
        }
    }

    /// The value at quantile `phi ∈ [0, 1]`; `phi = 0` / `phi = 1`
    /// return the exact tracked extremes.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InvalidArgument`] for `phi` outside `[0, 1]`;
    /// * [`StatsError::InsufficientData`] on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Result<f64, StatsError> {
        match self {
            Sketch::Gk(s) => s.quantile(phi),
            Sketch::Kll(s) => s.quantile(phi),
        }
    }

    /// Approximate rank of `x`: how many observations are ≤ `x`.
    pub fn rank(&self, x: f64) -> u64 {
        match self {
            Sketch::Gk(s) => s.rank(x),
            Sketch::Kll(s) => s.rank(x),
        }
    }

    /// Approximate empirical CDF at `x` (0 on an empty sketch).
    pub fn ecdf(&self, x: f64) -> f64 {
        match self {
            Sketch::Gk(s) => s.ecdf(x),
            Sketch::Kll(s) => s.ecdf(x),
        }
    }

    /// Approximate empirical survival `1 − F̂(x)`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.ecdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_epsilon() {
        assert!(QuantileSketch::new(0.0).is_err());
        assert!(QuantileSketch::new(0.5).is_err());
        assert!(QuantileSketch::new(-0.1).is_err());
        assert!(QuantileSketch::new(0.01).is_ok());
    }

    #[test]
    fn empty_sketch_behaviour() {
        let s = QuantileSketch::new(0.01).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert!(s.quantile(0.5).is_err());
        assert_eq!(s.ecdf(10.0), 0.0);
    }

    #[test]
    fn exact_extremes_and_mean() {
        let mut s = QuantileSketch::new(0.05).unwrap();
        for x in [5.0, 1.0, 9.0, 3.0] {
            s.insert(x);
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.mean(), Some(4.5));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn quantiles_within_rank_error_on_shuffled_stream() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut s = QuantileSketch::new(eps).unwrap();
        let mut values: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            let x = 1e5 + 1e4 * rng.gen::<f64>();
            values.push(x);
            s.insert(x);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = s.quantile(phi).unwrap();
            // True rank of the estimate must be within eps*n of phi*n.
            let rank = values.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            s.insert(rng.gen::<f64>());
        }
        // GK bound is O((1/ε)·log(εn)); allow a lazy constant. The point:
        // 50k inserts must not retain anything near 50k tuples.
        assert!(s.tuples() < 2_000, "tuples = {}", s.tuples());
    }

    #[test]
    fn sorted_and_reversed_streams_agree_with_truth() {
        let n = 5_000;
        for reverse in [false, true] {
            let mut s = QuantileSketch::new(0.02).unwrap();
            let iter: Box<dyn Iterator<Item = u64>> = if reverse {
                Box::new((0..n).rev())
            } else {
                Box::new(0..n)
            };
            for i in iter {
                s.insert(i as f64);
            }
            let q = s.quantile(0.9).unwrap();
            assert!((q / (0.9 * n as f64) - 1.0).abs() < 0.05, "q={q}");
        }
    }

    #[test]
    fn ecdf_and_survival_are_complementary() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        for i in 0..1000 {
            s.insert(i as f64);
        }
        let f = s.ecdf(500.0);
        assert!((f - 0.5).abs() < 0.03, "F(500)={f}");
        assert!((s.survival(500.0) + f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_inserts_ignored() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        s.insert(f64::NAN);
        s.insert(f64::INFINITY);
        assert!(s.is_empty());
        s.insert(1.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
    }

    #[test]
    fn merge_side_stats_are_exact() {
        let mut a = QuantileSketch::new(0.01).unwrap();
        let mut b = QuantileSketch::new(0.01).unwrap();
        for x in [5.0, 1.0, 9.0] {
            a.insert(x);
        }
        for x in [2.0, 12.0] {
            b.insert(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(12.0));
        assert_eq!(a.mean(), Some(29.0 / 5.0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut filled = QuantileSketch::new(0.01).unwrap();
        for i in 0..500 {
            filled.insert(i as f64);
        }
        let reference = filled.clone();
        filled.merge(&QuantileSketch::new(0.01).unwrap());
        assert_eq!(filled, reference);
        let mut empty = QuantileSketch::new(0.01).unwrap();
        empty.merge(&reference);
        assert_eq!(empty, reference);
    }

    #[test]
    fn merged_quantiles_within_rank_error() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut values: Vec<f64> = Vec::with_capacity(n);
        // Four shards with disjoint value regimes — the worst case for a
        // naive merge that averaged instead of bounding ranks.
        let mut shards: Vec<QuantileSketch> =
            (0..4).map(|_| QuantileSketch::new(eps).unwrap()).collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            for _ in 0..n / 4 {
                let x = 1e5 * (s + 1) as f64 + 1e4 * rng.gen::<f64>();
                values.push(x);
                shard.insert(x);
            }
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.len(), n as u64);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = merged.quantile(phi).unwrap();
            let rank = values.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn merge_keeps_memory_sublinear_and_insertable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut merged = QuantileSketch::new(0.01).unwrap();
        for _ in 0..8 {
            let mut shard = QuantileSketch::new(0.01).unwrap();
            for _ in 0..5_000 {
                shard.insert(rng.gen::<f64>());
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.len(), 40_000);
        assert!(merged.tuples() < 4_000, "tuples = {}", merged.tuples());
        // The merged sketch keeps accepting inserts under the grown band.
        for _ in 0..5_000 {
            merged.insert(rng.gen::<f64>());
        }
        let med = merged.quantile(0.5).unwrap();
        assert!((med - 0.5).abs() < 0.02, "median {med}");
    }

    #[test]
    fn merge_takes_the_looser_epsilon() {
        let mut tight = QuantileSketch::new(0.001).unwrap();
        let mut loose = QuantileSketch::new(0.05).unwrap();
        tight.insert(1.0);
        loose.insert(2.0);
        tight.merge(&loose);
        assert_eq!(tight.epsilon(), 0.05);
    }

    #[test]
    fn batch_insert_is_bit_identical_to_itemized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let streams: Vec<Vec<f64>> = vec![
            (0..5_000).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect(),
            (0..5_000).map(|i| i as f64).collect(),
            (0..5_000).rev().map(|i| i as f64).collect(),
            (0..5_000)
                .map(|i| if i % 10 == 0 { 2.0 } else { 1.0 })
                .collect(),
            vec![42.0; 3_000],
        ];
        for (k, stream) in streams.iter().enumerate() {
            for eps in [0.001, 0.01, 0.2] {
                let mut itemized = QuantileSketch::new(eps).unwrap();
                for &x in stream {
                    itemized.insert(x);
                }
                // One whole-stream batch, and ragged splits that straddle
                // compression points.
                for chunk in [stream.len(), 1, 7, 499, 500, 501] {
                    let mut batched = QuantileSketch::new(eps).unwrap();
                    for piece in stream.chunks(chunk) {
                        batched.insert_batch(piece);
                    }
                    assert_eq!(
                        batched, itemized,
                        "stream {k} eps {eps} chunk {chunk} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_insert_skips_non_finite_like_itemized() {
        let stream = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY];
        let mut itemized = QuantileSketch::new(0.01).unwrap();
        for &x in &stream {
            itemized.insert(x);
        }
        let mut batched = QuantileSketch::new(0.01).unwrap();
        batched.insert_batch(&stream);
        assert_eq!(batched, itemized);
        assert_eq!(batched.len(), 3);
        // An all-non-finite batch is a no-op.
        let before = batched.clone();
        batched.insert_batch(&[f64::NAN, f64::INFINITY]);
        assert_eq!(batched, before);
    }

    #[test]
    fn batch_insert_does_less_maintenance_work() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let stream: Vec<f64> = (0..20_000).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect();
        let mut itemized = QuantileSketch::new(0.001).unwrap();
        for &x in &stream {
            itemized.insert(x);
        }
        let mut batched = QuantileSketch::new(0.001).unwrap();
        for piece in stream.chunks(1_000) {
            batched.insert_batch(piece);
        }
        assert_eq!(batched, itemized);
        let (b, i) = (batched.maintenance_ops(), itemized.maintenance_ops());
        assert!(
            b * 5 <= i,
            "batched ingest must do ≥5x less tuple maintenance: batched {b} vs itemized {i}"
        );
    }

    #[test]
    fn batched_compaction_keeps_the_rank_error_bound() {
        // The εn bound must survive batched maintenance (acceptance: GK
        // rank-error bound under batched compaction).
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut s = QuantileSketch::new(eps).unwrap();
        let values: Vec<f64> = (0..n).map(|_| 1e5 + 1e4 * rng.gen::<f64>()).collect();
        for piece in values.chunks(777) {
            s.insert_batch(piece);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = s.quantile(phi).unwrap();
            let rank = sorted.partition_point(|&v| v <= est) as f64;
            let err = (rank - phi * n as f64).abs();
            assert!(
                err <= eps * n as f64 + 1.0,
                "phi={phi} rank err {err} > {}",
                eps * n as f64
            );
        }
    }

    #[test]
    fn duplicate_heavy_stream_is_fine() {
        let mut s = QuantileSketch::new(0.01).unwrap();
        for i in 0..10_000 {
            s.insert(if i % 10 == 0 { 2.0 } else { 1.0 });
        }
        assert_eq!(s.quantile(0.5).unwrap(), 1.0);
        assert_eq!(s.quantile(0.99).unwrap(), 2.0);
        assert_eq!(s.max(), Some(2.0));
    }

    /// Exhaustive u128 reference for the integer ε·n helpers.
    fn reference_floor(epsilon: f64, n: u64, log2_scale: u32) -> u64 {
        let bits = epsilon.to_bits();
        let raw_exp = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if raw_exp == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), raw_exp - 1075)
        };
        let product = mantissa as u128 * n as u128;
        let shift = (-(exp + i64::from(log2_scale))) as u32;
        u64::try_from(product >> shift).unwrap()
    }

    #[test]
    fn rank_error_bound_is_exact_at_large_n() {
        // ε = 0.25 is exactly representable, so ⌊2εn⌋ = ⌊n/2⌋ exactly.
        // The old f64 spelling rounded n = u64::MAX up to 2⁶⁴ and
        // reported 2⁶³ — one MORE than the true band, silently widening
        // the GK invariant. The integer path must be exact.
        let mut s = QuantileSketch::new(0.25).unwrap();
        s.n = u64::MAX;
        assert_eq!(s.rank_error_bound(), u64::MAX / 2);
        assert_eq!(
            (2.0 * 0.25 * (u64::MAX as f64)).floor() as u64,
            u64::MAX / 2 + 1,
            "the f64 round-trip this test guards against has changed behaviour"
        );
        // Sweep awkward epsilons × huge n against an independent u128
        // reference (floor and the derived ceil).
        for eps in [1e-9, 0.001, 0.1, 0.3, 0.25f64.next_up(), 0.5f64.next_down()] {
            for n in [
                1u64,
                (1 << 53) - 1,
                1 << 53,
                (1 << 53) + 1,
                u64::MAX / 3,
                u64::MAX - 1,
                u64::MAX,
            ] {
                assert_eq!(
                    scaled_eps_count_floor(eps, n, 1),
                    reference_floor(eps, n, 1),
                    "floor(2·{eps}·{n})"
                );
                let floor0 = reference_floor(eps, n, 0);
                let ceil = scaled_eps_count_ceil(eps, n);
                assert!(
                    ceil == floor0 || ceil == floor0 + 1,
                    "ceil({eps}·{n}) = {ceil} vs floor {floor0}"
                );
                assert!(ceil >= 1, "ceil of a positive product is at least 1");
            }
        }
        assert_eq!(scaled_eps_count_floor(0.1, 0, 1), 0);
        assert_eq!(scaled_eps_count_ceil(0.1, 0), 0);
    }

    #[test]
    fn boundary_quantiles_return_exact_extremes() {
        // phi = 1 exercises the bug this pins: the slack-window scan
        // may stop up to εn ranks early and report an interior tuple
        // instead of the tracked maximum.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut s = QuantileSketch::new(0.1).unwrap();
        for _ in 0..10_000 {
            s.insert(rng.gen::<f64>());
        }
        // Exact extremes inserted once each, far from the bulk.
        s.insert(-5.0);
        s.insert(7.0);
        assert_eq!(s.quantile(0.0).unwrap(), -5.0);
        assert_eq!(s.quantile(1.0).unwrap(), 7.0);
        assert_eq!(s.quantile(0.0).unwrap(), s.min().unwrap());
        assert_eq!(s.quantile(1.0).unwrap(), s.max().unwrap());
    }

    #[test]
    fn boundary_quantiles_exact_on_merged_and_batch_built_sketches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let shard_data: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..2_500)
                    .map(|_| 1e3 * (s + 1) as f64 + 1e3 * rng.gen::<f64>())
                    .collect()
            })
            .collect();
        for kind in [SketchKind::Gk, SketchKind::Kll] {
            // Batch-built.
            let mut batch = Sketch::new(kind, 0.05).unwrap();
            for shard in &shard_data {
                batch.insert_batch(shard);
            }
            assert_eq!(batch.quantile(0.0).unwrap(), batch.min().unwrap());
            assert_eq!(batch.quantile(1.0).unwrap(), batch.max().unwrap());
            // Merged from per-shard sketches.
            let mut merged = Sketch::new(kind, 0.05).unwrap();
            for shard in &shard_data {
                let mut s = Sketch::new(kind, 0.05).unwrap();
                s.insert_batch(shard);
                merged.merge(&s).unwrap();
            }
            assert_eq!(merged.quantile(0.0).unwrap(), merged.min().unwrap());
            assert_eq!(merged.quantile(1.0).unwrap(), merged.max().unwrap());
            assert_eq!(merged.min(), batch.min());
            assert_eq!(merged.max(), batch.max());
        }
    }

    #[test]
    fn sketch_kind_round_trips_through_strings() {
        for kind in [SketchKind::Gk, SketchKind::Kll] {
            assert_eq!(kind.as_str().parse::<SketchKind>().unwrap(), kind);
        }
        assert!("gkk".parse::<SketchKind>().is_err());
        assert!("KLL".parse::<SketchKind>().is_err());
        assert_eq!(SketchKind::default(), SketchKind::Gk);
    }

    #[test]
    fn sketch_dispatch_forwards_to_the_selected_algorithm() {
        for kind in [SketchKind::Gk, SketchKind::Kll] {
            let mut s = Sketch::new(kind, 0.01).unwrap();
            assert_eq!(s.kind(), kind);
            assert!(s.is_empty());
            s.insert(2.0);
            s.insert_batch(&[1.0, 3.0]);
            s.push_batch(&[4.0]);
            assert_eq!(s.len(), 4);
            assert_eq!(s.min(), Some(1.0));
            assert_eq!(s.max(), Some(4.0));
            assert_eq!(s.mean(), Some(2.5));
            assert_eq!(s.quantile(1.0).unwrap(), 4.0);
            assert!(s.rank(2.5) >= 1);
            assert!((s.ecdf(10.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mixed_kind_merge_is_a_typed_error() {
        let mut gk = Sketch::new(SketchKind::Gk, 0.01).unwrap();
        let mut kll = Sketch::new(SketchKind::Kll, 0.01).unwrap();
        gk.insert(1.0);
        kll.insert(2.0);
        let before = gk.clone();
        assert!(gk.merge(&kll).is_err());
        assert_eq!(gk, before, "a rejected merge must not mutate the target");
        assert!(kll.merge(&before).is_err());
    }
}
